"""Runtime invariant monitoring: cheap per-round sanity proofs of a live run.

Silent corruption is worse than a crash: a NaN that leaks into the model, a
mixing weight that drifts off the simplex, or a communication ledger that
jumps backwards will quietly poison every downstream number.  The
:class:`InvariantMonitor` checks a small set of *always-true* properties of a
:class:`~repro.core.base.FederatedAlgorithm` after every round:

``finite_model``
    Every coordinate of the global model ``w`` is finite.
``finite_losses``
    The latest evaluation's per-edge losses are finite (checked only on
    rounds that evaluated).
``simplex_weights``
    A minimax algorithm's mixing weights are non-negative (within ``atol``)
    and sum to 1 — Phase 2's projection must keep them on the simplex.
``comm_balance``
    The communication ledger is monotone: cycle counts, message counts, and
    float totals never decrease between checks.
``membership_balance``
    With dynamic membership enabled, the active-client population equals the
    initial population plus joins minus leaves (counted from the metrics
    registry's ``membership_joined_total`` / ``membership_left_total``).

Checks are *pure reads* of already-computed state — no RNG, no arithmetic on
the model — so a monitored run is bit-identical to an unmonitored one.  The
monitor is **off by default**: attach one to a tracer
(``Tracer(..., invariants=True)``) and the run loop picks it up through the
same ``obs=`` hook as every other observability feature.  Violations are
recorded on :attr:`InvariantMonitor.violations`, emitted as ``invariant``
trace events (surfaced by ``trace-report``), and counted in
``invariant_violations_total``; by default the run *continues* — the monitor
is a tripwire, not a breaker — unless ``strict=True`` upgrades violations to
:class:`InvariantViolationError`.

Custom checks register with :meth:`InvariantMonitor.register`; a check is any
``fn(algo, round_index) -> str | None`` returning a violation message or
``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["InvariantMonitor", "InvariantViolationError", "Violation",
           "DEFAULT_CHECKS"]


class InvariantViolationError(RuntimeError):
    """A runtime invariant failed under ``strict=True``."""


@dataclass(frozen=True)
class Violation:
    """One failed invariant check.

    Attributes
    ----------
    check:
        Name of the failed check (e.g. ``"simplex_weights"``).
    round_index:
        Cloud round after which the violation was observed.
    message:
        Human-readable diagnostic with the offending values.
    """

    check: str
    round_index: int
    message: str


def _check_finite_model(algo, round_index: int) -> str | None:
    w = algo.w
    if np.all(np.isfinite(w)):
        return None
    bad = int(np.size(w) - np.count_nonzero(np.isfinite(w)))
    return (f"model w has {bad} non-finite coordinate(s) "
            f"(||w||_inf over finite part: "
            f"{np.max(np.abs(w[np.isfinite(w)])) if bad < np.size(w) else 'n/a'})")


def _check_finite_losses(algo, round_index: int) -> str | None:
    history = getattr(algo, "_history", None)
    if history is None or not len(history):
        return None
    point = history.final()
    if point.round_index != round_index:
        return None  # this round did not evaluate; nothing new to check
    losses = np.asarray(point.record.per_edge_loss, dtype=np.float64)
    if np.all(np.isfinite(losses)):
        return None
    bad = np.flatnonzero(~np.isfinite(losses))
    return (f"evaluation at round {round_index} produced non-finite "
            f"loss(es) for edge group(s) {bad.tolist()}")


def _check_simplex_weights(atol: float) -> Callable:
    def check(algo, round_index: int) -> str | None:
        weights = algo.current_weights()
        if weights is None:
            return None
        weights = np.asarray(weights, dtype=np.float64)
        if not np.all(np.isfinite(weights)):
            return "mixing weights contain non-finite entries"
        low = float(weights.min(initial=0.0))
        total = float(weights.sum())
        if low < -atol:
            return (f"mixing weight below simplex: min={low:.3e} "
                    f"(tolerance {atol:g})")
        if abs(total - 1.0) > max(atol, 1e-6 * weights.size):
            return f"mixing weights sum to {total!r}, expected 1"
        return None

    return check


class _CommBalance:
    """Monotonicity watch over the communication ledger (stateful)."""

    def __init__(self) -> None:
        self._prev = None

    def __call__(self, algo, round_index: int) -> str | None:
        snap = algo.tracker.snapshot()
        prev, self._prev = self._prev, snap
        if prev is None:
            return None
        for kind, now_map, then_map in (("cycles", snap.cycles, prev.cycles),
                                        ("messages", snap.messages,
                                         prev.messages),
                                        ("floats", snap.floats, prev.floats)):
            for key, then_value in then_map.items():
                now_value = now_map.get(key, 0)
                if now_value < then_value:
                    return (f"comm ledger went backwards: {kind}[{key}] "
                            f"{then_value} -> {now_value}")
        return None


class _MembershipBalance:
    """joined − left must explain the active-set delta (stateful baseline)."""

    def __init__(self) -> None:
        self._baseline: int | None = None

    @staticmethod
    def _counters(algo) -> tuple[int, int] | None:
        metrics = getattr(algo.obs, "metrics", None)
        if metrics is None:
            return None
        return (int(metrics.counter("membership_joined_total").value),
                int(metrics.counter("membership_left_total").value))

    def __call__(self, algo, round_index: int) -> str | None:
        membership = algo.membership
        if not getattr(membership, "enabled", False):
            return None
        counters = self._counters(algo)
        if counters is None:
            return None
        joined, left = counters
        active = len(membership.active)
        if self._baseline is None:
            # First observation: infer the initial population from the books.
            self._baseline = active - (joined - left)
            return None
        expected = self._baseline + joined - left
        if active != expected:
            return (f"membership imbalance: {active} active clients but "
                    f"baseline {self._baseline} + {joined} joined - "
                    f"{left} left = {expected}")
        return None


#: Names of the built-in checks, in execution order.
DEFAULT_CHECKS = ("finite_model", "finite_losses", "simplex_weights",
                  "comm_balance", "membership_balance")


class InvariantMonitor:
    """Pluggable per-round invariant checker (see the module docstring).

    Parameters
    ----------
    checks:
        Names from :data:`DEFAULT_CHECKS` to enable; ``None`` enables all.
    atol:
        Numerical tolerance for the simplex check.
    strict:
        Raise :class:`InvariantViolationError` on the first violation instead
        of recording and continuing.
    """

    def __init__(self, checks=None, *, atol: float = 1e-8,
                 strict: bool = False) -> None:
        self.atol = float(atol)
        self.strict = bool(strict)
        self.violations: list[Violation] = []
        self.rounds_checked = 0
        available: dict[str, Callable] = {
            "finite_model": _check_finite_model,
            "finite_losses": _check_finite_losses,
            "simplex_weights": _check_simplex_weights(self.atol),
            "comm_balance": _CommBalance(),
            "membership_balance": _MembershipBalance(),
        }
        if checks is None:
            selected = list(DEFAULT_CHECKS)
        else:
            selected = list(checks)
            unknown = [c for c in selected if c not in available]
            if unknown:
                raise ValueError(
                    f"unknown invariant check(s) {unknown}; "
                    f"choose from {list(DEFAULT_CHECKS)}")
        self._checks: list[tuple[str, Callable]] = [
            (name, available[name]) for name in selected]

    def register(self, name: str, fn: Callable) -> None:
        """Add a custom check ``fn(algo, round_index) -> str | None``."""
        if any(existing == name for existing, _ in self._checks):
            raise ValueError(f"invariant check {name!r} already registered")
        self._checks.append((str(name), fn))

    @property
    def ok(self) -> bool:
        """True while no check has ever failed."""
        return not self.violations

    def check_round(self, algo, round_index: int, *, obs=None) -> list[Violation]:
        """Run every check against ``algo`` after round ``round_index``.

        Returns the violations found *this* round (also appended to
        :attr:`violations`).  Emits one ``invariant`` trace event and an
        ``invariant_violations_total`` increment per violation, and one
        ``invariant_checks_total`` increment per call, through ``obs``.
        """
        self.rounds_checked += 1
        found: list[Violation] = []
        for name, fn in self._checks:
            message = fn(algo, round_index)
            if message is None:
                continue
            violation = Violation(check=name, round_index=int(round_index),
                                  message=str(message))
            found.append(violation)
            self.violations.append(violation)
            if obs is not None and obs.enabled:
                obs.event("invariant", check=name, round=int(round_index),
                          message=violation.message)
                obs.count("invariant_violations_total")
        if obs is not None and obs.enabled:
            obs.count("invariant_checks_total")
        if found and self.strict:
            first = found[0]
            raise InvariantViolationError(
                f"invariant {first.check!r} violated after round "
                f"{first.round_index}: {first.message}")
        return found

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"InvariantMonitor(checks={[n for n, _ in self._checks]}, "
                f"violations={len(self.violations)})")
