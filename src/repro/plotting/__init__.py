"""Terminal (ASCII) plotting for figure series."""

from repro.plotting.ascii import ascii_plot, plot_figure_series

__all__ = ["ascii_plot", "plot_figure_series"]
