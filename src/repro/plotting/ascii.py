"""Terminal line charts for the figure series (no plotting libraries offline).

:func:`ascii_plot` renders one or more (x, y) series on a character canvas with
axes, tick labels, and a legend — enough to *see* Fig. 3/4's crossing behavior
directly in bench output and examples.  Series are drawn with distinct marker
characters; later series overwrite earlier ones where they collide.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["ascii_plot", "plot_figure_series"]

_MARKERS = "ox+*#@%&"


def ascii_plot(series: Mapping[str, tuple[Sequence[float], Sequence[float]]], *,
               width: int = 72, height: int = 18, title: str = "",
               xlabel: str = "", ylabel: str = "") -> str:
    """Render named (x, y) series as a text chart.

    Parameters
    ----------
    series:
        Mapping name -> (x, y); all series share the axes.  NaNs are skipped.
    width, height:
        Plot-area size in characters (>= 8 each).

    Returns
    -------
    str
        The rendered multi-line chart, including legend and tick labels.
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 8 or height < 8:
        raise ValueError(f"canvas too small: {width}x{height}")

    xs_all: list[np.ndarray] = []
    ys_all: list[np.ndarray] = []
    cleaned: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, (x, y) in series.items():
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError(f"series {name!r}: x and y must be matching 1-D arrays")
        mask = np.isfinite(x) & np.isfinite(y)
        if not np.any(mask):
            raise ValueError(f"series {name!r} has no finite points")
        cleaned[name] = (x[mask], y[mask])
        xs_all.append(x[mask])
        ys_all.append(y[mask])
    x_min = min(float(x.min()) for x in xs_all)
    x_max = max(float(x.max()) for x in xs_all)
    y_min = min(float(y.min()) for y in ys_all)
    y_max = max(float(y.max()) for y in ys_all)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    canvas = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(y: float) -> int:
        return (height - 1) - int(round((y - y_min) / (y_max - y_min) * (height - 1)))

    for idx, (name, (x, y)) in enumerate(cleaned.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        # densify by linear interpolation so lines look continuous
        cols = np.arange(to_col(float(x.min())), to_col(float(x.max())) + 1)
        if len(x) >= 2:
            col_x = x_min + cols / (width - 1) * (x_max - x_min)
            col_y = np.interp(col_x, x, y)
        else:
            cols = np.array([to_col(float(x[0]))])
            col_y = np.array([float(y[0])])
        for c, yv in zip(cols, col_y):
            canvas[to_row(float(yv))][int(c)] = marker

    lines: list[str] = []
    if title:
        lines.append(title.center(width + 10))
    y_label_width = 9
    for r, row in enumerate(canvas):
        if r == 0:
            tick = f"{y_max:8.3g} "
        elif r == height - 1:
            tick = f"{y_min:8.3g} "
        elif r == height // 2:
            tick = f"{(y_min + y_max) / 2:8.3g} "
        else:
            tick = " " * y_label_width
        lines.append(tick + "|" + "".join(row))
    lines.append(" " * y_label_width + "+" + "-" * width)
    x_ticks = (f"{x_min:<10.4g}" + f"{(x_min + x_max) / 2:^{width - 20}.4g}"
               + f"{x_max:>10.4g}")
    lines.append(" " * (y_label_width + 1) + x_ticks)
    if xlabel:
        lines.append(" " * (y_label_width + 1) + xlabel.center(width))
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} {name}"
                        for i, name in enumerate(cleaned))
    lines.append((ylabel + "  " if ylabel else "") + "legend: " + legend)
    return "\n".join(lines)


def plot_figure_series(fig, *, field: str = "worst_accuracy",
                       width: int = 72, height: int = 18) -> str:
    """Render one metric of a :class:`~repro.experiments.figures.FigureData`."""
    series = {}
    for name, s in fig.series.items():
        y = getattr(s, field)
        series[name] = (s.comm_rounds, y)
    return ascii_plot(series, width=width, height=height,
                      title=f"{fig.name}: {field.replace('_', ' ')} vs "
                            "communication rounds",
                      xlabel="communication rounds (cloud-facing cycles)")
