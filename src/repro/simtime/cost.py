"""Seeded device/link cost models: how long compute and messages *would* take.

The repo's algorithms are simulations — every client runs on the one local
process — but the paper's setting is a real client-edge-cloud network where a
round's wall-clock is dominated by its slowest participant.  A
:class:`CostModel` assigns simulated durations to the two primitive actions the
algorithms perform:

* ``compute_s(entity, steps)`` — local SGD on a device (per-step time scaled
  by a per-device speed factor), and
* ``transfer_s(link, entity, floats)`` — a message on a link, priced as
  ``latency + wire_bytes / bandwidth`` where ``wire_bytes = floats × 8``
  follows the payload-unit convention of :mod:`repro.topology.comm` (so
  compressed uploads are automatically cheaper to send).

Every parameter of the heterogeneous model is a **pure function of
``(seed, entity)``** — device and link factors are drawn from dedicated
:class:`numpy.random.SeedSequence` streams keyed by
:func:`~repro.utils.rng.stable_key`, never from a shared mutable generator.
Querying a cost is therefore side-effect-free and order-independent, which is
what guarantees identical simulated makespans across execution backends and
across checkpoint/resume (the cost of step ``k`` cannot depend on who asked
first).  The :class:`NullCostModel` prices everything at zero; it is the
default, and with it the virtual clock never advances.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import stable_key

__all__ = ["CostModel", "NullCostModel", "NULL_COST_MODEL",
           "HeterogeneousCostModel", "make_cost_model"]

_BYTES_PER_FLOAT = 8.0

#: Default one-way link latencies in seconds (LAN-ish edge tier, WAN backhaul).
_DEFAULT_LATENCY_S = {
    "client_edge": 0.005,
    "edge_cloud": 0.05,
    "client_cloud": 0.05,
    "default": 0.02,
}

#: Default link bandwidths in megabits per second.
_DEFAULT_MBPS = {
    "client_edge": 50.0,
    "edge_cloud": 100.0,
    "client_cloud": 20.0,
    "default": 50.0,
}


class CostModel:
    """Interface: simulated durations for compute steps and message transfers.

    Entities are identified by the same stable names the rest of the substrate
    uses: integer client ids for devices, link names (``client_edge``,
    ``edge_cloud``, ``client_cloud``, ``level_k``) plus an endpoint id for
    transfers.  Implementations must be pure: the same query always returns
    the same duration, with no mutable RNG state.
    """

    #: True only for :class:`NullCostModel` — lets callers skip the clock.
    is_null = False

    def compute_s(self, entity, steps: int, *, scale: float = 1.0) -> float:
        """Seconds for ``steps`` local SGD steps on device ``entity``.

        ``scale`` multiplies the per-step time — the faults layer passes its
        ``straggler_slowdown`` here so a straggler's *truncated* update still
        occupies the device for (roughly) the full round deadline.
        """
        raise NotImplementedError

    def transfer_s(self, link: str, entity, floats: float) -> float:
        """Seconds to move a ``floats``-payload message on ``link`` to/from
        ``entity`` (latency + wire bytes / bandwidth)."""
        raise NotImplementedError

    def probe_s(self, entity) -> float:
        """Seconds for a Phase-2 minibatch loss evaluation on ``entity``
        (a forward pass — priced at half an SGD step by default)."""
        return 0.5 * self.compute_s(entity, 1)


class NullCostModel(CostModel):
    """Everything is free; the virtual clock never advances (the default)."""

    is_null = True

    def compute_s(self, entity, steps: int, *, scale: float = 1.0) -> float:
        """Always 0.0 — compute is free under the null model."""
        return 0.0

    def transfer_s(self, link: str, entity, floats: float) -> float:
        """Always 0.0 — transfers are free under the null model."""
        return 0.0

    def probe_s(self, entity) -> float:
        """Always 0.0 — probes are free under the null model."""
        return 0.0


#: Shared null instance (stateless, safe to share).
NULL_COST_MODEL = NullCostModel()


class HeterogeneousCostModel(CostModel):
    """Lognormally heterogeneous devices plus latency/bandwidth-priced links.

    Parameters
    ----------
    seed:
        Root entropy of every per-entity draw.  Two models with the same seed
        (and parameters) price every action identically.
    base_step_s:
        Median seconds per local SGD step.
    device_sigma:
        Sigma of the lognormal per-device speed factor (0 = homogeneous).
    slow_fraction / slow_factor:
        Each device independently becomes a persistent straggler with
        probability ``slow_fraction`` (decided from its own seeded stream),
        multiplying its per-step time by ``slow_factor``.
    slow_clients:
        Explicit device ids that are *always* slowed by ``slow_factor`` —
        deterministic stragglers for benchmarks and CI assertions.
    latency_s / mbps:
        Per-link latency (seconds) and bandwidth (megabits/s) overrides,
        keyed by link name; unknown links (``level_3``, …) fall back to the
        ``"default"`` entry.
    link_sigma:
        Sigma of a lognormal per-(link, endpoint) bandwidth jitter factor
        (0 = clean links).
    """

    def __init__(self, *, seed: int = 0, base_step_s: float = 1e-3,
                 device_sigma: float = 0.5,
                 slow_fraction: float = 0.0, slow_factor: float = 10.0,
                 slow_clients: tuple = (),
                 latency_s: dict | None = None, mbps: dict | None = None,
                 link_sigma: float = 0.0) -> None:
        if base_step_s <= 0:
            raise ValueError(f"base_step_s must be positive, got {base_step_s}")
        if not 0.0 <= slow_fraction <= 1.0:
            raise ValueError(f"slow_fraction must be in [0, 1], "
                             f"got {slow_fraction}")
        if slow_factor < 1.0:
            raise ValueError(f"slow_factor must be >= 1, got {slow_factor}")
        self.seed = int(seed)
        self.base_step_s = float(base_step_s)
        self.device_sigma = float(device_sigma)
        self.slow_fraction = float(slow_fraction)
        self.slow_factor = float(slow_factor)
        self.slow_clients = frozenset(int(c) for c in slow_clients)
        self.latency_s = dict(_DEFAULT_LATENCY_S)
        self.latency_s.update(latency_s or {})
        self.mbps = dict(_DEFAULT_MBPS)
        self.mbps.update(mbps or {})
        self.link_sigma = float(link_sigma)
        self._device_cache: dict[str, float] = {}
        self._link_cache: dict[str, float] = {}

    # ------------------------------------------------------------- pure draws
    def _stream(self, kind: str, name: str) -> np.random.Generator:
        """A dedicated generator for one (kind, entity) — pure in (seed, key)."""
        return np.random.default_rng(np.random.SeedSequence(
            entropy=self.seed,
            spawn_key=(stable_key(kind), stable_key(name))))

    def device_factor(self, entity) -> float:
        """Per-device speed multiplier (1 = median device)."""
        name = str(entity)
        cached = self._device_cache.get(name)
        if cached is not None:
            return cached
        rng = self._stream("device", name)
        factor = (float(np.exp(rng.normal(0.0, self.device_sigma)))
                  if self.device_sigma > 0 else 1.0)
        if self.slow_fraction > 0 and rng.random() < self.slow_fraction:
            factor *= self.slow_factor
        try:
            if int(entity) in self.slow_clients:
                factor *= self.slow_factor
        except (TypeError, ValueError):
            pass
        self._device_cache[name] = factor
        return factor

    def link_factor(self, link: str, entity) -> float:
        """Per-(link, endpoint) bandwidth jitter multiplier (1 = nominal)."""
        if self.link_sigma <= 0:
            return 1.0
        name = f"{link}:{entity}"
        cached = self._link_cache.get(name)
        if cached is not None:
            return cached
        rng = self._stream("link", name)
        factor = float(np.exp(rng.normal(0.0, self.link_sigma)))
        self._link_cache[name] = factor
        return factor

    # ---------------------------------------------------------------- pricing
    def compute_s(self, entity, steps: int, *, scale: float = 1.0) -> float:
        """``steps x base_step_s x device_factor x scale`` seconds."""
        return float(steps) * self.base_step_s * self.device_factor(entity) \
            * float(scale)

    def transfer_s(self, link: str, entity, floats: float) -> float:
        """``latency + wire_bytes / bandwidth`` seconds, with per-endpoint
        bandwidth jitter when ``link_sigma > 0``."""
        latency = self.latency_s.get(link, self.latency_s["default"])
        mbps = self.mbps.get(link, self.mbps["default"])
        bandwidth_bytes_s = mbps * 1e6 / 8.0
        wire_bytes = float(floats) * _BYTES_PER_FLOAT
        return latency + wire_bytes / bandwidth_bytes_s \
            * self.link_factor(link, entity)

    # ---------------------------------------------------------------- parsing
    _FLOAT_KEYS = ("base_step_s", "device_sigma", "slow_fraction",
                   "slow_factor", "link_sigma")

    @classmethod
    def parse(cls, spec: str) -> "HeterogeneousCostModel":
        """Build from a spec string, e.g.
        ``"hetero,seed=1,slow_clients=0|7,slow_factor=10"``.

        Comma-separated ``key=value`` pairs; ``slow_clients`` takes a
        ``|``-separated id list; ``latency.<link>`` / ``mbps.<link>`` set
        per-link overrides.  A leading bare ``hetero`` token is allowed (and
        produced by :func:`make_cost_model`).
        """
        kwargs: dict = {}
        latency: dict = {}
        mbps: dict = {}
        for part in str(spec).split(","):
            part = part.strip()
            if not part or part == "hetero":
                continue
            if "=" not in part:
                raise ValueError(f"cost-model spec entries need key=value, "
                                 f"got {part!r}")
            key, value = (s.strip() for s in part.split("=", 1))
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key in cls._FLOAT_KEYS:
                kwargs[key] = float(value)
            elif key == "slow_clients":
                kwargs["slow_clients"] = tuple(
                    int(tok) for tok in value.split("|") if tok)
            elif key.startswith("latency."):
                latency[key.split(".", 1)[1]] = float(value)
            elif key.startswith("mbps."):
                mbps[key.split(".", 1)[1]] = float(value)
            else:
                raise ValueError(f"unknown cost-model parameter {key!r}")
        if latency:
            kwargs["latency_s"] = latency
        if mbps:
            kwargs["mbps"] = mbps
        return cls(**kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HeterogeneousCostModel(seed={self.seed}, "
                f"base_step_s={self.base_step_s}, "
                f"device_sigma={self.device_sigma}, "
                f"slow_fraction={self.slow_fraction}, "
                f"slow_factor={self.slow_factor})")


def make_cost_model(spec) -> CostModel:
    """Resolve ``spec`` into a :class:`CostModel`.

    Accepts ``None`` / ``"null"`` / ``"none"`` (the free model), an existing
    :class:`CostModel` instance, or a spec string for
    :meth:`HeterogeneousCostModel.parse` (with or without the leading
    ``hetero`` token).
    """
    if spec is None:
        return NULL_COST_MODEL
    if isinstance(spec, CostModel):
        return spec
    if isinstance(spec, str):
        if spec.strip().lower() in ("", "null", "none"):
            return NULL_COST_MODEL
        return HeterogeneousCostModel.parse(spec)
    raise TypeError(f"cannot build a cost model from {type(spec).__name__}")
