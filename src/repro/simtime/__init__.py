"""Simulated time: seeded cost models and the virtual-clock event scheduler.

The paper evaluates convergence per communication *round*; this package adds
the orthogonal axis production systems care about — *time-to-accuracy* under
heterogeneous devices and links.  A :class:`CostModel` prices compute steps
and message transfers (from the payload floats the comm tracker already
records); a :class:`SimTimer` replays each round's client→edge→cloud
dependency graph into a simulated makespan (synchronous rounds cost the max
over the sampled cohort).  Thread one through any algorithm via
``timing=``; the default :data:`NULL_TIMING` is a no-op and every run stays
bit-identical to a build without this package.

The virtual clock is the *only* clock here: nothing in :mod:`repro.simtime`
(or the actor layer in :mod:`repro.sim`) may call ``time.time`` /
``time.perf_counter`` — enforced by a lint test.  Wall-clock profiling
belongs to :mod:`repro.obs`.
"""

from repro.simtime.cost import (
    CostModel,
    HeterogeneousCostModel,
    NULL_COST_MODEL,
    NullCostModel,
    make_cost_model,
)
from repro.simtime.timeline import (
    NULL_TIMING,
    NullTiming,
    SimTimer,
    resolve_timing,
)

__all__ = [
    "CostModel",
    "NullCostModel",
    "NULL_COST_MODEL",
    "HeterogeneousCostModel",
    "make_cost_model",
    "SimTimer",
    "NullTiming",
    "NULL_TIMING",
    "resolve_timing",
]
