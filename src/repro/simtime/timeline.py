"""Virtual-clock timeline: replay a round's dependency graph into a makespan.

A :class:`SimTimer` is the event scheduler of the simulated-time subsystem.
Algorithms describe each round's client→edge→cloud dependency structure with
nested scopes, and the timer folds the per-action durations (priced by a
:class:`~repro.simtime.cost.CostModel`) into the round's **makespan**:

* ``round(k)`` — a serial scope; its total advances the cumulative clock
  (:attr:`elapsed_s`) when it closes;
* ``parallel()`` — children run concurrently; the scope's total is the *max*
  over its branches (a synchronous barrier: the round waits for the slowest
  sampled participant — which is exactly how the faults layer's stragglers
  acquire real durations);
* ``branch()`` — one participant inside a ``parallel()``; serial within;
* ``compute`` / ``transfer`` / ``probe`` — leaf actions, priced by the cost
  model and added to the innermost open scope;
* ``measure()`` — an *isolated* scope: its total is captured on the context
  object instead of being added to the parent.  The semi-asynchronous
  variant uses it to price an edge's work without blocking the round, then
  schedules the arrival itself via :attr:`now` and :meth:`wait_until`.

The timer is purely arithmetic — it never reads a wall clock, never touches
an RNG, and the algorithms' numerical results are independent of it.  The
shared :data:`NULL_TIMING` no-op keeps the default path allocation-free and
bit-identical to a build without the subsystem (the same pattern as
:data:`repro.obs.NULL_TRACER`).

**Dependency-graph recording.**  With :attr:`SimTimer.record` set (the
algorithm runner flips it automatically when a live tracer is attached),
every closed ``round`` scope additionally leaves a JSON-ready *timing tree*
on :attr:`SimTimer.last_round_tree`: nested ``{"kind", "label", "dur_s",
"children"}`` scope nodes with ``compute`` / ``transfer`` / ``probe`` /
``wait`` leaves carrying the charged entity and link.  Scopes accept an
optional ``label=`` (``"edge:3"``, ``"client:12"``, ``"phase1"``) naming the
participant a branch prices — the per-entity handle the critical-path
analyzer in :mod:`repro.obs.critical_path` assigns blame to.  Recording only
appends to lists: the max/sum arithmetic (and therefore every makespan) is
bit-identical with recording on or off.
"""

from __future__ import annotations

from repro.simtime.cost import CostModel, NULL_COST_MODEL, make_cost_model

__all__ = ["SimTimer", "NullTiming", "NULL_TIMING", "resolve_timing"]


class _Frame:
    """One open scope: serial scopes sum child durations, parallel ones max."""

    __slots__ = ("parallel", "total", "node")

    def __init__(self, parallel: bool, node: dict | None = None) -> None:
        self.parallel = parallel
        self.total = 0.0
        #: Timing-tree node being built for this scope (``None`` unless the
        #: owning timer records); recording never touches ``total``.
        self.node = node

    def add(self, dt: float) -> None:
        if self.parallel:
            if dt > self.total:
                self.total = dt
        else:
            self.total += dt


class _Scope:
    """Context manager pushing/popping one frame on a :class:`SimTimer`."""

    __slots__ = ("_timer", "_frame", "_isolated", "_is_round", "duration",
                 "tree")

    def __init__(self, timer: "SimTimer", *, parallel: bool,
                 isolated: bool = False, is_round: bool = False,
                 kind: str = "scope", label: str | None = None,
                 round_index: int | None = None) -> None:
        self._timer = timer
        node = None
        if timer.record:
            node = {"kind": kind, "dur_s": 0.0, "children": []}
            if label is not None:
                node["label"] = label
            if round_index is not None:
                node["round"] = round_index
            stack = timer._stack
            if not isolated and stack and stack[-1].node is not None:
                stack[-1].node["children"].append(node)
        self._frame = _Frame(parallel, node)
        self._isolated = isolated
        self._is_round = is_round
        #: Captured total of an isolated (``measure``) scope, set on exit.
        self.duration = 0.0
        #: Timing tree of this scope (recording timers only, set on exit).
        self.tree: dict | None = None

    def __enter__(self) -> "_Scope":
        self._timer._stack.append(self._frame)
        return self

    def __exit__(self, *exc_info) -> None:
        stack = self._timer._stack
        frame = stack.pop()
        if stack and stack[-1] is not frame:
            pass  # popped our own frame; nothing to repair
        self.duration = frame.total
        if frame.node is not None:
            frame.node["dur_s"] = frame.total
            self.tree = frame.node
            if self._is_round:
                self._timer.last_round_tree = frame.node
        if self._isolated:
            return
        self._timer._add(frame.total)
        if self._is_round:
            self._timer.last_round_s = frame.total


class _NullScope:
    """Shared no-op scope of :class:`NullTiming`."""

    __slots__ = ()
    duration = 0.0
    tree = None

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SCOPE = _NullScope()


class SimTimer:
    """Accumulates simulated seconds from scope-described dependency graphs.

    One timer tracks one run's clock; build a fresh timer per algorithm when
    comparing methods (``run_experiment`` does).  The cumulative clock is
    exposed as :attr:`elapsed_s`, checkpointed by
    :meth:`~repro.core.base.FederatedAlgorithm.state_dict`, and stamped onto
    every :class:`~repro.metrics.history.HistoryPoint` as ``sim_time_s``.
    """

    enabled = True

    def __init__(self, cost_model: CostModel | None = None, *,
                 record: bool = False) -> None:
        self.cost = cost_model if cost_model is not None else NULL_COST_MODEL
        #: Cumulative simulated seconds over all closed rounds (+ waits).
        self.elapsed_s = 0.0
        #: Makespan of the most recently closed round scope.
        self.last_round_s = 0.0
        #: When ``True``, closed round scopes leave their dependency tree on
        #: :attr:`last_round_tree`.  Purely additive bookkeeping — flipping it
        #: changes no makespan bit.
        self.record = bool(record)
        #: Timing tree of the most recently closed round scope (recording
        #: timers only; ``None`` otherwise).
        self.last_round_tree: dict | None = None
        self._stack: list[_Frame] = []

    # ----------------------------------------------------------------- scopes
    def round(self, round_index: int) -> _Scope:
        """Serial scope for one cloud round; advances the cumulative clock."""
        return _Scope(self, parallel=False, is_round=True, kind="round",
                      round_index=round_index)

    def parallel(self, label: str | None = None) -> _Scope:
        """Concurrent children: total = max over the enclosed branches."""
        return _Scope(self, parallel=True, kind="parallel", label=label)

    def branch(self, label: str | None = None) -> _Scope:
        """One participant of a ``parallel()`` scope; serial within."""
        return _Scope(self, parallel=False, kind="branch", label=label)

    def measure(self, label: str | None = None) -> _Scope:
        """Isolated serial scope: captures ``.duration``, adds nothing.

        On a recording timer the measured dependency tree is captured on the
        scope's ``.tree`` (it is *not* attached to the enclosing round — an
        isolated leg is not part of the round's makespan).
        """
        return _Scope(self, parallel=False, isolated=True, kind="measure",
                      label=label)

    # ----------------------------------------------------------------- leaves
    def _add(self, dt: float) -> None:
        if dt < 0.0:
            raise ValueError(f"durations must be nonnegative, got {dt}")
        if self._stack:
            self._stack[-1].add(dt)
        else:
            self.elapsed_s += dt

    def _leaf(self, kind: str, dt: float, **fields) -> None:
        """Charge ``dt`` and, when recording, append a leaf to the open scope."""
        self._add(dt)
        if self.record and self._stack:
            node = self._stack[-1].node
            if node is not None:
                node["children"].append({"kind": kind, "dur_s": dt, **fields})

    def compute(self, entity, steps: int, *, scale: float = 1.0) -> None:
        """Charge ``steps`` local SGD steps on device ``entity``."""
        self._leaf("compute", self.cost.compute_s(entity, steps, scale=scale),
                   entity=entity, steps=steps)

    def transfer(self, link: str, entity, floats: float) -> None:
        """Charge one message of ``floats`` payload units on ``link``."""
        self._leaf("transfer", self.cost.transfer_s(link, entity, floats),
                   entity=entity, link=link)

    def probe(self, entity) -> None:
        """Charge one Phase-2 minibatch loss evaluation on ``entity``."""
        self._leaf("probe", self.cost.probe_s(entity), entity=entity)

    # ------------------------------------------------------- absolute queries
    @property
    def now(self) -> float:
        """Absolute simulated time, including open serial scopes.

        Only meaningful outside ``parallel()`` scopes (an open parallel
        frame's partial max is not a point in time) — the semi-async
        scheduler queries it between dispatches, where the stack holds just
        the round scope.
        """
        return self.elapsed_s + sum(f.total for f in self._stack)

    def wait_until(self, t_abs: float, label: str | None = None) -> None:
        """Advance the clock to absolute time ``t_abs`` (no-op if passed).

        Note the charged delta is ``t_abs - now``, a floating-point
        subtraction; when an exact duration is known (e.g. waiting out a leg
        dispatched at the current instant), prefer :meth:`advance` with that
        duration — it reproduces a serial scope's arithmetic bit-for-bit.
        ``label`` names what was waited on in the recorded timing tree.
        """
        dt = t_abs - self.now
        if dt > 0.0:
            self._wait(dt, label)

    def advance(self, dt: float, label: str | None = None) -> None:
        """Charge an explicit idle duration to the innermost open scope.

        ``label`` names what was waited on (``"edge:3"``) in the recorded
        timing tree — the blame handle for barrier/staleness waits.
        """
        if dt > 0.0:
            self._wait(dt, label)

    def _wait(self, dt: float, label: str | None) -> None:
        if label is not None:
            self._leaf("wait", dt, label=label)
        else:
            self._leaf("wait", dt)

    # ---------------------------------------------------------- cost queries
    def compute_s(self, entity, steps: int, *, scale: float = 1.0) -> float:
        """Price (without charging) ``steps`` on ``entity``."""
        return self.cost.compute_s(entity, steps, scale=scale)

    def transfer_s(self, link: str, entity, floats: float) -> float:
        """Price (without charging) one message on ``link``."""
        return self.cost.transfer_s(link, entity, floats)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimTimer(elapsed_s={self.elapsed_s:.6f}, cost={self.cost!r})"


class NullTiming:
    """No-op timer: the default when no cost model is installed.

    Every scope is a shared no-op context, every leaf free, the clock pinned
    at zero.  Algorithms can therefore call the timing hooks unconditionally
    on their hot paths — the same contract as
    :class:`~repro.obs.tracer.NullTracer`.
    """

    enabled = False
    elapsed_s = 0.0
    last_round_s = 0.0
    now = 0.0
    cost = NULL_COST_MODEL
    record = False
    last_round_tree = None

    def round(self, round_index: int) -> _NullScope:
        """No-op scope; the clock stays at zero."""
        return _NULL_SCOPE

    def parallel(self, label: str | None = None) -> _NullScope:
        """No-op scope; the clock stays at zero."""
        return _NULL_SCOPE

    def branch(self, label: str | None = None) -> _NullScope:
        """No-op scope; the clock stays at zero."""
        return _NULL_SCOPE

    def measure(self, label: str | None = None) -> _NullScope:
        """No-op scope whose ``duration`` is always 0.0."""
        return _NULL_SCOPE

    def compute(self, entity, steps: int, *, scale: float = 1.0) -> None:
        """Charge nothing."""
        return None

    def transfer(self, link: str, entity, floats: float) -> None:
        """Charge nothing."""
        return None

    def probe(self, entity) -> None:
        """Charge nothing."""
        return None

    def wait_until(self, t_abs: float, label: str | None = None) -> None:
        """Charge nothing."""
        return None

    def advance(self, dt: float, label: str | None = None) -> None:
        """Charge nothing."""
        return None

    def compute_s(self, entity, steps: int, *, scale: float = 1.0) -> float:
        """Always 0.0 under the null timer."""
        return 0.0

    def transfer_s(self, link: str, entity, floats: float) -> float:
        """Always 0.0 under the null timer."""
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTiming()"


#: Shared no-op timer (stateless; safe to share across algorithms).
NULL_TIMING = NullTiming()


def resolve_timing(timing) -> "SimTimer | NullTiming":
    """Resolve the ``timing=`` argument of :class:`FederatedAlgorithm`.

    Accepts ``None`` (no clock), an existing :class:`SimTimer` /
    :class:`NullTiming` (shared with the caller — note a shared ``SimTimer``
    accumulates across runs), a :class:`~repro.simtime.cost.CostModel`, or a
    cost-model spec string (``"hetero,seed=1,..."``).  A null cost model
    resolves to the shared :data:`NULL_TIMING`, keeping the default path
    free.
    """
    if timing is None:
        return NULL_TIMING
    if isinstance(timing, (SimTimer, NullTiming)):
        return timing
    model = make_cost_model(timing)
    if model.is_null:
        return NULL_TIMING
    return SimTimer(model)
