"""Figure builders: the accuracy-vs-communication series of Figs. 3 and 4.

Each builder runs the corresponding preset and extracts, per algorithm, the
``(communication rounds, average accuracy)`` and ``(communication rounds, worst
accuracy)`` series plus the headline "rounds to reach the worst-accuracy target"
comparison (§6.1: 80% on EMNIST-Digits; §6.2: 50% on Fashion-MNIST; reduced scales
use retuned targets).

Communication rounds follow the paper-consistent convention documented in
DESIGN.md §3: cycles on the cloud-facing link (edge↔cloud for three-layer methods,
client↔cloud for two-layer ones).  Crossing times are computed on the monotone
envelope of the worst-accuracy curve to de-noise small-scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.presets import fig3_preset, fig4_preset
from repro.experiments.runner import ExperimentOutput, monotone_envelope, run_experiment

__all__ = ["FigureSeries", "FigureData", "build_figure", "fig3", "fig4",
           "format_figure_report", "sustained_crossing"]


def sustained_crossing(x: np.ndarray, y: np.ndarray, target: float, *,
                       window: int = 3) -> float | None:
    """First x at which y reaches ``target`` and holds it for ``window`` points.

    Plain first-crossing (or a monotone envelope) is fooled by the transient
    worst-accuracy spikes that minimization methods exhibit early in training
    before the majority classes take over; requiring the level to be *sustained*
    for ``window`` consecutive evaluations recovers the paper's qualitative
    reading ("FedAvg does not reach the target").  The trailing ``window - 1``
    points count as sustained if the curve stays above target through the end.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"x and y must be matching 1-D arrays, got {x.shape}, {y.shape}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    above = y >= target
    n = above.size
    for i in range(n):
        end = min(n, i + window)
        if np.all(above[i:end]) and (end - i == window or end == n):
            return float(x[i])
    return None


@dataclass(frozen=True)
class FigureSeries:
    """One algorithm's curves in one figure."""

    algorithm: str
    comm_rounds: np.ndarray
    average_accuracy: np.ndarray
    worst_accuracy: np.ndarray
    rounds_to_target: float | None

    @property
    def final_average(self) -> float:
        return float(self.average_accuracy[-1])

    @property
    def final_worst(self) -> float:
        return float(self.worst_accuracy[-1])


@dataclass(frozen=True)
class FigureData:
    """All series of one figure plus the target-crossing summary."""

    name: str
    worst_target: float
    series: dict[str, FigureSeries]
    output: ExperimentOutput

    def reduction_vs(self, reference: str, algorithm: str = "hierminimax",
                     ) -> float | None:
        """Communication-overhead reduction of ``algorithm`` vs ``reference``.

        The paper's headline percentages: e.g. HierMinimax reaching the target in
        51% fewer rounds than Stochastic-AFL.  ``None`` when either method misses
        the target.
        """
        ours = self.series[algorithm].rounds_to_target
        theirs = self.series[reference].rounds_to_target
        if ours is None or theirs is None or theirs == 0:
            return None
        return 1.0 - ours / theirs


def _extract_series(outputs: list[ExperimentOutput], worst_target: float,
                    comm_measure: str = "edge_cloud_cycles") -> dict[str, FigureSeries]:
    """Average each algorithm's curves over the seed replicates.

    The x-grid (communication cost per evaluation instant) is deterministic for a
    given preset, so replicates share it exactly and pointwise averaging is valid.
    The target-crossing time is computed on the *seed-averaged* monotone envelope,
    which is far less noisy than per-seed crossings at reduced scales.
    """
    series: dict[str, FigureSeries] = {}
    for name in outputs[0].results:
        xs, avgs, worsts = [], [], []
        for output in outputs:
            result = output.results[name]
            x, avg = result.history.series("average_accuracy",
                                           comm_measure=comm_measure)
            _, worst = result.history.series("worst_accuracy",
                                             comm_measure=comm_measure)
            xs.append(x)
            avgs.append(avg)
            worsts.append(worst)
        for x in xs[1:]:
            if not np.array_equal(x, xs[0]):
                raise RuntimeError(
                    f"{name}: replicate communication grids diverged; "
                    "comm accounting is expected to be seed-independent")
        avg = np.mean(avgs, axis=0)
        worst = np.mean(worsts, axis=0)
        crossing = sustained_crossing(xs[0], worst, worst_target)
        series[name] = FigureSeries(
            algorithm=name, comm_rounds=xs[0], average_accuracy=avg,
            worst_accuracy=worst, rounds_to_target=crossing)
    return series


def build_figure(preset, *, seeds: tuple[int, ...] | int = 0, algorithms=None,
                 comm_measure: str = "edge_cloud_cycles", logger=None) -> FigureData:
    """Run a figure preset (optionally over several seeds) and package its curves."""
    if isinstance(seeds, int):
        seeds = (seeds,)
    if not seeds:
        raise ValueError("need at least one seed")
    outputs = [run_experiment(preset, seed=s, algorithms=algorithms, logger=logger)
               for s in seeds]
    series = _extract_series(outputs, preset.worst_target, comm_measure)
    return FigureData(name=preset.name, worst_target=preset.worst_target,
                      series=series, output=outputs[0])


def fig3(*, scale: str = "small", seeds: tuple[int, ...] | int = 0,
         logger=None) -> FigureData:
    """Figure 3: convex loss (EMNIST-Digits), average and worst test accuracy."""
    return build_figure(fig3_preset(scale), seeds=seeds, logger=logger)


def fig4(*, scale: str = "small", seeds: tuple[int, ...] | int = 0,
         logger=None) -> FigureData:
    """Figure 4: non-convex loss (Fashion-MNIST), average and worst test accuracy."""
    return build_figure(fig4_preset(scale), seeds=seeds, logger=logger)


def format_figure_report(fig: FigureData) -> str:
    """Human-readable report mirroring the paper's figure discussion."""
    lines = [
        f"=== {fig.name}: accuracy vs communication rounds "
        f"(worst-accuracy target {fig.worst_target:.0%}) ===",
        f"{'algorithm':16s} {'final avg':>10s} {'final worst':>12s} "
        f"{'rounds to target':>17s}",
    ]
    for name, s in fig.series.items():
        cross = "not reached" if s.rounds_to_target is None else f"{s.rounds_to_target:.0f}"
        lines.append(f"{name:16s} {s.final_average:10.4f} {s.final_worst:12.4f} "
                     f"{cross:>17s}")
    if "hierminimax" in fig.series:
        for ref in ("stochastic_afl", "drfa", "hierfavg", "fedavg"):
            if ref in fig.series:
                red = fig.reduction_vs(ref)
                msg = "n/a (target unreached)" if red is None else f"{red:.0%}"
                lines.append(f"communication reduction vs {ref}: {msg}")
    return "\n".join(lines)
