"""Experiment harness: presets, paired runner, and figure/table builders."""

from repro.experiments.figures import (
    FigureData,
    FigureSeries,
    build_figure,
    fig3,
    fig4,
    format_figure_report,
)
from repro.experiments.presets import (
    FIGURE_ALGORITHMS,
    TABLE2_DATASETS,
    ExperimentPreset,
    fig3_preset,
    fig4_preset,
    table2_preset,
)
from repro.experiments.runner import (
    ExperimentOutput,
    build_preset_dataset,
    build_preset_model,
    monotone_envelope,
    run_experiment,
)
from repro.experiments.tables import Table2Row, format_table2, table2, table2_row

__all__ = [
    "FigureData",
    "FigureSeries",
    "build_figure",
    "fig3",
    "fig4",
    "format_figure_report",
    "FIGURE_ALGORITHMS",
    "TABLE2_DATASETS",
    "ExperimentPreset",
    "fig3_preset",
    "fig4_preset",
    "table2_preset",
    "ExperimentOutput",
    "build_preset_dataset",
    "build_preset_model",
    "monotone_envelope",
    "run_experiment",
    "Table2Row",
    "format_table2",
    "table2",
    "table2_row",
]
