"""Experiment presets mirroring §6 of the paper, at three size scales.

The ``paper`` scale keeps the published hyperparameters (topology 10×3, τ1 = τ2 = 2,
η_w = 10⁻³, batch sizes 1/8, tens of thousands of rounds).  The ``small`` and
``tiny`` scales shrink images, pools, and round counts — and retune learning rates
accordingly — so every figure and table regenerates on a laptop in seconds to
minutes while preserving the experiments' structure (same topology ratios, same
heterogeneity, same algorithm roster).

Every preset fixes a *slot budget*: all five algorithms receive the same number of
training time slots (local SGD steps per participating client), so communication
costs are compared at equal optimization work, exactly as in Figs. 3–4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "ExperimentPreset",
    "fig3_preset",
    "fig4_preset",
    "table2_preset",
    "TABLE2_DATASETS",
    "FIGURE_ALGORITHMS",
]

#: Algorithm roster of Figs. 3–4, in the paper's legend order.
FIGURE_ALGORITHMS = ("fedavg", "stochastic_afl", "drfa", "hierfavg", "hierminimax")

#: Table 2 datasets, in row order.
TABLE2_DATASETS = ("emnist_digits", "fashion_mnist", "mnist", "adult", "synthetic")


@dataclass(frozen=True)
class ExperimentPreset:
    """Complete configuration of one experiment run.

    Attributes
    ----------
    name:
        Experiment identifier (``fig3``, ``fig4``, ``table2:<dataset>``).
    dataset / scale / partition / similarity / num_edges / clients_per_edge:
        Federated-data layout (see :func:`repro.data.make_federated_dataset`).
    model / hidden:
        ``"logistic"`` or ``"mlp"`` and the MLP hidden widths.
    m_edges, tau1, tau2:
        Participation and period parameters of the hierarchical methods; two-layer
        methods receive the equivalent client participation via the registry.
    batch_size, eta_w, eta_p:
        SGD hyperparameters (η_p doubles as the baselines' η_q).
    slots:
        Training-slot budget shared by every algorithm.
    eval_points:
        Number of evaluation instants along each run.
    worst_target:
        The "reach X% worst accuracy" level for the rounds-to-target headline.
    """

    name: str
    dataset: str
    scale: str
    partition: str | None
    similarity: float
    num_edges: int | None
    clients_per_edge: int | None
    model: str
    hidden: tuple[int, ...]
    m_edges: int
    tau1: int
    tau2: int
    batch_size: int
    eta_w: float
    eta_p: float
    slots: int
    eval_points: int
    worst_target: float
    algorithms: tuple[str, ...] = field(default=FIGURE_ALGORITHMS)

    def rounds_for(self, slots_per_round: int) -> int:
        """Cloud rounds giving each algorithm the same ``slots`` budget."""
        if slots_per_round < 1:
            raise ValueError(f"slots_per_round must be >= 1, got {slots_per_round}")
        return max(1, self.slots // slots_per_round)

    def eval_every_for(self, slots_per_round: int) -> int:
        """Evaluation period (in rounds) yielding ~``eval_points`` instants."""
        rounds = self.rounds_for(slots_per_round)
        return max(1, rounds // self.eval_points)

    def with_overrides(self, **kwargs) -> "ExperimentPreset":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)


_SCALES = ("paper", "small", "tiny")


def _check_scale(scale: str) -> None:
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}; options: {_SCALES}")


def fig3_preset(scale: str = "small") -> ExperimentPreset:
    """Fig. 3: convex logistic regression on EMNIST-Digits, one class per edge.

    Paper parameters: N_E = 10, N0 = 3, m_E = 5, τ1 = τ2 = 2, η_w = η_p = 10⁻³,
    batch 1, ~20000 communication rounds.  The reduced scales raise η_w and the
    batch size to compress the horizon.
    """
    _check_scale(scale)
    base = ExperimentPreset(
        name="fig3", dataset="emnist_digits", scale=scale, partition="one_class",
        similarity=0.5, num_edges=10, clients_per_edge=3, model="logistic",
        hidden=(), m_edges=5, tau1=2, tau2=2,
        batch_size=1, eta_w=1e-3, eta_p=1e-3, slots=40000, eval_points=40,
        worst_target=0.80)
    if scale == "paper":
        return base
    if scale == "small":
        return base.with_overrides(batch_size=8, eta_w=0.03, eta_p=2e-3,
                                   slots=8000, eval_points=40, worst_target=0.62)
    return base.with_overrides(batch_size=8, eta_w=0.08, eta_p=4e-3,
                               slots=1200, eval_points=12, worst_target=0.55)


def fig4_preset(scale: str = "small") -> ExperimentPreset:
    """Fig. 4: non-convex MLP(300, 100) on Fashion-MNIST, 50% similarity.

    Paper parameters: N_E = 10, N0 = 3, m_E = 2, τ1 = τ2 = 2, η_w = 10⁻³,
    η_p = 10⁻⁴, batch 8.  Reduced scales shrink the hidden widths with the input.
    """
    _check_scale(scale)
    base = ExperimentPreset(
        name="fig4", dataset="fashion_mnist", scale=scale, partition="similarity",
        similarity=0.5, num_edges=10, clients_per_edge=3, model="mlp",
        hidden=(300, 100), m_edges=2, tau1=2, tau2=2,
        batch_size=8, eta_w=1e-3, eta_p=1e-4, slots=100000, eval_points=40,
        worst_target=0.50)
    if scale == "paper":
        return base
    if scale == "small":
        return base.with_overrides(hidden=(64, 32), eta_w=0.03, eta_p=2e-3,
                                   slots=16000, eval_points=40, worst_target=0.51)
    return base.with_overrides(hidden=(32,), eta_w=0.08, eta_p=4e-3,
                               slots=1200, eval_points=12, worst_target=0.45)


def table2_preset(dataset: str, scale: str = "small") -> ExperimentPreset:
    """Table 2 rows: HierFAVG vs HierMinimax, logistic regression, per dataset.

    Image rows use the Fig. 3 topology (10×3, one class per edge, m_E = 5);
    Adult uses 2 edge areas (Doctorate / non-Doctorate) with η_p = 10⁻⁴;
    Synthetic uses 100 edge areas (20 at ``small``, 8 at ``tiny``) with
    η_w = η_p = 10⁻⁴ in the paper and retuned reduced-scale rates.
    """
    _check_scale(scale)
    if dataset not in TABLE2_DATASETS:
        raise ValueError(f"unknown Table 2 dataset {dataset!r}; "
                         f"options: {TABLE2_DATASETS}")
    algorithms = ("hierfavg", "hierminimax")
    if dataset in ("emnist_digits", "fashion_mnist", "mnist"):
        preset = ExperimentPreset(
            name=f"table2:{dataset}", dataset=dataset, scale=scale,
            partition="one_class", similarity=0.5, num_edges=10,
            clients_per_edge=3, model="logistic", hidden=(), m_edges=5,
            tau1=2, tau2=2, batch_size=1, eta_w=1e-3, eta_p=1e-3,
            slots=40000, eval_points=20, worst_target=0.0, algorithms=algorithms)
        if scale == "small":
            preset = preset.with_overrides(batch_size=8, eta_w=0.05, eta_p=2e-3,
                                           slots=6000, eval_points=15)
        elif scale == "tiny":
            preset = preset.with_overrides(batch_size=8, eta_w=0.08, eta_p=4e-3,
                                           slots=1200, eval_points=8)
        return preset
    if dataset == "adult":
        preset = ExperimentPreset(
            name="table2:adult", dataset="adult", scale=scale, partition=None,
            similarity=0.5, num_edges=None, clients_per_edge=3, model="logistic",
            hidden=(), m_edges=2, tau1=2, tau2=2, batch_size=8, eta_w=1e-3,
            eta_p=1e-4, slots=20000, eval_points=15, worst_target=0.0,
            algorithms=algorithms)
        if scale == "small":
            preset = preset.with_overrides(eta_w=0.05, eta_p=2e-3, slots=4000,
                                           eval_points=10)
        elif scale == "tiny":
            preset = preset.with_overrides(eta_w=0.08, eta_p=4e-3, slots=800,
                                           eval_points=6)
        return preset
    # synthetic
    num_edges = {"paper": 100, "small": 20, "tiny": 8}[scale]
    m_edges = {"paper": 20, "small": 5, "tiny": 3}[scale]
    preset = ExperimentPreset(
        name="table2:synthetic", dataset="synthetic", scale=scale, partition=None,
        similarity=0.5, num_edges=num_edges, clients_per_edge=1, model="logistic",
        hidden=(), m_edges=m_edges, tau1=2, tau2=2, batch_size=8, eta_w=1e-4,
        eta_p=1e-4, slots=40000, eval_points=15, worst_target=0.0,
        algorithms=algorithms)
    if scale == "small":
        preset = preset.with_overrides(eta_w=0.02, eta_p=1e-3, slots=6000,
                                       eval_points=10)
    elif scale == "tiny":
        preset = preset.with_overrides(eta_w=0.04, eta_p=2e-3, slots=1200,
                                       eval_points=6)
    return preset
