"""Experiment runner: preset → datasets → algorithms → paired results.

:func:`run_experiment` executes every algorithm of a preset on the *same*
federated dataset with the same slot budget and returns their
:class:`~repro.core.base.RunResult` objects keyed by algorithm name.  The runner is
the single choke point used by figures, tables, ablations, examples, and benches.

Pass ``obs=Tracer(...)`` to collect per-phase wall-clock attribution, a metrics
snapshot, and (with a :class:`~repro.obs.TraceWriter`) a JSONL run record — all
exposed on the returned :class:`ExperimentOutput`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.baselines.registry import make_algorithm
from repro.core.base import RunResult
from repro.defense.attacks import AttackPlan, apply_label_flip
from repro.faults import FaultPlan, resolve_injector
from repro.membership import ChurnPlan
from repro.data.dataset import FederatedDataset
from repro.data.registry import make_federated_dataset
from repro.exec import ExecutionBackend, resolve_backend
from repro.experiments.presets import ExperimentPreset
from repro.nn.models import ModelFactory, make_model_factory
from repro.obs import NULL_TRACER
from repro.simtime import CostModel, make_cost_model, resolve_timing
from repro.utils.timers import TimerBank

__all__ = ["ExperimentOutput", "build_preset_dataset", "build_preset_model", "run_experiment"]


@dataclass(frozen=True)
class ExperimentOutput:
    """All results of one preset execution.

    Attributes
    ----------
    preset / results:
        The configuration and the per-algorithm :class:`RunResult` objects.
    timings:
        Algorithm → total training wall-clock seconds (one number per run).
    phase_times:
        Algorithm → span name → accumulated seconds, from the ``obs`` tracer
        (``phase1_model_update``, ``phase2_weight_update``, ``evaluate``,
        ``edge_block``, …).  Empty when no tracer was supplied — this is what
        lets benchmarks report per-phase attribution instead of a single
        wall-clock number.
    metrics:
        The tracer's final metrics snapshot (counters / gauges / histograms);
        empty without a tracer.
    setup_times:
        Non-training phases of the experiment itself (``data_gen``).
    sim_times:
        Algorithm → total *simulated* seconds (the virtual-clock makespan of
        the whole run, from the ``cost_model``).  All zeros when no cost
        model was supplied.
    """

    preset: ExperimentPreset
    results: Mapping[str, RunResult]
    timings: Mapping[str, float]
    phase_times: Mapping[str, Mapping[str, float]] = field(default_factory=dict)
    metrics: Mapping[str, Any] = field(default_factory=dict)
    setup_times: Mapping[str, float] = field(default_factory=dict)
    sim_times: Mapping[str, float] = field(default_factory=dict)

    def histories(self) -> dict[str, "object"]:
        """Algorithm → :class:`~repro.metrics.history.TrainingHistory`."""
        return {name: res.history for name, res in self.results.items()}


def build_preset_dataset(preset: ExperimentPreset, *, seed: int = 0,
                         ) -> FederatedDataset:
    """Materialize the preset's federated dataset."""
    return make_federated_dataset(
        preset.dataset, seed=seed, scale=preset.scale,
        num_edges=preset.num_edges, clients_per_edge=preset.clients_per_edge,
        partition=preset.partition, similarity=preset.similarity)


def build_preset_model(preset: ExperimentPreset,
                       dataset: FederatedDataset) -> ModelFactory:
    """Model factory matching the preset (logistic or MLP)."""
    return make_model_factory(preset.model, dataset.input_dim, dataset.num_classes,
                              hidden=preset.hidden)


def run_experiment(preset: ExperimentPreset, *, seed: int = 0,
                   algorithms: tuple[str, ...] | None = None,
                   logger=None, obs=None, faults=None,
                   attack=None, defense=None,
                   checkpoint_dir=None, checkpoint_every: int | None = None,
                   resume: bool = False,
                   backend=None, workers: int | None = None,
                   cost_model=None, churn=None,
                   population=None) -> ExperimentOutput:
    """Run every algorithm of ``preset`` on a shared dataset; return paired results.

    Parameters
    ----------
    seed:
        Root seed used for the dataset *and* every algorithm (paired comparison).
    algorithms:
        Optional roster override (default: ``preset.algorithms``).
    logger:
        Optional structured-event callback forwarded to each algorithm.
    obs:
        Optional :class:`~repro.obs.Tracer` shared by the runner (``data_gen``
        span) and every algorithm; per-algorithm span-time deltas land in
        :attr:`ExperimentOutput.phase_times`.
    faults:
        Optional :class:`~repro.faults.FaultPlan` forwarded to every
        algorithm.  Each algorithm gets its *own* injector (bound to ``obs``),
        so fault decisions stay a pure function of ``(plan.seed, round,
        entity)`` and are identical across the roster.
    attack:
        Optional Byzantine attack: an
        :class:`~repro.defense.AttackPlan` or a spec string for
        :meth:`AttackPlan.parse` (``"sign_flip,fraction=0.2"``).  Merged into
        the fault plan (creating a fresh one when ``faults`` is ``None``);
        a ``label_flip`` attack additionally poisons the byzantine clients'
        training shards before any algorithm runs.
    defense:
        Optional countermeasure policy — a
        :class:`~repro.defense.DefensePolicy`, aggregator name, or spec
        string for :func:`~repro.defense.resolve_defense` — forwarded to
        every algorithm of the roster.
    checkpoint_dir / checkpoint_every:
        When both are set, each algorithm writes
        ``<checkpoint_dir>/<name>.ckpt.json`` every ``checkpoint_every``
        rounds (atomic writes; see :mod:`repro.faults.checkpoint`).
    resume:
        Restore each algorithm from its checkpoint file before running, when
        one exists — the run then completes only the remaining rounds and its
        history is bit-identical to an uninterrupted run.
    backend / workers:
        Execution backend for client local training, shared by every
        algorithm of the roster: an
        :class:`~repro.exec.ExecutionBackend` instance (caller owns its
        lifecycle), a name (``serial``/``thread``/``process``/``vectorized``
        — the runner closes the pool it creates when done), or ``None``
        (``REPRO_BACKEND`` environment variable, default serial).  Results
        are bit-identical for every choice (see :mod:`repro.exec`).
    cost_model:
        Optional simulated-time pricing — a
        :class:`~repro.simtime.CostModel` or a spec string for
        :func:`~repro.simtime.make_cost_model` (``"hetero,seed=1,..."``).
        Each algorithm gets a *fresh* :class:`~repro.simtime.SimTimer` over
        the shared model, so makespans are directly comparable across the
        roster; totals land in :attr:`ExperimentOutput.sim_times` and
        per-evaluation clocks on each history point's ``sim_time_s``.
        Numerical trajectories are unaffected (the clock is purely
        observational).
    churn:
        Optional dynamic-membership plan — a
        :class:`~repro.membership.ChurnPlan` or a spec string for
        :meth:`ChurnPlan.parse` (``"arrive=0.05,depart=0.02,edge_mttf=40"``).
        Each algorithm gets a *fresh*
        :class:`~repro.membership.MembershipManager` so churn decisions stay
        a pure function of ``(plan.seed, round, entity)`` and are identical
        across the roster.
    population:
        Optional virtual population replacing the preset's materialized
        dataset: a :class:`~repro.population.PopulationSpec` or a spec string
        for :meth:`PopulationSpec.parse`
        (``"clients=1000000,edges=1000,samples=2"``).  The preset's data
        knobs (``dataset``/``scale``/``partition``) are ignored; its
        algorithm roster, slot budget, and hyperparameters still apply.
        Each algorithm builds its *own* fresh
        :class:`~repro.population.VirtualPopulation` over the shared spec, so
        cohort derivations stay pure functions of ``(spec.seed, client_id)``
        and runs remain paired.  Incompatible with ``label_flip`` attacks
        (data poisoning needs a materialized dataset).
    """
    obs = obs if obs is not None else NULL_TRACER
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir")
    if attack is not None:
        plan = AttackPlan.parse(attack) if isinstance(attack, str) else attack
        if not isinstance(plan, AttackPlan):
            raise TypeError("attack must be an AttackPlan or a spec string, "
                            f"got {type(attack).__name__}")
        if not plan.is_null:
            base = faults if faults is not None else FaultPlan()
            if not isinstance(base, FaultPlan):
                raise TypeError("run_experiment takes a FaultPlan when "
                                "combining faults with an attack")
            faults = replace(base, byzantine=plan)
    if churn is not None and isinstance(churn, str):
        churn = ChurnPlan.parse(churn)
    if population is not None and isinstance(population, str):
        from repro.population import PopulationSpec

        population = PopulationSpec.parse(population)
    owns_backend = not isinstance(backend, ExecutionBackend)
    backend = resolve_backend(backend, workers)
    setup = TimerBank()
    with setup("data_gen"), obs.span("data_gen", dataset=preset.dataset,
                                     scale=preset.scale, seed=seed):
        if population is not None:
            # Virtual population: nothing to materialize — the "dataset" the
            # roster shares is the spec itself; each algorithm derives its
            # own lazy cohorts from it.
            if (faults is not None and isinstance(faults, FaultPlan)
                    and faults.has_attack
                    and faults.byzantine.attack == "label_flip"):
                raise ValueError("label_flip attacks poison materialized "
                                 "shards and cannot run against a virtual "
                                 "population")
            dataset = population
        else:
            dataset = build_preset_dataset(preset, seed=seed)
            if (faults is not None and isinstance(faults, FaultPlan)
                    and faults.has_attack):
                # Data poisoning happens once, before any algorithm trains.
                dataset = apply_label_flip(dataset, faults.byzantine)
        model_factory = build_preset_model(preset, dataset)
    if cost_model is not None and not isinstance(cost_model, CostModel):
        cost_model = make_cost_model(cost_model)
    roster = algorithms if algorithms is not None else preset.algorithms
    timers = TimerBank()
    results: dict[str, RunResult] = {}
    phase_times: dict[str, dict[str, float]] = {}
    try:
        _run_roster(preset, roster, dataset, model_factory, results, phase_times,
                    timers, seed=seed, logger=logger, obs=obs, faults=faults,
                    defense=defense, checkpoint_dir=checkpoint_dir,
                    checkpoint_every=checkpoint_every, resume=resume,
                    backend=backend, cost_model=cost_model, churn=churn)
    finally:
        if owns_backend:
            backend.close()
    return ExperimentOutput(preset=preset, results=results,
                            timings=timers.summary(),
                            phase_times=phase_times,
                            metrics=obs.snapshot() if obs.enabled else {},
                            setup_times=setup.summary(),
                            sim_times={name: res.sim_time_s
                                       for name, res in results.items()})


def _run_roster(preset, roster, dataset, model_factory, results, phase_times,
                timers, *, seed, logger, obs, faults, defense, checkpoint_dir,
                checkpoint_every, resume, backend, cost_model=None,
                churn=None) -> None:
    """Execute each algorithm of ``roster`` in turn, filling the result maps."""
    for name in roster:
        # A fresh timer per algorithm: one run's makespan never leaks into
        # the next, so the roster's sim_times are directly comparable.
        timing = resolve_timing(cost_model)
        injector = None
        if faults is not None:
            plan = faults if isinstance(faults, FaultPlan) else None
            if plan is None:
                raise TypeError("run_experiment takes a FaultPlan (one fresh "
                                "injector is built per algorithm)")
            injector = resolve_injector(plan, obs=obs)
        algo = make_algorithm(
            name, dataset, model_factory,
            batch_size=preset.batch_size, eta_w=preset.eta_w, eta_p=preset.eta_p,
            tau1=preset.tau1, tau2=preset.tau2, m_edges=preset.m_edges,
            seed=seed, logger=logger, obs=obs, faults=injector,
            backend=backend, defense=defense, timing=timing, churn=churn)
        rounds = preset.rounds_for(algo.slots_per_round)
        eval_every = preset.eval_every_for(algo.slots_per_round)
        ckpt_path = None
        if checkpoint_dir is not None:
            ckpt_path = Path(checkpoint_dir) / f"{name}.ckpt.json"
        if resume and ckpt_path is not None and ckpt_path.exists():
            done = algo.load_checkpoint(ckpt_path)
            rounds = max(0, rounds - done)
        before = obs.span_totals() if obs.enabled else {}
        with timers(name):
            if rounds > 0:
                results[name] = algo.run(
                    rounds=rounds, eval_every=eval_every,
                    checkpoint_path=ckpt_path, checkpoint_every=checkpoint_every)
            else:
                # Checkpoint already covers the full budget: report as-is.
                history = (algo._resume_history
                           if algo._resume_history is not None
                           else algo._history)
                if history is None:
                    from repro.metrics.history import TrainingHistory
                    history = TrainingHistory(algo.name)
                results[name] = algo._build_result(history)
        if obs.enabled:
            after = obs.span_totals()
            phase_times[name] = {
                span: after[span]["total_s"]
                - before.get(span, {}).get("total_s", 0.0)
                for span in after
                if after[span]["total_s"]
                - before.get(span, {}).get("total_s", 0.0) > 0.0
            }
        # Progress marker between roster entries: lets `trace-report --follow`
        # (and any offline reader) see which algorithms have finished while
        # the rest of the roster is still training.
        res = results[name]
        done_fields = {"algorithm": name, "rounds": res.rounds_run,
                       "wall_s": timers.summary().get(name, 0.0)}
        if res.sim_time_s:
            done_fields["sim_time_s"] = res.sim_time_s
        if res.history.points:
            done_fields["worst_accuracy"] = float(
                res.history.final().record.worst_accuracy)
        obs.event("algorithm_done", **done_fields)


def monotone_envelope(y: np.ndarray) -> np.ndarray:
    """Running maximum of a series — the standard smoothing for noisy
    accuracy-vs-rounds curves when extracting crossing times."""
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError(f"need a 1-D series, got shape {y.shape}")
    return np.maximum.accumulate(y)
