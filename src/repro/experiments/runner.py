"""Experiment runner: preset → datasets → algorithms → paired results.

:func:`run_experiment` executes every algorithm of a preset on the *same*
federated dataset with the same slot budget and returns their
:class:`~repro.core.base.RunResult` objects keyed by algorithm name.  The runner is
the single choke point used by figures, tables, ablations, examples, and benches.

Pass ``obs=Tracer(...)`` to collect per-phase wall-clock attribution, a metrics
snapshot, and (with a :class:`~repro.obs.TraceWriter`) a JSONL run record — all
exposed on the returned :class:`ExperimentOutput`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.baselines.registry import make_algorithm
from repro.core.base import RunResult
from repro.data.dataset import FederatedDataset
from repro.data.registry import make_federated_dataset
from repro.experiments.presets import ExperimentPreset
from repro.nn.models import ModelFactory, make_model_factory
from repro.obs import NULL_TRACER
from repro.utils.timers import TimerBank

__all__ = ["ExperimentOutput", "build_preset_dataset", "build_preset_model", "run_experiment"]


@dataclass(frozen=True)
class ExperimentOutput:
    """All results of one preset execution.

    Attributes
    ----------
    preset / results:
        The configuration and the per-algorithm :class:`RunResult` objects.
    timings:
        Algorithm → total training wall-clock seconds (one number per run).
    phase_times:
        Algorithm → span name → accumulated seconds, from the ``obs`` tracer
        (``phase1_model_update``, ``phase2_weight_update``, ``evaluate``,
        ``edge_block``, …).  Empty when no tracer was supplied — this is what
        lets benchmarks report per-phase attribution instead of a single
        wall-clock number.
    metrics:
        The tracer's final metrics snapshot (counters / gauges / histograms);
        empty without a tracer.
    setup_times:
        Non-training phases of the experiment itself (``data_gen``).
    """

    preset: ExperimentPreset
    results: Mapping[str, RunResult]
    timings: Mapping[str, float]
    phase_times: Mapping[str, Mapping[str, float]] = field(default_factory=dict)
    metrics: Mapping[str, Any] = field(default_factory=dict)
    setup_times: Mapping[str, float] = field(default_factory=dict)

    def histories(self) -> dict[str, "object"]:
        """Algorithm → :class:`~repro.metrics.history.TrainingHistory`."""
        return {name: res.history for name, res in self.results.items()}


def build_preset_dataset(preset: ExperimentPreset, *, seed: int = 0,
                         ) -> FederatedDataset:
    """Materialize the preset's federated dataset."""
    return make_federated_dataset(
        preset.dataset, seed=seed, scale=preset.scale,
        num_edges=preset.num_edges, clients_per_edge=preset.clients_per_edge,
        partition=preset.partition, similarity=preset.similarity)


def build_preset_model(preset: ExperimentPreset,
                       dataset: FederatedDataset) -> ModelFactory:
    """Model factory matching the preset (logistic or MLP)."""
    return make_model_factory(preset.model, dataset.input_dim, dataset.num_classes,
                              hidden=preset.hidden)


def run_experiment(preset: ExperimentPreset, *, seed: int = 0,
                   algorithms: tuple[str, ...] | None = None,
                   logger=None, obs=None) -> ExperimentOutput:
    """Run every algorithm of ``preset`` on a shared dataset; return paired results.

    Parameters
    ----------
    seed:
        Root seed used for the dataset *and* every algorithm (paired comparison).
    algorithms:
        Optional roster override (default: ``preset.algorithms``).
    logger:
        Optional structured-event callback forwarded to each algorithm.
    obs:
        Optional :class:`~repro.obs.Tracer` shared by the runner (``data_gen``
        span) and every algorithm; per-algorithm span-time deltas land in
        :attr:`ExperimentOutput.phase_times`.
    """
    obs = obs if obs is not None else NULL_TRACER
    setup = TimerBank()
    with setup("data_gen"), obs.span("data_gen", dataset=preset.dataset,
                                     scale=preset.scale, seed=seed):
        dataset = build_preset_dataset(preset, seed=seed)
        model_factory = build_preset_model(preset, dataset)
    roster = algorithms if algorithms is not None else preset.algorithms
    timers = TimerBank()
    results: dict[str, RunResult] = {}
    phase_times: dict[str, dict[str, float]] = {}
    for name in roster:
        algo = make_algorithm(
            name, dataset, model_factory,
            batch_size=preset.batch_size, eta_w=preset.eta_w, eta_p=preset.eta_p,
            tau1=preset.tau1, tau2=preset.tau2, m_edges=preset.m_edges,
            seed=seed, logger=logger, obs=obs)
        rounds = preset.rounds_for(algo.slots_per_round)
        eval_every = preset.eval_every_for(algo.slots_per_round)
        before = obs.span_totals() if obs.enabled else {}
        with timers(name):
            results[name] = algo.run(rounds=rounds, eval_every=eval_every)
        if obs.enabled:
            after = obs.span_totals()
            phase_times[name] = {
                span: after[span]["total_s"]
                - before.get(span, {}).get("total_s", 0.0)
                for span in after
                if after[span]["total_s"]
                - before.get(span, {}).get("total_s", 0.0) > 0.0
            }
    return ExperimentOutput(preset=preset, results=results,
                            timings=timers.summary(),
                            phase_times=phase_times,
                            metrics=obs.snapshot() if obs.enabled else {},
                            setup_times=setup.summary())


def monotone_envelope(y: np.ndarray) -> np.ndarray:
    """Running maximum of a series — the standard smoothing for noisy
    accuracy-vs-rounds curves when extracting crossing times."""
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError(f"need a 1-D series, got shape {y.shape}")
    return np.maximum.accumulate(y)
