"""Experiment runner: preset → datasets → algorithms → paired results.

:func:`run_experiment` executes every algorithm of a preset on the *same*
federated dataset with the same slot budget and returns their
:class:`~repro.core.base.RunResult` objects keyed by algorithm name.  The runner is
the single choke point used by figures, tables, ablations, examples, and benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.baselines.registry import make_algorithm
from repro.core.base import RunResult
from repro.data.dataset import FederatedDataset
from repro.data.registry import make_federated_dataset
from repro.experiments.presets import ExperimentPreset
from repro.nn.models import ModelFactory, make_model_factory
from repro.utils.timers import TimerBank

__all__ = ["ExperimentOutput", "build_preset_dataset", "build_preset_model", "run_experiment"]


@dataclass(frozen=True)
class ExperimentOutput:
    """All results of one preset execution."""

    preset: ExperimentPreset
    results: Mapping[str, RunResult]
    timings: Mapping[str, float]

    def histories(self) -> dict[str, "object"]:
        """Algorithm → :class:`~repro.metrics.history.TrainingHistory`."""
        return {name: res.history for name, res in self.results.items()}


def build_preset_dataset(preset: ExperimentPreset, *, seed: int = 0,
                         ) -> FederatedDataset:
    """Materialize the preset's federated dataset."""
    return make_federated_dataset(
        preset.dataset, seed=seed, scale=preset.scale,
        num_edges=preset.num_edges, clients_per_edge=preset.clients_per_edge,
        partition=preset.partition, similarity=preset.similarity)


def build_preset_model(preset: ExperimentPreset,
                       dataset: FederatedDataset) -> ModelFactory:
    """Model factory matching the preset (logistic or MLP)."""
    return make_model_factory(preset.model, dataset.input_dim, dataset.num_classes,
                              hidden=preset.hidden)


def run_experiment(preset: ExperimentPreset, *, seed: int = 0,
                   algorithms: tuple[str, ...] | None = None,
                   logger=None) -> ExperimentOutput:
    """Run every algorithm of ``preset`` on a shared dataset; return paired results.

    Parameters
    ----------
    seed:
        Root seed used for the dataset *and* every algorithm (paired comparison).
    algorithms:
        Optional roster override (default: ``preset.algorithms``).
    logger:
        Optional structured-event callback forwarded to each algorithm.
    """
    dataset = build_preset_dataset(preset, seed=seed)
    model_factory = build_preset_model(preset, dataset)
    roster = algorithms if algorithms is not None else preset.algorithms
    timers = TimerBank()
    results: dict[str, RunResult] = {}
    for name in roster:
        algo = make_algorithm(
            name, dataset, model_factory,
            batch_size=preset.batch_size, eta_w=preset.eta_w, eta_p=preset.eta_p,
            tau1=preset.tau1, tau2=preset.tau2, m_edges=preset.m_edges,
            seed=seed, logger=logger)
        rounds = preset.rounds_for(algo.slots_per_round)
        eval_every = preset.eval_every_for(algo.slots_per_round)
        with timers(name):
            results[name] = algo.run(rounds=rounds, eval_every=eval_every)
    return ExperimentOutput(preset=preset, results=results,
                            timings=timers.summary())


def monotone_envelope(y: np.ndarray) -> np.ndarray:
    """Running maximum of a series — the standard smoothing for noisy
    accuracy-vs-rounds curves when extracting crossing times."""
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError(f"need a 1-D series, got shape {y.shape}")
    return np.maximum.accumulate(y)
