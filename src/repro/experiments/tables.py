"""Table builders: the HierFAVG-vs-HierMinimax fairness comparison of Table 2.

For each dataset row the builder runs both hierarchical methods on the same
federated layout and reports average accuracy, worst accuracy, and the variance of
per-edge-area accuracies (×10⁴, the paper's units).  The Synthetic row reports the
worst-10% accuracy following Li et al. [19], as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.presets import TABLE2_DATASETS, table2_preset
from repro.experiments.runner import run_experiment

__all__ = ["Table2Row", "table2_row", "table2", "format_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One (dataset, method) entry of Table 2.

    ``worst_measure`` labels what the ``worst`` column actually holds:
    ``"worst"`` (minimum per-edge accuracy), ``"worst10%"`` (mean of the
    worst decile), or ``"worst10%*"`` when the layout had fewer than 10 edge
    areas and the worst-10% statistic degraded to the plain minimum
    (``extra["worst10_degraded"]`` on the evaluation record).
    """

    dataset: str
    method: str
    average: float
    worst: float
    variance_x1e4: float
    worst_measure: str = "worst"

    def as_tuple(self) -> tuple[str, str, float, float, float]:
        """(dataset, method, average, worst, variance) — serialization order."""
        return (self.dataset, self.method, self.average, self.worst,
                self.variance_x1e4)


def table2_row(dataset: str, *, scale: str = "small", seed: int = 0,
               logger=None) -> list[Table2Row]:
    """Run one dataset's HierFAVG/HierMinimax pair and emit its two table entries."""
    preset = table2_preset(dataset, scale)
    output = run_experiment(preset, seed=seed, logger=logger)
    rows: list[Table2Row] = []
    use_worst10 = dataset == "synthetic"
    for method in preset.algorithms:
        record = output.results[method].history.final().record
        if use_worst10:
            worst = record.worst10_accuracy
            degraded = bool(record.extra.get("worst10_degraded", False))
            measure = "worst10%*" if degraded else "worst10%"
        else:
            worst = record.worst_accuracy
            measure = "worst"
        rows.append(Table2Row(
            dataset=dataset, method=method,
            average=record.average_accuracy, worst=worst,
            variance_x1e4=record.variance_x1e4, worst_measure=measure))
    return rows


def table2(*, scale: str = "small", seed: int = 0,
           datasets: tuple[str, ...] = TABLE2_DATASETS,
           logger=None) -> list[Table2Row]:
    """All rows of Table 2 (five datasets × two methods)."""
    rows: list[Table2Row] = []
    for dataset in datasets:
        rows.extend(table2_row(dataset, scale=scale, seed=seed, logger=logger))
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    """Render rows in the paper's Table 2 layout."""
    lines = [
        "=== Table 2: comparison of HierFAVG and HierMinimax ===",
        f"{'Dataset':16s} {'Method':13s} {'Average':>9s} {'Worst':>9s} {'Variance':>10s}  {'Measure':s}",
    ]
    degraded = False
    for row in rows:
        degraded = degraded or row.worst_measure.endswith("*")
        lines.append(f"{row.dataset:16s} {row.method:13s} {row.average:9.4f} "
                     f"{row.worst:9.4f} {row.variance_x1e4:10.4f}  "
                     f"{row.worst_measure}")
    if degraded:
        lines.append("* fewer than 10 edge areas: worst-10% degraded to the "
                     "plain worst accuracy")
    return "\n".join(lines)
