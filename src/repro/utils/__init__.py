"""Shared utilities: RNG stream management, validation, serialization, logging."""

from repro.utils.logging import NullLogger, RunLogger
from repro.utils.rng import RngFactory, as_generator, spawn_generators, stable_key
from repro.utils.serialization import from_jsonable, load_json, save_json, to_jsonable
from repro.utils.timers import Timer, TimerBank
from repro.utils.validation import (
    check_array_1d,
    check_array_2d,
    check_fraction,
    check_in_unit_interval,
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
    check_same_length,
    check_simplex_vector,
)

__all__ = [
    "NullLogger",
    "RunLogger",
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "stable_key",
    "from_jsonable",
    "load_json",
    "save_json",
    "to_jsonable",
    "Timer",
    "TimerBank",
    "check_array_1d",
    "check_array_2d",
    "check_fraction",
    "check_in_unit_interval",
    "check_nonnegative_int",
    "check_positive_float",
    "check_positive_int",
    "check_probability",
    "check_same_length",
    "check_simplex_vector",
]
