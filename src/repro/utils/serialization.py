"""Serialization of experiment results to JSON.

Experiment outputs (training histories, table rows, figure series) are plain nested
structures of dicts/lists/NumPy scalars/arrays.  These helpers convert them to and
from portable JSON so benchmark runs can be archived and diffed.  Arrays are stored
as ``{"__ndarray__": [...], "dtype": ..., "shape": [...]}`` envelopes, which keeps
files human-readable for the modest sizes produced here.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["to_jsonable", "from_jsonable", "save_json", "load_json"]

_ARRAY_KEY = "__ndarray__"


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-encodable structures."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        value = float(obj)
        return value
    if isinstance(obj, np.ndarray):
        return {_ARRAY_KEY: obj.tolist(), "dtype": str(obj.dtype), "shape": list(obj.shape)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: to_jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    raise TypeError(f"cannot serialize object of type {type(obj).__name__}")


def from_jsonable(obj: Any) -> Any:
    """Inverse of :func:`to_jsonable`; reconstructs ndarray envelopes."""
    if isinstance(obj, dict):
        if _ARRAY_KEY in obj:
            return np.asarray(obj[_ARRAY_KEY], dtype=obj.get("dtype", "float64")).reshape(
                obj.get("shape", -1))
        return {k: from_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [from_jsonable(v) for v in obj]
    return obj


def save_json(path: str | Path, obj: Any, *, indent: int = 2) -> Path:
    """Serialize ``obj`` to ``path`` as JSON; parent directories are created."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(obj), indent=indent, sort_keys=True))
    return path


def load_json(path: str | Path) -> Any:
    """Load a JSON file written by :func:`save_json`."""
    return from_jsonable(json.loads(Path(path).read_text()))
