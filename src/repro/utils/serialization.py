"""Serialization of experiment results to JSON.

Experiment outputs (training histories, table rows, figure series) are plain nested
structures of dicts/lists/NumPy scalars/arrays.  These helpers convert them to and
from portable JSON so benchmark runs can be archived and diffed.  Arrays are stored
as ``{"__ndarray__": [...], "dtype": ..., "shape": [...]}`` envelopes, which keeps
files human-readable for the modest sizes produced here.

Checkpoint payloads (see :mod:`repro.faults.checkpoint`) additionally carry
``np.random.Generator`` objects; these round-trip *exactly* through a
``{"__bitgen__": <BitGenerator name>, "state": {...}}`` envelope — Python ints
are arbitrary-precision, so even PCG64's 128-bit state survives JSON intact —
which is what makes resumed runs bit-identical.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["to_jsonable", "from_jsonable", "save_json", "load_json",
           "canonical_bytes"]

_ARRAY_KEY = "__ndarray__"
_BITGEN_KEY = "__bitgen__"


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-encodable structures."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        value = float(obj)
        return value
    if isinstance(obj, np.ndarray):
        return {_ARRAY_KEY: obj.tolist(), "dtype": str(obj.dtype), "shape": list(obj.shape)}
    if isinstance(obj, np.random.Generator):
        state = obj.bit_generator.state
        return {_BITGEN_KEY: state["bit_generator"], "state": to_jsonable(state)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: to_jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    raise TypeError(f"cannot serialize object of type {type(obj).__name__}")


def from_jsonable(obj: Any) -> Any:
    """Inverse of :func:`to_jsonable`; reconstructs ndarray/Generator envelopes."""
    if isinstance(obj, dict):
        if _ARRAY_KEY in obj:
            return np.asarray(obj[_ARRAY_KEY], dtype=obj.get("dtype", "float64")).reshape(
                obj.get("shape", -1))
        if _BITGEN_KEY in obj:
            name = obj[_BITGEN_KEY]
            try:
                bitgen_cls = getattr(np.random, name)
            except AttributeError as exc:
                raise ValueError(f"unknown BitGenerator {name!r} in "
                                 f"serialized state") from exc
            gen = np.random.Generator(bitgen_cls())
            gen.bit_generator.state = from_jsonable(obj["state"])
            return gen
        return {k: from_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [from_jsonable(v) for v in obj]
    return obj


def canonical_bytes(obj: Any) -> bytes:
    """One canonical byte encoding of ``obj`` — the checksum input.

    Keys sorted, no whitespace, UTF-8: two structurally equal payloads always
    produce the same bytes, independent of dict insertion order or the pretty
    ``indent`` a file was written with.  ``obj`` may contain arrays/generators
    (run through :func:`to_jsonable`) or already be plain JSON structures —
    :func:`to_jsonable` is idempotent on its own output, so a checksum
    computed at save time over the live payload matches one recomputed at
    load time over the parsed file.
    """
    return json.dumps(to_jsonable(obj), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def save_json(path: str | Path, obj: Any, *, indent: int = 2) -> Path:
    """Serialize ``obj`` to ``path`` as JSON; parent directories are created."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(obj), indent=indent, sort_keys=True))
    return path


def load_json(path: str | Path) -> Any:
    """Load a JSON file written by :func:`save_json`.

    Raises
    ------
    ValueError
        When the file is not valid JSON (e.g. a truncated checkpoint from a
        kill mid-write) — the message names the offending path.
    """
    path = Path(path)
    try:
        return from_jsonable(json.loads(path.read_text()))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON "
                         f"(corrupted or truncated file): {exc}") from exc
