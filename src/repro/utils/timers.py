"""Lightweight wall-clock timers for profiling experiment phases.

Following the optimization workflow in the scientific-Python guide (measure before
optimizing), the experiment runner tags each phase (data generation, training,
evaluation) with a :class:`Timer` so that benchmark output can attribute time.
"""

from __future__ import annotations

import time
from typing import Dict

__all__ = ["Timer", "TimerBank"]


class Timer:
    """Accumulating context-manager timer.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.total >= 0.0
    True
    """

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is None:  # pragma: no cover - defensive
            return
        self.total += time.perf_counter() - self._start
        self.count += 1
        self._start = None

    @property
    def mean(self) -> float:
        """Mean duration per enter/exit cycle (0 if never used)."""
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timer(total={self.total:.4f}s, count={self.count})"


class TimerBank:
    """Dictionary of named :class:`Timer` objects created on first use."""

    def __init__(self) -> None:
        self._timers: Dict[str, Timer] = {}

    def __call__(self, name: str) -> Timer:
        """Return (creating if needed) the timer called ``name``."""
        if name not in self._timers:
            self._timers[name] = Timer()
        return self._timers[name]

    def summary(self) -> Dict[str, float]:
        """Map of timer name to accumulated seconds."""
        return {name: t.total for name, t in self._timers.items()}
