"""Deterministic random-number-stream management.

Every stochastic component in this library (clients' minibatch draws, the cloud's
edge sampling, dataset generators, parameter initialization) consumes an explicit
:class:`numpy.random.Generator`.  A single root seed is expanded into independent,
collision-free child streams via :class:`numpy.random.SeedSequence` spawning, so

* repeated runs with the same seed are bit-identical,
* adding a consumer never perturbs the streams of existing consumers, and
* per-client streams are statistically independent (no shared state, no locking),
  which mirrors how per-rank RNGs are handled in MPI-style HPC codes.

The central object is :class:`RngFactory`; algorithms hold one and hand out named
streams.  Names are hashed into the spawn key, so the mapping ``name -> stream`` is
stable across runs and across call order.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np

__all__ = ["RngFactory", "spawn_generators", "as_generator", "stable_key",
           "generator_token", "generator_from_token", "restore_generator"]


def generator_token(gen: np.random.Generator) -> dict:
    """Snapshot ``gen`` into a picklable/JSON-able token.

    The token is the same ``{"__bitgen__": name, "state": {...}}`` envelope the
    checkpoint serializer (:mod:`repro.utils.serialization`) writes, so it
    round-trips *exactly*: Python ints are arbitrary-precision, surviving even
    PCG64's 128-bit state.  Use it to move generator state across process
    boundaries (execution-backend task descriptors) or into checkpoints.
    """
    from repro.utils.serialization import to_jsonable

    return to_jsonable(gen)


def generator_from_token(token: dict) -> np.random.Generator:
    """Rebuild a generator from a :func:`generator_token` snapshot.

    The returned generator continues the stream bit-identically from the
    snapshotted position.
    """
    from repro.utils.serialization import from_jsonable

    gen = from_jsonable(token)
    if not isinstance(gen, np.random.Generator):
        raise ValueError(f"not a generator token: {token!r}")
    return gen


def restore_generator(target: np.random.Generator,
                      source: np.random.Generator | dict) -> None:
    """Copy ``source``'s bit-generator state into ``target`` in place.

    ``source`` may be another generator or a :func:`generator_token` snapshot.
    In-place restoration keeps every alias to ``target`` (clients hold their
    sampler's generator, algorithms hold named streams) pointing at the
    restored stream.
    """
    if isinstance(source, dict):
        source = generator_from_token(source)
    target.bit_generator.state = source.bit_generator.state


def stable_key(name: str) -> int:
    """Map a string to a stable 64-bit integer (process-independent).

    Python's builtin ``hash`` is salted per process; we need a deterministic key so
    that named streams are reproducible across runs.  BLAKE2 is used for speed and
    availability in the standard library.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def as_generator(seed: int | np.random.Generator | np.random.SeedSequence | None,
                 ) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an integer seed, an existing generator (returned unchanged), a
    ``SeedSequence``, or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: int | np.random.SeedSequence, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators from one seed.

    Streams are derived through ``SeedSequence.spawn`` and are guaranteed
    non-overlapping by the underlying Philox/PCG spawning machinery.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


class RngFactory:
    """Factory of named, independent random streams rooted at a single seed.

    Examples
    --------
    >>> factory = RngFactory(seed=0)
    >>> cloud_rng = factory.stream("cloud")
    >>> client_rngs = factory.streams("client", 30)

    Calling :meth:`stream` twice with the same name returns generators with the same
    *initial* state (two independent handles on an identical stream definition); the
    caller owns advancement of the state.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """Root seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return an independent generator for the consumer called ``name``."""
        ss = np.random.SeedSequence(entropy=self._seed, spawn_key=(stable_key(name),))
        return np.random.default_rng(ss)

    def stream_at(self, name: str, i: int) -> np.random.Generator:
        """Return the ``i``-th stream of the ``name`` family without building the rest.

        ``stream_at(name, i)`` is bit-identical to ``streams(name, n)[i]`` for any
        ``n > i`` — the stream is a pure function of ``(seed, name, i)``.  This is
        what lets virtual populations derive a single client's generator on
        demand out of millions without materializing the full list.
        """
        if i < 0:
            raise ValueError(f"stream index must be >= 0, got {i}")
        ss = np.random.SeedSequence(entropy=self._seed,
                                    spawn_key=(stable_key(name), int(i)))
        return np.random.default_rng(ss)

    def streams(self, name: str, n: int) -> list[np.random.Generator]:
        """Return ``n`` independent generators, e.g. one per client."""
        if n < 0:
            raise ValueError(f"cannot create {n} streams")
        key = stable_key(name)
        return [
            np.random.default_rng(np.random.SeedSequence(entropy=self._seed,
                                                         spawn_key=(key, i)))
            for i in range(n)
        ]

    def iter_streams(self, name: str) -> Iterator[np.random.Generator]:
        """Yield an unbounded sequence of independent generators for ``name``."""
        key = stable_key(name)
        i = 0
        while True:
            yield np.random.default_rng(
                np.random.SeedSequence(entropy=self._seed, spawn_key=(key, i)))
            i += 1

    def child(self, name: str) -> "RngFactory":
        """Derive a sub-factory (e.g. one per training round) with its own namespace."""
        return RngFactory(seed=(self._seed * 0x9E3779B97F4A7C15 + stable_key(name)) % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(seed={self._seed})"
