"""Argument-validation helpers shared across the library.

These helpers centralize the error messages so that misconfiguration surfaces as a
clear ``ValueError``/``TypeError`` at construction time rather than as a NumPy shape
error deep inside a training loop.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_positive_float",
    "check_probability",
    "check_in_unit_interval",
    "check_array_1d",
    "check_array_2d",
    "check_simplex_vector",
    "check_same_length",
    "check_fraction",
]


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_nonnegative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer >= 0 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_positive_float(value: Any, name: str) -> float:
    """Validate that ``value`` is a finite number > 0 and return it as ``float``."""
    if isinstance(value, bool) or not isinstance(value, (int, float, np.floating, np.integer)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value}")
    return value


def check_in_unit_interval(value: Any, name: str, *, closed_right: bool = True) -> float:
    """Validate that ``value`` is in [0, 1] (or [0, 1) when ``closed_right=False``)."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValueError(f"{name} must be in the unit interval, got {value}")
    if closed_right and value > 1.0:
        raise ValueError(f"{name} must be <= 1, got {value}")
    if not closed_right and value >= 1.0:
        raise ValueError(f"{name} must be < 1, got {value}")
    return value


def check_probability(value: Any, name: str) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    return check_in_unit_interval(value, name, closed_right=True)


def check_fraction(numerator: int, denominator: int, name: str) -> None:
    """Validate that ``numerator <= denominator`` (e.g. sampled edges <= edges)."""
    if numerator > denominator:
        raise ValueError(
            f"{name}: cannot sample {numerator} items from a population of {denominator}")


def check_array_1d(arr: Any, name: str, *, length: int | None = None) -> np.ndarray:
    """Validate and return ``arr`` as a 1-D float array of optional fixed length."""
    out = np.asarray(arr, dtype=np.float64)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {out.shape}")
    if length is not None and out.shape[0] != length:
        raise ValueError(f"{name} must have length {length}, got {out.shape[0]}")
    return out


def check_array_2d(arr: Any, name: str) -> np.ndarray:
    """Validate and return ``arr`` as a 2-D float array."""
    out = np.asarray(arr, dtype=np.float64)
    if out.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {out.shape}")
    return out


def check_simplex_vector(p: Any, name: str, *, atol: float = 1e-8) -> np.ndarray:
    """Validate that ``p`` is a probability vector (nonnegative, sums to 1)."""
    p = check_array_1d(p, name)
    if np.any(p < -atol):
        raise ValueError(f"{name} has negative entries: min={p.min()}")
    total = float(p.sum())
    if abs(total - 1.0) > max(atol, 1e-8 * p.size):
        raise ValueError(f"{name} must sum to 1, got {total}")
    return p


def check_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Validate that two sequences have equal length."""
    if len(a) != len(b):
        raise ValueError(f"{name_a} (len {len(a)}) and {name_b} (len {len(b)}) "
                         "must have the same length")
