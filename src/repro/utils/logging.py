"""Minimal structured logging for training runs.

The library does not print from inside algorithm code; instead, algorithms accept an
optional :class:`RunLogger` (or any callable) that receives structured progress
events.  This keeps hot loops free of I/O unless the caller opts in, in line with
the profile-first HPC guidance followed throughout the repo.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, TextIO

__all__ = ["RunLogger", "NullLogger", "ProgressEvent"]

ProgressEvent = dict  # alias: events are plain dicts with at least {"event": str}


class NullLogger:
    """Logger that drops all events (the default inside algorithms)."""

    def __call__(self, event: ProgressEvent) -> None:
        """Discard ``event``."""


class RunLogger:
    """Stream structured events as single-line records.

    Parameters
    ----------
    stream:
        File-like target; defaults to ``sys.stderr``.
    every:
        Only emit one out of ``every`` ``"round"`` events (other event types always
        pass through).  Use this to keep long runs readable.
    """

    def __init__(self, stream: TextIO | None = None, *, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._stream = stream if stream is not None else sys.stderr
        self._every = every
        self._round_count = 0
        self._t0 = time.perf_counter()

    def __call__(self, event: ProgressEvent) -> None:
        """Format and emit ``event`` subject to the round-thinning policy."""
        kind = event.get("event", "info")
        if kind == "round":
            self._round_count += 1
            if (self._round_count - 1) % self._every != 0:
                return
        elapsed = time.perf_counter() - self._t0
        fields = " ".join(f"{k}={_fmt(v)}" for k, v in event.items() if k != "event")
        self._stream.write(f"[{elapsed:9.2f}s] {kind}: {fields}\n")
        self._stream.flush()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


LoggerLike = Callable[[ProgressEvent], None]
