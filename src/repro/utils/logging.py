"""Minimal structured logging for training runs.

The library does not print from inside algorithm code; instead, algorithms accept an
optional :class:`RunLogger` (or any callable) that receives structured progress
events.  This keeps hot loops free of I/O unless the caller opts in, in line with
the profile-first HPC guidance followed throughout the repo.

Events are plain dicts with at least ``{"event": str}`` — the same shape the
observability layer's ``log`` records carry (see :mod:`repro.obs.events`), and
formatting is shared with it via :func:`repro.obs.events.format_event` so the
human-readable stream and JSONL traces agree on field rendering.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, TextIO

from repro.obs.events import format_event

__all__ = ["RunLogger", "NullLogger", "ProgressEvent"]

ProgressEvent = dict  # alias: events are plain dicts with at least {"event": str}


class NullLogger:
    """Logger that drops all events (the default inside algorithms)."""

    def __call__(self, event: ProgressEvent) -> None:
        """Discard ``event``."""


class RunLogger:
    """Stream structured events as single-line records.

    Parameters
    ----------
    stream:
        File-like target; defaults to ``sys.stderr``.
    every:
        Only emit one out of ``every`` ``"round"`` events (other event types always
        pass through).  Use this to keep long runs readable.  The most recent
        suppressed round is kept pending and flushed before the next non-round
        event (or via :meth:`flush`), so the *final* round of a run is always
        shown even when it does not land on the thinning stride.
    """

    def __init__(self, stream: TextIO | None = None, *, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._stream = stream if stream is not None else sys.stderr
        self._every = every
        self._round_count = 0
        self._pending: tuple[ProgressEvent, float] | None = None
        self._t0 = time.perf_counter()

    def __call__(self, event: ProgressEvent) -> None:
        """Format and emit ``event`` subject to the round-thinning policy."""
        elapsed = time.perf_counter() - self._t0
        if event.get("event", "info") == "round":
            self._round_count += 1
            if (self._round_count - 1) % self._every != 0:
                self._pending = (event, elapsed)
                return
            self._pending = None
        else:
            self.flush()
        self._emit(event, elapsed)

    def flush(self) -> None:
        """Emit the most recently suppressed round event, if any."""
        if self._pending is not None:
            event, elapsed = self._pending
            self._pending = None
            self._emit(event, elapsed)

    def _emit(self, event: ProgressEvent, elapsed: float) -> None:
        self._stream.write(format_event(event, elapsed=elapsed) + "\n")
        self._stream.flush()


LoggerLike = Callable[[ProgressEvent], None]
