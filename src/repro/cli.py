"""Command-line interface: regenerate the paper's experiments from a shell.

Usage::

    python -m repro fig3 --scale small --seeds 3 --plot
    python -m repro fig4 --scale tiny
    python -m repro table1 --horizon 100000 --alpha 0.25
    python -m repro table2 --scale small --datasets adult synthetic
    python -m repro tradeoff --horizon 512
    python -m repro trace-report run.trace.jsonl
    python -m repro trace-report live.trace.jsonl --follow
    python -m repro trace-profile run.trace.jsonl --sort self
    python -m repro trace-profile run.trace.jsonl --folded sim > out.folded
    python -m repro perf-check
    python -m repro degradation --scale tiny --faults client_dropout=0.2,seed=1
    python -m repro byzantine --attack sign_flip --defense trimmed_mean
    python -m repro timesim --cost-model hetero,seed=1,slow_factor=10
    python -m repro churn --churn arrive=0.05,depart=0.02,edge_mttf=5,seed=1
    python -m repro info

Every subcommand prints the same reports the benchmark harness archives; ``--out``
additionally saves the raw results as JSON.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HierMinimax (ICPP '24) reproduction toolkit")
    parser.add_argument("--backend", default=None,
                        choices=("serial", "thread", "process", "vectorized"),
                        help="execution backend for client local training "
                             "(default: REPRO_BACKEND env var or serial); "
                             "results are bit-identical for every choice")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker count for thread/process backends "
                             "(default: REPRO_WORKERS env var or auto)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, *, seeds: bool = True):
        p.add_argument("--scale", default="small",
                       choices=("tiny", "small", "paper"))
        p.add_argument("--out", default=None, help="save raw results JSON here")
        if seeds:
            p.add_argument("--seeds", type=int, default=1,
                           help="seed replicates to average")

    p_fig3 = sub.add_parser("fig3", help="Figure 3: convex-loss comparison")
    add_common(p_fig3)
    p_fig3.add_argument("--plot", action="store_true",
                        help="render ASCII accuracy curves")

    p_fig4 = sub.add_parser("fig4", help="Figure 4: non-convex comparison")
    add_common(p_fig4)
    p_fig4.add_argument("--plot", action="store_true")

    p_t1 = sub.add_parser("table1", help="Table 1: complexity/rate orders")
    p_t1.add_argument("--horizon", type=int, default=100_000)
    p_t1.add_argument("--alpha", type=float, default=0.25)

    p_t2 = sub.add_parser("table2", help="Table 2: fairness comparison")
    add_common(p_t2, seeds=False)
    p_t2.add_argument("--datasets", nargs="+", default=None,
                      help="subset of the five Table 2 datasets")

    p_tr = sub.add_parser("tradeoff", help="empirical §5 alpha sweep")
    p_tr.add_argument("--horizon", type=int, default=512)
    p_tr.add_argument("--alphas", type=float, nargs="+",
                      default=(0.0, 0.2, 0.4, 0.6))

    p_trace = sub.add_parser("trace-report",
                             help="analyze a JSONL trace from repro.obs")
    p_trace.add_argument("trace", help="path to a .trace.jsonl file")
    p_trace.add_argument("--timeline", type=int, default=5,
                         help="rounds to show at each end of the timeline")
    p_trace.add_argument("--follow", action="store_true",
                         help="tail a live trace: print heartbeat progress as "
                              "the run appends, then the full report at "
                              "trace end")
    p_trace.add_argument("--poll", type=float, default=0.5, metavar="S",
                         help="--follow poll interval in seconds")
    p_trace.add_argument("--idle-timeout", type=float, default=None,
                         metavar="S",
                         help="--follow gives up after this many seconds "
                              "without new events (default: wait forever)")

    p_prof = sub.add_parser(
        "trace-profile",
        help="profile a JSONL trace: self/cumulative time tables, folded "
             "stacks, speedscope export")
    p_prof.add_argument("trace", help="path to a .trace.jsonl file")
    p_prof.add_argument("--sort", default="self", choices=("self", "cum"),
                        help="order table rows by self or cumulative time")
    p_prof.add_argument("--limit", type=int, default=0,
                        help="rows per table (0 = all)")
    p_prof.add_argument("--folded", default=None, choices=("wall", "sim"),
                        help="print folded stacks for flamegraph.pl / "
                             "speedscope instead of the tables")
    p_prof.add_argument("--speedscope", default=None, metavar="OUT.json",
                        help="also write a speedscope-format profile here")

    p_perf = sub.add_parser(
        "perf-check",
        help="compare fresh BENCH_*.json bench results against the committed "
             "baselines")
    p_perf.add_argument("--baseline-dir", default=".",
                        help="directory holding the committed BENCH_*.json "
                             "baselines (default: repo root)")
    p_perf.add_argument("--results-dir", default="benchmarks/results",
                        help="directory the benchmarks wrote fresh "
                             "BENCH_*.json files into")
    p_perf.add_argument("--bench", action="append", default=None,
                        metavar="NAME",
                        help="check only BENCH_<NAME>.json (repeatable; "
                             "default: every baseline present)")
    p_perf.add_argument("--ratio-tol", type=float, default=None,
                        help="one-sided tolerance for ratio metrics "
                             "(default 0.35)")
    p_perf.add_argument("--update", action="store_true",
                        help="promote the current results to baselines "
                             "instead of checking")

    p_deg = sub.add_parser(
        "degradation",
        help="graceful-degradation demo: fault-free vs faulted HierMinimax")
    p_deg.add_argument("--scale", default="tiny", choices=("tiny", "small"))
    p_deg.add_argument("--rounds", type=int, default=80)
    p_deg.add_argument("--seed", type=int, default=0)
    p_deg.add_argument("--faults", default="client_dropout=0.2,seed=1",
                       help="FaultPlan spec, e.g. "
                            "'client_dropout=0.2,edge_outage=0.05,seed=1'")
    p_deg.add_argument("--tolerance", type=float, default=0.10,
                       help="max tolerated worst-edge accuracy drop")

    p_byz = sub.add_parser(
        "byzantine",
        help="byzantine demo: clean vs attacked (mean) vs attacked+defense")
    p_byz.add_argument("--scale", default="tiny", choices=("tiny", "small"))
    p_byz.add_argument("--rounds", type=int, default=400)
    p_byz.add_argument("--seed", type=int, default=0)
    p_byz.add_argument("--attack", default="sign_flip,scale=5",
                       help="AttackPlan spec, e.g. "
                            "'sign_flip,fraction=0.2,seed=1' or "
                            "'loss_inflation,scale=20'; without an explicit "
                            "roster, --fraction of the clients is compromised "
                            "deterministically (one per edge area)")
    p_byz.add_argument("--fraction", type=float, default=0.2,
                       help="byzantine client fraction when the --attack spec "
                            "does not set one")
    p_byz.add_argument("--defense",
                       default="edge=trimmed_mean,cloud=norm_clip,"
                               "trim=0.34,loss_clip=2.0",
                       help="DefensePolicy spec, e.g. 'trimmed_mean' or "
                            "'edge=median,cloud=krum,loss_clip=3'")
    p_byz.add_argument("--tolerance", type=float, default=0.05,
                       help="max tolerated worst-edge accuracy drop of the "
                            "defended run vs the clean run")

    p_ts = sub.add_parser(
        "timesim",
        help="simulated-time demo: sync vs semi-async HierMinimax makespans")
    p_ts.add_argument("--scale", default="tiny", choices=("tiny", "small"))
    p_ts.add_argument("--rounds", type=int, default=40)
    p_ts.add_argument("--seed", type=int, default=0)
    p_ts.add_argument("--cost-model",
                      default="hetero,seed=1,slow_fraction=0.1,slow_factor=10",
                      help="CostModel spec for repro.simtime.make_cost_model, "
                           "e.g. 'hetero,seed=1,slow_clients=0|7,"
                           "slow_factor=10'")
    p_ts.add_argument("--staleness", type=int, default=1,
                      help="semi-async staleness bound S (0 reproduces the "
                           "synchronous trajectory and makespan exactly)")

    p_ch = sub.add_parser(
        "churn",
        help="dynamic-membership demo: clean vs churn+re-homing vs churn "
             "without failover")
    p_ch.add_argument("--scale", default="tiny", choices=("tiny", "small"))
    p_ch.add_argument("--rounds", type=int, default=150)
    p_ch.add_argument("--seed", type=int, default=0)
    p_ch.add_argument("--churn",
                      default="arrive=0.05,depart=0.02,edge_mttf=5,"
                              "edge_mttr=4,seed=1",
                      help="ChurnPlan spec for repro.membership.ChurnPlan"
                           ".parse; edge_mttf=5 is a 20%% per-round "
                           "edge-crash campaign")
    p_ch.add_argument("--cost-model",
                      default="hetero,seed=1",
                      help="CostModel spec pricing failover traffic "
                           "(simulated makespan; numerical results "
                           "unchanged)")
    p_ch.add_argument("--tolerance", type=float, default=0.15,
                      help="max tolerated worst-edge accuracy drop of the "
                           "re-homed run vs the clean run")

    p_pop = sub.add_parser(
        "population",
        help="virtual-population gate: eager-wrap bit-identity plus a "
             "fixed-memory scale run")
    p_pop.add_argument("--clients", type=int, default=100_000,
                       help="population size of the scale gate "
                            "(default 100k)")
    p_pop.add_argument("--edges", type=int, default=None,
                       help="edge count of the scale gate (default: "
                            "clients // 100, at least 10)")
    p_pop.add_argument("--rounds", type=int, default=2)
    p_pop.add_argument("--m-edges", type=int, default=5,
                       help="edges sampled per round (the cohort knob)")
    p_pop.add_argument("--budget-mb", type=float, default=256.0,
                       help="tracemalloc peak budget for the scale run; "
                            "exceeding it fails the gate")
    p_pop.add_argument("--seed", type=int, default=0)
    p_pop.add_argument("--skip-equivalence", action="store_true",
                       help="run only the scale gate")

    p_chaos = sub.add_parser(
        "chaos",
        help="crash-safety gate: seeded kill-points (worker SIGKILL, torn "
             "checkpoint write, bit-flipped shard) must all recover "
             "bit-identically")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="root seed of every injected failure's "
                              "parameters (same seed = byte-identical "
                              "failures)")
    p_chaos.add_argument("--rounds", type=int, default=6,
                         help="rounds per scenario run (>= 5 so two "
                              "checkpoint generations exist with training "
                              "left to resume)")
    p_chaos.add_argument("--backends", default="serial,process",
                         help="comma-separated backends for the "
                              "crash-after-save sweep")
    p_chaos.add_argument("--workdir", default=None,
                         help="keep scenario artifacts (checkpoints, "
                              "shards, quarantined files) here instead of "
                              "a deleted temp dir")

    p_substrate = sub.add_parser(
        "substrate",
        help="execution-substrate gate: logistic AND MLP dispatches must be "
             "bit-identical to serial on every backend with every MLP task "
             "batched, and fused evaluation must match the two-pass bytes")
    p_substrate.add_argument("--scale", default="tiny",
                             choices=["tiny", "small", "paper"],
                             help="dataset scale (default tiny)")
    p_substrate.add_argument("--seed", type=int, default=0,
                             help="seed of the dataset, init and samplers")
    p_substrate.add_argument("--steps", type=int, default=4,
                             help="local SGD steps per dispatched client")

    sub.add_parser("info", help="version and system inventory")
    return parser


def _cmd_figure(args, which: str) -> int:
    from repro.experiments import fig3, fig4, format_figure_report
    from repro.utils.serialization import save_json

    builder = fig3 if which == "fig3" else fig4
    seeds = tuple(range(max(1, args.seeds)))
    fig = builder(scale=args.scale, seeds=seeds)
    print(format_figure_report(fig))
    if getattr(args, "plot", False):
        from repro.plotting import plot_figure_series

        print()
        print(plot_figure_series(fig, field="worst_accuracy"))
    if args.out:
        payload = {name: {"comm_rounds": s.comm_rounds,
                          "average_accuracy": s.average_accuracy,
                          "worst_accuracy": s.worst_accuracy,
                          "rounds_to_target": s.rounds_to_target}
                   for name, s in fig.series.items()}
        save_json(args.out, payload)
        print(f"\nsaved raw series to {args.out}")
    return 0


def _cmd_table1(args) -> int:
    from repro.theory.table1 import format_table1

    print(format_table1(alpha=args.alpha, T=args.horizon))
    return 0


def _cmd_table2(args) -> int:
    from repro.experiments import TABLE2_DATASETS, format_table2, table2
    from repro.utils.serialization import save_json

    datasets = tuple(args.datasets) if args.datasets else TABLE2_DATASETS
    unknown = set(datasets) - set(TABLE2_DATASETS)
    if unknown:
        print(f"unknown datasets: {sorted(unknown)}; "
              f"options: {TABLE2_DATASETS}", file=sys.stderr)
        return 2
    rows = table2(scale=args.scale, datasets=datasets)
    print(format_table2(rows))
    if args.out:
        save_json(args.out, [r.as_tuple() for r in rows])
        print(f"\nsaved rows to {args.out}")
    return 0


def _cmd_tradeoff(args) -> int:
    from repro.baselines.registry import make_algorithm
    from repro.core.schedules import tradeoff_schedule
    from repro.data.registry import make_federated_dataset
    from repro.nn.models import make_model_factory
    from repro.theory.duality import duality_gap

    dataset = make_federated_dataset("emnist_digits", seed=0, scale="tiny",
                                     num_edges=5, clients_per_edge=2)
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)
    print(f"{'alpha':>6s} {'tau1':>5s} {'tau2':>5s} {'ec cycles':>10s} "
          f"{'duality gap':>12s}")
    for alpha in args.alphas:
        sched = tradeoff_schedule(args.horizon, alpha, convex=True,
                                  c_w=30.0, c_p=3.0)
        algo = make_algorithm("hierminimax", dataset, factory, batch_size=8,
                              eta_w=sched.eta_w, eta_p=sched.eta_p,
                              tau1=sched.tau1, tau2=sched.tau2, m_edges=3,
                              seed=0)
        result = algo.run(rounds=sched.rounds, eval_every=sched.rounds)
        gap = duality_gap(algo.engine, result.final_params, result.final_weights,
                          dataset, max_iters=300)
        print(f"{alpha:6.2f} {sched.tau1:5d} {sched.tau2:5d} "
              f"{result.comm.edge_cloud_cycles:10d} {gap:12.4f}")
    return 0


def _cmd_trace_report(args) -> int:
    import os

    from repro.obs import analyze_trace, format_trace_report

    try:
        if getattr(args, "follow", False):
            events = _follow_events(args)
            report = analyze_trace(events)
            print()
        else:
            report = analyze_trace(args.trace)
    except FileNotFoundError:
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"cannot parse trace: {exc}", file=sys.stderr)
        return 2
    try:
        print(format_trace_report(report, timeline=max(0, args.timeline)))
    except BrokenPipeError:
        # Output piped into head/less and the pager closed early: not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0 if report.replay_consistent else 1


def _follow_events(args) -> list:
    """Tail the trace, narrating heartbeats live; return all events seen."""
    from repro.obs import follow_trace

    events = []
    for ev in follow_trace(args.trace, poll_s=max(0.05, args.poll),
                           timeout_s=args.idle_timeout):
        events.append(ev)
        if ev.get("ev") == "log" and ev.get("kind") == "heartbeat":
            print(_heartbeat_line(ev.get("fields", {})), flush=True)
        elif ev.get("ev") == "trace_end":
            print("trace end reached", flush=True)
    return events


def _heartbeat_line(fields: dict) -> str:
    parts = []
    if "algorithm" in fields:
        parts.append(f"[{fields['algorithm']}]")
    if "round" in fields:
        parts.append(f"round {fields['round']:>5}")
    if "sim_time_s" in fields:
        parts.append(f"sim {fields['sim_time_s']:.2f}s")
    if "worst_accuracy" in fields:
        parts.append(f"worst acc {fields['worst_accuracy']:.4f}")
    if "average_accuracy" in fields:
        parts.append(f"avg acc {fields['average_accuracy']:.4f}")
    if not parts:
        parts.append(str(fields))
    return "heartbeat  " + "  ".join(parts)


def _cmd_trace_profile(args) -> int:
    from repro.obs.profile import (folded_stacks, format_profile,
                                   profile_trace, write_speedscope)

    try:
        profile = profile_trace(args.trace)
    except FileNotFoundError:
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"cannot parse trace: {exc}", file=sys.stderr)
        return 2
    if args.speedscope:
        write_speedscope(profile, args.speedscope, name=args.trace)
        print(f"wrote speedscope profile to {args.speedscope}",
              file=sys.stderr)
    if args.folded:
        for line in folded_stacks(profile, clock=args.folded):
            print(line)
    else:
        print(format_profile(profile, sort=args.sort,
                             limit=max(0, args.limit)))
    return 0


def _cmd_perf_check(args) -> int:
    from pathlib import Path

    from repro.obs.perfcheck import (DEFAULT_RATIO_TOL, compare_bench,
                                     format_perfcheck, load_bench)

    base_dir = Path(args.baseline_dir)
    results_dir = Path(args.results_dir)
    if args.bench:
        names = [f"BENCH_{b}.json" for b in args.bench]
    else:
        names = sorted(p.name for p in base_dir.glob("BENCH_*.json"))
        if not names and args.update:
            # First adoption: promote whatever the benches produced.
            names = sorted(p.name for p in results_dir.glob("BENCH_*.json"))
    if not names:
        print(f"no BENCH_*.json baselines in {base_dir}", file=sys.stderr)
        return 2
    failed = missing = 0
    for name in names:
        baseline, current = base_dir / name, results_dir / name
        if args.update:
            if not current.exists():
                print(f"{name}: no fresh result in {results_dir}; "
                      f"run the benchmarks first", file=sys.stderr)
                missing += 1
                continue
            baseline.write_text(current.read_text())
            print(f"{name}: baseline updated from {current}")
            continue
        if not baseline.exists():
            print(f"{name}: no committed baseline in {base_dir}",
                  file=sys.stderr)
            missing += 1
            continue
        if not current.exists():
            print(f"{name}: no fresh result in {results_dir}; "
                  f"run the benchmarks first", file=sys.stderr)
            missing += 1
            continue
        try:
            result = compare_bench(
                load_bench(baseline), load_bench(current),
                ratio_tol=(args.ratio_tol if args.ratio_tol is not None
                           else DEFAULT_RATIO_TOL))
        except ValueError as exc:
            print(f"{name}: {exc}", file=sys.stderr)
            missing += 1
            continue
        print(format_perfcheck(result))
        if not result.ok:
            failed += 1
    if missing:
        return 2
    return 1 if failed else 0


def _cmd_degradation(args) -> int:
    """Run HierMinimax with and without a fault plan on the same data.

    This is the acceptance demo of the fault-injection layer: the faulted run
    must still converge, with a worst-edge accuracy within ``--tolerance`` of
    the fault-free run.  Exit code 1 signals the tolerance was exceeded.
    """
    from repro.core.hierminimax import HierMinimax
    from repro.data.registry import make_federated_dataset
    from repro.faults import FaultPlan
    from repro.nn.models import make_model_factory
    from repro.obs import Tracer

    plan = FaultPlan.parse(args.faults)
    dataset = make_federated_dataset("emnist_digits", seed=args.seed,
                                     scale=args.scale)
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)
    print(f"dataset : {dataset}")
    print(f"plan    : {args.faults}")

    def run(faults, obs=None):
        algo = HierMinimax(dataset, factory, batch_size=8, eta_w=0.05,
                           eta_p=2e-3, tau1=2, tau2=2, m_edges=5,
                           seed=args.seed, obs=obs, faults=faults)
        res = algo.run(rounds=args.rounds,
                       eval_every=max(1, args.rounds // 10))
        return res.history.final().record

    clean = run(None)
    obs = Tracer(None)  # metrics-only: collect the fault counters
    faulted = run(plan, obs=obs)
    counters = obs.snapshot()["counters"]

    drop = clean.worst_accuracy - faulted.worst_accuracy
    print(f"\n{'':24s} {'fault-free':>12s} {'faulted':>12s} {'delta':>9s}")
    for label, attr in (("worst edge accuracy", "worst_accuracy"),
                        ("average accuracy", "average_accuracy")):
        a, b = getattr(clean, attr), getattr(faulted, attr)
        print(f"{label:<24s} {a:12.4f} {b:12.4f} {b - a:+9.4f}")
    print("\nfault counters (faulted run):")
    for key in ("clients_dropped_total", "stragglers_total",
                "edge_outages_total", "messages_lost_total",
                "messages_corrupted_total", "retries_total",
                "stale_loss_fallbacks_total", "rounds_degraded",
                "quarantined_senders"):
        if key in counters:
            print(f"  {key:<28s} {counters[key]:g}")
    ok = drop <= args.tolerance
    print(f"\nworst-edge accuracy drop {drop:+.4f} "
          f"{'within' if ok else 'EXCEEDS'} tolerance {args.tolerance:.2f}")
    return 0 if ok else 1


def _cmd_byzantine(args) -> int:
    """Clean vs attacked-mean vs attacked-defended HierMinimax on shared data.

    The acceptance demo of the defense subsystem: under the attack, the
    defended run must keep its worst-edge accuracy within ``--tolerance`` of
    the clean run.  Exit code 1 signals the tolerance was exceeded.  The
    attacked runs share one fault plan, so the attacker roster and tampering
    draws are identical with and without the defense.
    """
    from dataclasses import replace

    from repro.core.hierminimax import HierMinimax
    from repro.data.registry import make_federated_dataset
    from repro.defense import AttackPlan, apply_label_flip, resolve_defense
    from repro.faults import FaultPlan
    from repro.nn.models import make_model_factory
    from repro.obs import Tracer

    attack = AttackPlan.parse(args.attack)
    dataset = make_federated_dataset("emnist_digits", seed=args.seed,
                                     scale=args.scale)
    if attack.fraction == 0.0 and not attack.clients:
        # Deterministic roster: --fraction of the clients, one per edge area
        # (the first client of each of the first N areas), so the per-cohort
        # breakdown ratio is the same for every run of the demo.
        cpe = dataset.edges[0].num_clients
        n_byz = max(1, round(args.fraction * dataset.num_clients))
        attack = replace(attack, clients=tuple(
            cpe * e for e in range(min(n_byz, dataset.num_edges))))
    plan = FaultPlan(byzantine=attack)
    policy = resolve_defense(args.defense)
    poisoned = apply_label_flip(dataset, attack)
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)
    print(f"dataset : {dataset}")
    n_byz = len(attack.roster(dataset.num_clients))
    print(f"attack  : {args.attack} "
          f"({n_byz}/{dataset.num_clients} clients byzantine)")
    print(f"defense : {policy.describe() if policy else 'mean'}")

    def run(data, faults, defense, obs=None):
        algo = HierMinimax(data, factory, batch_size=8, eta_w=0.05,
                           eta_p=2e-3, tau1=2, tau2=2, m_edges=5,
                           seed=args.seed, obs=obs, faults=faults,
                           defense=defense)
        res = algo.run(rounds=args.rounds,
                       eval_every=max(1, args.rounds // 10))
        return res.history.final().record

    clean = run(dataset, None, None)
    undefended = run(poisoned, plan, None)
    obs = Tracer(None)  # metrics-only: collect the attack/defense counters
    defended = run(poisoned, plan, policy, obs=obs)
    counters = obs.snapshot()["counters"]

    print(f"\n{'':24s} {'clean':>10s} {'attacked':>10s} {'defended':>10s}")
    for label, attr in (("worst edge accuracy", "worst_accuracy"),
                        ("average accuracy", "average_accuracy")):
        vals = [getattr(r, attr) for r in (clean, undefended, defended)]
        print(f"{label:<24s} " + " ".join(f"{v:10.4f}" for v in vals))
    print("\nbyzantine counters (defended run):")
    for key in ("byzantine_attacks_total", "byzantine_filtered_total",
                "norm_guard_rejections_total"):
        if key in counters:
            print(f"  {key:<28s} {counters[key]:g}")
    drop = clean.worst_accuracy - defended.worst_accuracy
    ok = drop <= args.tolerance
    print(f"\ndefended worst-edge accuracy drop {drop:+.4f} "
          f"{'within' if ok else 'EXCEEDS'} tolerance {args.tolerance:.2f} "
          f"(undefended drop "
          f"{clean.worst_accuracy - undefended.worst_accuracy:+.4f})")
    return 0 if ok else 1


def _cmd_timesim(args) -> int:
    """Sync vs semi-async HierMinimax under a heterogeneous cost model.

    The acceptance demo of the simulated-time subsystem: on the same data and
    seed, the bounded-staleness variant must reach the synchronous run's final
    worst-edge accuracy (within a small slack) in *strictly less* simulated
    time.  Exit code 1 signals it did not.  The clock is observational, so the
    synchronous trajectory itself is unchanged by the cost model.
    """
    from repro.core.hierminimax import HierMinimax
    from repro.core.semiasync import SemiAsyncHierMinimax
    from repro.data.registry import make_federated_dataset
    from repro.nn.models import make_model_factory
    from repro.simtime import SimTimer, make_cost_model

    model = make_cost_model(args.cost_model)
    dataset = make_federated_dataset("emnist_digits", seed=args.seed,
                                     scale=args.scale)
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)
    print(f"dataset    : {dataset}")
    print(f"cost model : {args.cost_model}")
    print(f"staleness  : {args.staleness}")

    def run(cls, **kwargs):
        timing = SimTimer(model)
        algo = cls(dataset, factory, batch_size=8, eta_w=0.05, eta_p=2e-3,
                   tau1=2, tau2=2, m_edges=5, seed=args.seed, timing=timing,
                   **kwargs)
        res = algo.run(rounds=args.rounds,
                       eval_every=max(1, args.rounds // 10))
        return res.history.final().record, res.sim_time_s

    sync_rec, sync_t = run(HierMinimax)
    semi_rec, semi_t = run(SemiAsyncHierMinimax, staleness=args.staleness)

    print(f"\n{'':24s} {'sync':>12s} {'semi-async':>12s}")
    for label, attr in (("worst edge accuracy", "worst_accuracy"),
                        ("average accuracy", "average_accuracy")):
        a, b = getattr(sync_rec, attr), getattr(semi_rec, attr)
        print(f"{label:<24s} {a:12.4f} {b:12.4f}")
    print(f"{'simulated time (s)':<24s} {sync_t:12.4f} {semi_t:12.4f}")
    faster = semi_t < sync_t
    close = semi_rec.worst_accuracy >= sync_rec.worst_accuracy - 0.02
    speedup = sync_t / semi_t if semi_t > 0 else float("inf")
    print(f"\nsemi-async {'is' if faster else 'is NOT'} faster "
          f"({speedup:.2f}x) and its worst-edge accuracy "
          f"{'matches' if close else 'LAGS'} the synchronous run")
    if args.staleness == 0:
        exact = (semi_t == sync_t
                 and semi_rec.worst_accuracy == sync_rec.worst_accuracy)
        print(f"staleness=0 reproduction: {'exact' if exact else 'BROKEN'}")
        return 0 if exact else 1
    return 0 if faster and close else 1


def _cmd_churn(args) -> int:
    """Clean vs churned-with-re-homing vs churned-without-failover HierMinimax.

    The acceptance demo of the dynamic-membership layer: under a 20%%
    per-round edge-crash campaign with client churn, the self-healing run
    (orphans re-homed to surviving edges) must hold its worst-edge accuracy
    within ``--tolerance`` of the clean run and at least match the run where
    failover is disabled.  The membership ledger must balance: arrivals minus
    departures equal the net change of the active population.  Exit code 1
    signals any of those checks failed.
    """
    from dataclasses import replace

    from repro.core.hierminimax import HierMinimax
    from repro.data.registry import make_federated_dataset
    from repro.membership import ChurnPlan
    from repro.nn.models import make_model_factory
    from repro.obs import Tracer
    from repro.simtime import SimTimer, make_cost_model

    plan = ChurnPlan.parse(args.churn)
    cost = make_cost_model(args.cost_model) if args.cost_model else None
    dataset = make_federated_dataset("emnist_digits", seed=args.seed,
                                     scale=args.scale)
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)
    print(f"dataset : {dataset}")
    print(f"churn   : {args.churn}")

    def run(churn, obs=None):
        timing = SimTimer(cost) if cost is not None else None
        algo = HierMinimax(dataset, factory, batch_size=8, eta_w=0.05,
                           eta_p=2e-3, tau1=2, tau2=2, m_edges=5,
                           seed=args.seed, obs=obs, churn=churn,
                           timing=timing)
        initial = len(algo.membership.active) if algo.membership.enabled else 0
        res = algo.run(rounds=args.rounds,
                       eval_every=max(1, args.rounds // 10))
        final = len(algo.membership.active) if algo.membership.enabled else 0
        return res, initial, final

    clean, _, _ = run(None)
    obs = Tracer(None)  # metrics-only: collect the membership counters
    rehomed, initial, final = run(plan, obs=obs)
    norehome, _, _ = run(replace(plan, rehome=False))
    counters = obs.snapshot()["counters"]

    recs = {name: res.history.final().record
            for name, res in (("clean", clean), ("re-homed", rehomed),
                              ("no-failover", norehome))}
    print(f"\n{'':24s} {'clean':>12s} {'re-homed':>12s} {'no-failover':>12s}")
    for label, attr in (("worst edge accuracy", "worst_accuracy"),
                        ("average accuracy", "average_accuracy")):
        vals = [getattr(recs[n], attr)
                for n in ("clean", "re-homed", "no-failover")]
        print(f"{label:<24s} " + " ".join(f"{v:12.4f}" for v in vals))
    print(f"{'total traffic (MB)':<24s} "
          + " ".join(f"{res.comm.total_bytes / 1e6:12.2f}"
                     for res in (clean, rehomed, norehome)))
    if cost is not None:
        print(f"{'simulated time (s)':<24s} "
              + " ".join(f"{res.sim_time_s:12.3f}"
                         for res in (clean, rehomed, norehome)))
    print("\nmembership counters (re-homed run):")
    for key in ("membership_joined_total", "membership_left_total",
                "membership_rehomed_total", "membership_edge_crashes_total",
                "membership_recovered_total", "membership_partitions_total",
                "membership_heals_total", "membership_handoffs_total"):
        if key in counters:
            print(f"  {key:<30s} {counters[key]:g}")

    joined = int(counters.get("membership_joined_total", 0))
    left = int(counters.get("membership_left_total", 0))
    balanced = joined - left == final - initial
    print(f"\nledger: {joined} joined - {left} left == "
          f"{final} - {initial} active "
          f"({'balanced' if balanced else 'IMBALANCED'})")
    drop = recs["clean"].worst_accuracy - recs["re-homed"].worst_accuracy
    survives = (recs["re-homed"].worst_accuracy
                >= recs["no-failover"].worst_accuracy)
    ok = balanced and survives and drop <= args.tolerance
    print(f"re-homed worst-edge accuracy drop {drop:+.4f} "
          f"{'within' if drop <= args.tolerance else 'EXCEEDS'} tolerance "
          f"{args.tolerance:.2f}; re-homing "
          f"{'recovers' if survives else 'DOES NOT recover'} the "
          f"no-failover accuracy "
          f"({recs['re-homed'].worst_accuracy:.4f} vs "
          f"{recs['no-failover'].worst_accuracy:.4f})")
    return 0 if ok else 1


def _cmd_population(args) -> int:
    """Acceptance gate of the virtual-population layer; exit 1 on failure.

    Gate 1 (equivalence): HierMinimax on a tiny eager dataset must produce
    bit-identical parameters when the same dataset is wrapped as a degenerate
    population (``population=as_population(dataset)``) — the virtual plumbing
    may not perturb a single floating-point operation of the eager path.

    Gate 2 (scale): a ``--clients``-sized virtual population (default 100k)
    trains for ``--rounds`` rounds while a tracemalloc peak tracker watches
    Python-heap allocations; the peak must stay under ``--budget-mb``, which
    only holds if per-round memory is O(sampled cohort), not O(population).
    """
    import numpy as np

    from repro.core.hierminimax import HierMinimax
    from repro.data.registry import make_federated_dataset
    from repro.nn.models import make_model_factory
    from repro.obs import PeakMemoryTracker
    from repro.population import PopulationSpec, as_population

    ok = True
    if not args.skip_equivalence:
        dataset = make_federated_dataset("emnist_digits", seed=args.seed,
                                         scale="tiny")
        factory = make_model_factory("logistic", dataset.input_dim,
                                     dataset.num_classes)
        kwargs = dict(tau1=2, tau2=2, m_edges=3, batch_size=8,
                      seed=args.seed)
        eager = HierMinimax(dataset, factory, **kwargs).run(rounds=3)
        wrapped = HierMinimax(None, factory,
                              population=as_population(dataset),
                              **kwargs).run(rounds=3)
        identical = (np.array_equal(eager.final_params,
                                    wrapped.final_params)
                     and np.array_equal(eager.final_weights,
                                        wrapped.final_weights))
        print(f"equivalence: eager vs wrapped-eager "
              f"{'bit-identical' if identical else 'DIVERGED'}")
        ok = ok and identical

    edges = args.edges or max(10, args.clients // 100)
    spec = PopulationSpec(num_edges=edges,
                          clients_per_edge=args.clients // edges,
                          samples_per_client=8, test_per_edge=16,
                          eval_edges=min(5, edges), seed=args.seed)
    factory = make_model_factory("logistic", spec.input_dim,
                                 spec.num_classes)
    tracker = PeakMemoryTracker()
    try:
        algo = HierMinimax(spec, factory, tau1=2, tau2=2,
                           m_edges=min(args.m_edges, edges), batch_size=8,
                           seed=args.seed)
        result = algo.run(rounds=args.rounds)
        peak_mb = tracker.peak_bytes() / 1e6
        pop = algo.population
        print(f"scale: {spec.num_clients:,} clients / {edges:,} edges, "
              f"{args.rounds} rounds -> "
              f"avg acc {result.history.final().record.average_accuracy:.4f}")
        print(f"cohort: materialized {pop.clients_materialized_total:,} "
              f"total, max {pop.max_live_clients:,} live, "
              f"{len(pop.store):,} with stored state")
        within = peak_mb <= args.budget_mb
        print(f"memory: tracemalloc peak {peak_mb:.1f} MB "
              f"{'within' if within else 'EXCEEDS'} budget "
              f"{args.budget_mb:.0f} MB")
        ok = ok and within
    finally:
        tracker.close()
    return 0 if ok else 1


def _cmd_chaos(args) -> int:
    """Run the deterministic chaos campaign; exit 1 unless every scenario
    recovers bit-identically (see :mod:`repro.chaos.campaign`)."""
    from repro.chaos.campaign import (campaign_ok, format_campaign,
                                      run_campaign)

    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    outcomes = run_campaign(seed=args.seed, rounds=args.rounds,
                            backends=backends, workdir=args.workdir)
    print(format_campaign(outcomes))
    return 0 if campaign_ok(outcomes) else 1


def _cmd_substrate(args) -> int:
    """Acceptance gate of the execution substrate; exit 1 on failure.

    Gate 1 (bit-identity): one multi-step local-training dispatch — logistic
    AND MLP engines, a duplicated client (with-replacement sampling shape),
    mid-run ``checkpoint_after`` snapshots — must come back byte-identical to
    serial from every available backend.  The vectorized backend must take
    the batched kernel for *every* task of both models: a silent per-task
    serial fallback fails the gate even though the bits would match.

    Gate 2 (fused evaluation): the fused ``accuracy_and_loss`` sweep of
    :func:`~repro.metrics.evaluation.evaluate_per_edge` must equal the
    pre-fusion two-pass evaluation (``accuracy`` then ``loss``)
    byte-for-byte on every edge test set.
    """
    import numpy as np

    from repro.data.registry import make_federated_dataset
    from repro.exec import (ClientWork, available_backends, make_backend,
                            run_local_steps)
    from repro.metrics.evaluation import evaluate_per_edge
    from repro.nn.models import make_model_factory
    from repro.obs import Tracer
    from repro.sim.builder import build_flat_clients
    from repro.utils.rng import RngFactory

    fed = make_federated_dataset("emnist_digits", scale=args.scale,
                                 seed=args.seed)
    print(f"dataset : {fed}")
    ckpt = max(1, args.steps // 2)
    ok = True

    print(f"\ngate 1: dispatch bit-identity ({args.steps} steps, "
          f"checkpoint_after={ckpt}, duplicate client)")
    factories = {
        "logistic": make_model_factory("logistic", fed.input_dim,
                                       fed.num_classes, l2=1e-3),
        "mlp": make_model_factory("mlp", fed.input_dim, fed.num_classes,
                                  hidden=(16,), l2=1e-3),
    }
    for model, factory in factories.items():
        engine = factory()
        engine.initialize(args.seed)
        w0 = engine.get_params()

        def dispatch(name):
            clients = build_flat_clients(
                fed, batch_size=8, rng_factory=RngFactory(args.seed + 77))
            work = ([ClientWork(c, args.steps, checkpoint_after=ckpt)
                     for c in clients]
                    + [ClientWork(clients[0], args.steps,
                                  checkpoint_after=ckpt)])
            tracer = Tracer(None)
            with make_backend(name, workers=2) as b:
                results = run_local_steps(b, engine, w0, work, lr=0.05,
                                          obs=tracer)
            counters = tracer.snapshot()["counters"]
            tracer.close()
            ends = np.stack([r.w_end for r in results])
            ckpts = np.stack([r.w_checkpoint for r in results])
            return ends, ckpts, counters, len(work)

        ref_ends, ref_ckpts, _, n_tasks = dispatch("serial")
        for name in available_backends():
            if name == "serial":
                continue
            ends, ckpts, counters, _ = dispatch(name)
            identical = (np.array_equal(ref_ends, ends)
                         and np.array_equal(ref_ckpts, ckpts))
            note = ""
            if name == "vectorized":
                batched = int(counters.get("exec_vectorized_tasks_total", 0))
                note = f"  batched {batched}/{n_tasks}"
                identical = identical and batched == n_tasks
            status = "ok" if identical else "FAIL"
            print(f"  {model:<9s} {name:<11s} {status}{note}")
            ok = ok and identical

    print("\ngate 2: fused evaluation == two-pass bytes")
    for model, factory in factories.items():
        engine = factory()
        engine.initialize(args.seed + 1)
        w = engine.get_params()
        acc_old = np.empty(fed.num_edges)
        loss_old = np.empty(fed.num_edges)
        for j, edge in enumerate(fed.edges):
            acc_old[j] = engine.accuracy(edge.test.X, edge.test.y)
            loss_old[j] = engine.loss(edge.test.X, edge.test.y)
        acc_new, loss_new = evaluate_per_edge(engine, w, fed)
        identical = (acc_old.tobytes() == acc_new.tobytes()
                     and loss_old.tobytes() == loss_new.tobytes())
        print(f"  {model:<9s} {'ok' if identical else 'FAIL'}")
        ok = ok and identical

    print(f"\nsubstrate gate: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def _cmd_info() -> int:
    import repro

    print(f"repro {repro.__version__} — HierMinimax (ICPP '24) reproduction")
    print(f"algorithms : {sorted(repro.ALGORITHMS)}")
    print(f"datasets   : {list(repro.DATASET_NAMES)}")
    print("docs       : README.md, DESIGN.md, EXPERIMENTS.md")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.backend is not None or args.workers is not None:
        # Subcommands build algorithms through several paths (figures, tables,
        # degradation demo); the environment is the one channel they all
        # consult via repro.exec.resolve_backend.
        import os

        from repro.exec import BACKEND_ENV, WORKERS_ENV

        if args.backend is not None:
            os.environ[BACKEND_ENV] = args.backend
        if args.workers is not None:
            os.environ[WORKERS_ENV] = str(args.workers)
    if args.command in ("fig3", "fig4"):
        return _cmd_figure(args, args.command)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command == "table2":
        return _cmd_table2(args)
    if args.command == "tradeoff":
        return _cmd_tradeoff(args)
    if args.command == "trace-report":
        return _cmd_trace_report(args)
    if args.command == "trace-profile":
        return _cmd_trace_profile(args)
    if args.command == "perf-check":
        return _cmd_perf_check(args)
    if args.command == "degradation":
        return _cmd_degradation(args)
    if args.command == "byzantine":
        return _cmd_byzantine(args)
    if args.command == "timesim":
        return _cmd_timesim(args)
    if args.command == "churn":
        return _cmd_churn(args)
    if args.command == "population":
        return _cmd_population(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "substrate":
        return _cmd_substrate(args)
    return _cmd_info()
