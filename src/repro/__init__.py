"""repro — HierMinimax: distributed minimax fair optimization over hierarchical networks.

A from-scratch reproduction of Xu, Wang, Liang, Boudreau & Sokun, *Distributed
Minimax Fair Optimization over Hierarchical Networks* (ICPP '24): the HierMinimax
algorithm, the four baselines it is evaluated against, the simulation and ML
substrates they run on, and the harness regenerating every table and figure of the
paper's evaluation.

Quickstart
----------
>>> from repro import HierMinimax, make_federated_dataset, make_model_factory
>>> data = make_federated_dataset("emnist_digits", scale="tiny", seed=0)
>>> model = make_model_factory("logistic", data.input_dim, data.num_classes)
>>> algo = HierMinimax(data, model, tau1=2, tau2=2, m_edges=5, seed=0)
>>> result = algo.run(rounds=20, eval_every=5)
>>> 0.0 <= result.history.final().record.worst_accuracy <= 1.0
True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the paper-vs-measured
record of every experiment.
"""

from repro.baselines import ALGORITHMS, DRFA, FedAvg, HierFAVG, StochasticAFL, make_algorithm
from repro.chaos import ChaosCrash, ChaosInjector, ChaosPlan, chaos
from repro.core import (
    FederatedAlgorithm,
    HierMinimax,
    RunResult,
    SemiAsyncHierMinimax,
    TradeoffSchedule,
    tradeoff_schedule,
)
from repro.data import (
    DATASET_NAMES,
    Dataset,
    FederatedDataset,
    make_federated_dataset,
)
from repro.compression import IdentityCompressor, QSGDQuantizer, TopKSparsifier
from repro.defense import (
    AttackPlan,
    CoordinateMedian,
    DefensePolicy,
    Krum,
    NormClip,
    RobustAggregator,
    TrimmedMean,
    WeightedMean,
    apply_label_flip,
    resolve_defense,
)
from repro.faults import (
    CheckpointError,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    load_checkpoint_file,
    save_checkpoint_file,
)
from repro.invariants import InvariantMonitor, InvariantViolationError, Violation
from repro.membership import ChurnPlan, MembershipManager, resolve_membership
from repro.metrics import EvaluationRecord, TrainingHistory, evaluate_record
from repro.multilayer import HierarchyTree, MultiLevelHierMinimax
from repro.obs import (
    MetricsRegistry,
    NullTracer,
    Tracer,
    TraceWriter,
    analyze_trace,
    format_trace_report,
)
from repro.nn import NeuralNetwork, logistic_regression, make_model_factory, mlp
from repro.population import (
    ClientStateStore,
    EagerPopulation,
    PopulationSpec,
    VirtualPopulation,
    as_population,
)
from repro.simtime import (
    HeterogeneousCostModel,
    NullCostModel,
    SimTimer,
    make_cost_model,
)
from repro.topology import CommunicationTracker, HierarchicalTopology

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "DRFA",
    "FedAvg",
    "HierFAVG",
    "StochasticAFL",
    "make_algorithm",
    "FederatedAlgorithm",
    "HierMinimax",
    "RunResult",
    "SemiAsyncHierMinimax",
    "TradeoffSchedule",
    "tradeoff_schedule",
    "DATASET_NAMES",
    "Dataset",
    "FederatedDataset",
    "make_federated_dataset",
    "PopulationSpec",
    "VirtualPopulation",
    "EagerPopulation",
    "ClientStateStore",
    "as_population",
    "IdentityCompressor",
    "QSGDQuantizer",
    "TopKSparsifier",
    "AttackPlan",
    "CoordinateMedian",
    "DefensePolicy",
    "Krum",
    "NormClip",
    "RobustAggregator",
    "TrimmedMean",
    "WeightedMean",
    "apply_label_flip",
    "resolve_defense",
    "CheckpointError",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "load_checkpoint_file",
    "save_checkpoint_file",
    "ChaosCrash",
    "ChaosInjector",
    "ChaosPlan",
    "chaos",
    "InvariantMonitor",
    "InvariantViolationError",
    "Violation",
    "ChurnPlan",
    "MembershipManager",
    "resolve_membership",
    "EvaluationRecord",
    "TrainingHistory",
    "evaluate_record",
    "HierarchyTree",
    "MultiLevelHierMinimax",
    "MetricsRegistry",
    "NullTracer",
    "Tracer",
    "TraceWriter",
    "analyze_trace",
    "format_trace_report",
    "NeuralNetwork",
    "logistic_regression",
    "make_model_factory",
    "mlp",
    "HeterogeneousCostModel",
    "NullCostModel",
    "SimTimer",
    "make_cost_model",
    "CommunicationTracker",
    "HierarchicalTopology",
    "__version__",
]
