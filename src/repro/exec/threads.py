"""ThreadBackend — a worker-thread pool over per-thread engine clones.

Client SGD steps are NumPy/BLAS-heavy; NumPy releases the GIL inside its
compiled kernels, so a thread pool overlaps the matmuls of different clients
on a multi-core host without any serialization cost.  Each worker computes on
its *own* engine clone (:meth:`~repro.nn.network.NeuralNetwork.clone`), so the
shared flat parameter buffer — the one piece of mutable state
:func:`~repro.exec.base.run_local_steps_kernel` touches — is never contended.

Determinism: every task's inputs (start weights + pre-drawn batches) are fixed
before dispatch and its arithmetic is independent of every other task, so
scheduling order cannot change any result bit.  Results are reassembled in
task order.

Hang supervision: with ``timeout_s`` set, a task that does not finish in time
is resubmitted on a *new* worker thread (the pool grows by one and gains one
engine clone, so a wedged thread can never starve its own retry), bounded by a
:class:`~repro.faults.plan.RetryPolicy`.  Safe by kernel purity — a re-run
task returns bit-identical outputs.  Threads cannot be killed, so the wedged
one is abandoned; its eventual result (if any) lands in a dropped future.
"""

from __future__ import annotations

import os
import queue
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Sequence

import numpy as np

from repro.chaos.hooks import fire as chaos_fire
from repro.exec.base import (
    ExecutionBackend,
    LocalStepsResult,
    LocalStepsTask,
    check_timeout,
    resolve_retry,
    run_local_steps_kernel,
)
from repro.nn.network import NeuralNetwork
from repro.obs import NULL_TRACER

__all__ = ["ThreadBackend", "default_worker_count"]

_TIME = time.perf_counter


def default_worker_count() -> int:
    """Worker count when none is requested: available cores, capped at 8."""
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    return max(1, min(8, cores))


class ThreadBackend(ExecutionBackend):
    """Run tasks on a persistent :class:`ThreadPoolExecutor`.

    Parameters
    ----------
    workers:
        Pool size; defaults to :func:`default_worker_count`.
    timeout_s:
        Per-task supervision deadline (seconds).  A task exceeding it is
        retried on a fresh worker thread; ``None`` (default) disables hang
        detection.  The deadline is measured from result collection, so size
        it to cover a full dispatch batch, not a single kernel.
    retry:
        :class:`~repro.faults.plan.RetryPolicy` bounding per-task retries
        after a timeout (default: 2 retries).
    """

    name = "thread"
    wants_sampler_state = False

    def __init__(self, workers: int | None = None, *,
                 timeout_s: float | None = None, retry=None) -> None:
        self.workers = int(workers) if workers else default_worker_count()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.timeout_s = check_timeout(timeout_s)
        self.retry = resolve_retry(retry)
        self._pool: ThreadPoolExecutor | None = None
        # id(engine) -> (engine strong ref, queue of per-thread clones).  The
        # strong ref pins the id so it cannot be recycled by the allocator.
        self._engines: dict[int, tuple[NeuralNetwork, queue.LifoQueue]] = {}

    def _clone_pool(self, engine: NeuralNetwork) -> queue.LifoQueue:
        entry = self._engines.get(id(engine))
        if entry is not None and entry[0] is engine:
            return entry[1]
        clones: queue.LifoQueue = queue.LifoQueue()
        for _ in range(self.workers):
            clones.put(engine.clone())
        self._engines[id(engine)] = (engine, clones)
        return clones

    def run_tasks(self, engine: NeuralNetwork, w_start: np.ndarray,
                  tasks: Sequence[LocalStepsTask], *, obs=None,
                  ) -> list[LocalStepsResult]:
        """Fan tasks out over the pool; gather results in task order."""
        obs = obs if obs is not None else NULL_TRACER
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-exec")
        clones = self._clone_pool(engine)
        submitted = _TIME()

        def work(task: LocalStepsTask) -> LocalStepsResult:
            started = _TIME()
            hang = chaos_fire("thread_hang")
            if hang is not None:
                # Simulated wedge (a stuck I/O call, a livelocked dependency):
                # stall long enough for the supervisor's deadline to fire.
                time.sleep(hang["hang_s"])
            worker_engine = clones.get()
            try:
                w_end, w_ckpt = run_local_steps_kernel(
                    worker_engine, w_start, task.batches, lr=task.lr,
                    projection=task.projection,
                    checkpoint_after=task.checkpoint_after)
            finally:
                clones.put(worker_engine)
            done = _TIME()
            return LocalStepsResult(
                index=task.index, client_id=task.client_id, w_end=w_end,
                w_checkpoint=w_ckpt, busy_s=done - started,
                queue_wait_s=started - submitted)

        with obs.span("exec_batch", backend=self.name, tasks=len(tasks),
                      workers=self.workers):
            results = self._supervised(work, tasks, clones, engine, obs)
        if obs.enabled:
            obs.count("exec_tasks_total", len(tasks))
            obs.observe("exec_worker_busy_s", sum(r.busy_s for r in results))
            for r in results:
                obs.observe("exec_queue_wait_s", r.queue_wait_s)
        return results

    def _supervised(self, work, tasks: Sequence[LocalStepsTask], clones,
                    engine: NeuralNetwork, obs) -> list[LocalStepsResult]:
        """Submit all tasks; gather in task order under the hang deadline.

        A timed-out task is resubmitted after growing the pool by one thread
        *and* one engine clone — the wedged thread may never release its
        clone, and with equal capacity the retry would deadlock behind it.
        Retries are bit-identical (pure kernel, pre-drawn batches) and
        bounded by ``retry.max_retries`` per task.
        """
        futures = {i: self._pool.submit(work, task)
                   for i, task in enumerate(tasks)}
        results: list[LocalStepsResult | None] = [None] * len(tasks)
        attempts = {i: 0 for i in range(len(tasks))}
        for i, task in enumerate(tasks):
            while True:
                try:
                    results[i] = futures[i].result(timeout=self.timeout_s)
                    break
                except FutureTimeoutError:
                    attempts[i] += 1
                    if attempts[i] > self.retry.max_retries:
                        raise RuntimeError(
                            f"exec task for client {task.client_id} timed "
                            f"out {attempts[i]} times "
                            f"({self.timeout_s:g}s each); retry budget "
                            f"({self.retry.max_retries}) exhausted") from None
                    if obs.enabled:
                        obs.event("exec_retry", backend=self.name,
                                  client=task.client_id,
                                  attempt=attempts[i], reason="timeout")
                        obs.count("exec_retries_total")
                    self._pool._max_workers += 1
                    clones.put(engine.clone())
                    futures[i] = self._pool.submit(work, task)
        return results  # type: ignore[return-value]

    def close(self) -> None:
        """Shut the pool down and drop the engine clones."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._engines.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadBackend(workers={self.workers})"
