"""Execution-backend abstraction: how client local-SGD work is scheduled.

Every algorithm round contains an embarrassingly parallel region — the sampled
clients' local SGD loops, which share *no* mutable state once their minibatches
are fixed.  An :class:`ExecutionBackend` receives fully-formed, pre-seeded
:class:`LocalStepsTask` descriptors for that region and returns one
:class:`LocalStepsResult` per task, **in task order**.

Determinism contract
--------------------
For a fixed seed every backend must produce *bit-identical* outputs to
:class:`~repro.exec.serial.SerialBackend`:

* Minibatch randomness is consumed *before* dispatch (in the main process, in
  task order) — either by pre-drawing the batches into the task
  (:attr:`LocalStepsTask.batches`) or, for backends that draw remotely
  (:attr:`ExecutionBackend.wants_sampler_state`), by shipping the sampler's
  exact RNG/permutation state and restoring the advanced state afterwards.
  Either way the per-client random stream advances exactly as a serial run
  would advance it.
* The SGD arithmetic itself is the pure kernel
  :func:`run_local_steps_kernel` — identical floating-point operations in
  identical order regardless of which engine object (main, per-thread clone,
  per-process replica) executes them.
* Results are returned in task order, so downstream aggregation, compression,
  fault filtering, and communication accounting happen in the same order as a
  serial run.

This invariant is what lets fault injection, checkpoint/resume, and the
algorithm-equivalence tests keep holding under any backend.

Supervision corollary
---------------------
Because every task is a *pure* function of its descriptor (the kernel consumes
no RNG; batch randomness is fixed before dispatch), a pooled backend may
re-execute a task whose worker died or hung and obtain bit-identical outputs.
:class:`~repro.exec.procs.ProcessBackend` and
:class:`~repro.exec.threads.ThreadBackend` exploit exactly this: per-dispatch
timeouts, dead-worker detection, pool respawn, and bounded deterministic
retries (see :func:`resolve_retry`) — crash recovery without any change to the
determinism contract.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.nn.network import NeuralNetwork
from repro.ops.projections import Projection, identity_projection

__all__ = ["LocalStepsTask", "LocalStepsResult", "ExecutionBackend",
           "run_local_steps_kernel", "resolve_retry", "check_timeout"]

_TIME = time.perf_counter


def resolve_retry(retry):
    """Normalize a supervised backend's ``retry=`` argument.

    ``None`` becomes the default :class:`~repro.faults.plan.RetryPolicy`
    (bounded retries with seeded backoff — the same policy object the fault
    layer uses, so retry budgets are configured in one vocabulary).  Imported
    lazily: :mod:`repro.faults` sits above :mod:`repro.exec` in the layering.
    """
    from repro.faults.plan import RetryPolicy

    if retry is None:
        return RetryPolicy()
    if not isinstance(retry, RetryPolicy):
        raise TypeError(
            f"retry must be a RetryPolicy or None, got {type(retry).__name__}")
    return retry


def check_timeout(timeout_s) -> float | None:
    """Validate a per-dispatch supervision timeout (``None`` disables it)."""
    if timeout_s is None:
        return None
    timeout_s = float(timeout_s)
    if timeout_s <= 0:
        raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
    return timeout_s


@dataclass
class LocalStepsTask:
    """One client's unit of local training, fully seeded and self-contained.

    Attributes
    ----------
    index:
        Position in the dispatch call's deterministic output order.
    client_id:
        Global client index (for spans, metrics, and shard lookup in worker
        processes).
    steps:
        Local SGD steps to run (already truncated by any straggler fault).
    lr:
        Step size ``η_w``.
    checkpoint_after:
        When set, also return a snapshot of the local model after exactly this
        many steps (Part (b) of ModelUpdate).
    projection:
        Projection applied after every step (identity = unconstrained).
    batches:
        Pre-drawn minibatches, one ``(X, y)`` pair per step — the in-process
        path.  ``None`` for backends that draw batches worker-side.
    sampler_state:
        Picklable snapshot of the client's minibatch-sampler state (``rng``
        token from :func:`repro.utils.rng.generator_token`, epoch ``order``,
        ``cursor``) — the cross-process path.  ``None`` on the in-process path.
    """

    index: int
    client_id: int
    steps: int
    lr: float
    checkpoint_after: int | None = None
    projection: Projection = identity_projection
    batches: list[tuple[np.ndarray, np.ndarray]] | None = None
    sampler_state: dict[str, Any] | None = None


@dataclass
class LocalStepsResult:
    """Outcome of one :class:`LocalStepsTask`.

    ``w_end``/``w_checkpoint`` are bit-identical to what a serial run would
    produce.  ``sampler_state`` carries the advanced sampler snapshot back when
    batches were drawn worker-side (``None`` otherwise).  ``busy_s`` is the
    worker's compute time for the task and ``queue_wait_s`` the delay between
    dispatch and the task starting — both feed the tracer's ``exec_*`` metrics
    and are *observability only* (never used in arithmetic).
    """

    index: int
    client_id: int
    w_end: np.ndarray
    w_checkpoint: np.ndarray | None = None
    sampler_state: dict[str, Any] | None = None
    busy_s: float = 0.0
    queue_wait_s: float = 0.0


def run_local_steps_kernel(engine: NeuralNetwork, w_start: np.ndarray,
                           batches: Sequence[tuple[np.ndarray, np.ndarray]], *,
                           lr: float, projection: Projection = identity_projection,
                           checkpoint_after: int | None = None,
                           ) -> tuple[np.ndarray, np.ndarray | None]:
    """The pure local-SGD kernel every backend executes (Eq. (4)).

    Runs ``len(batches)`` projected-SGD steps from ``w_start`` on ``engine``
    and returns ``(w_end, w_checkpoint)`` as copies.  The caller owns batch
    randomness; this function consumes no RNG, so the same inputs produce the
    same bits on any engine replica.

    ``w_start`` is treated as read-only.  If it aliases the engine's live
    parameter buffer it is defensively copied first — otherwise the in-place
    updates below would corrupt the caller's "start" vector mid-loop.
    """
    if np.may_share_memory(w_start, engine.params_view()):
        w_start = np.array(w_start, copy=True)
    engine.set_params(w_start)
    params = engine.params_view()
    w_checkpoint: np.ndarray | None = None
    for t1, (X, y) in enumerate(batches):
        _, grad = engine.loss_and_gradient(X, y)
        params -= lr * grad
        if projection is not identity_projection:
            params[:] = projection(params)
        if checkpoint_after is not None and t1 + 1 == checkpoint_after:
            w_checkpoint = params.copy()
    return params.copy(), w_checkpoint


class ExecutionBackend(ABC):
    """Strategy object deciding *where* the per-client SGD kernels run.

    Lifecycle: backends may hold worker pools; call :meth:`close` (or use the
    instance as a context manager) when done.  All implementations are safe to
    reuse across rounds and across algorithms — worker resources are (re)built
    lazily from the engine/clients of each call.
    """

    #: Registry / ``--backend`` name of the implementation.
    name: str = "abstract"
    #: When True the dispatcher ships sampler state (cross-process path)
    #: instead of pre-drawing minibatches into the task.
    wants_sampler_state: bool = False

    def prepare(self, engine: NeuralNetwork, clients: Sequence[Any]) -> None:
        """Advertise the engine and client actors an upcoming dispatch uses.

        Called by the dispatcher before :meth:`run_tasks` (and eagerly by
        algorithms with their full client roster) so backends that replicate
        state into workers can ship engines/shards once, at pool setup, rather
        than per task.  No-op by default.
        """

    def forget_clients(self, client_ids: Sequence[int]) -> None:
        """Drop any per-client state cached for ``client_ids``.

        Virtual populations call this after each round so pooled backends do
        not accumulate every client ever dispatched (a 1M-client run would
        otherwise re-materialize the population inside the backend's shard
        registry).  No-op by default — stateless backends have nothing cached.
        """

    @abstractmethod
    def run_tasks(self, engine: NeuralNetwork, w_start: np.ndarray,
                  tasks: Sequence[LocalStepsTask], *, obs=None,
                  ) -> list[LocalStepsResult]:
        """Execute every task; return results in task order."""

    def close(self) -> None:
        """Release worker resources (idempotent; no-op by default)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
