"""Dispatcher: turn per-client work specs into backend tasks, deterministically.

:func:`run_local_steps` is the single entry point actor code uses to run a
batch of client local-SGD loops on an :class:`~repro.exec.base.ExecutionBackend`.
It owns the two halves of the determinism contract that live *outside* the
backends:

* **Randomness is consumed in task order, in the main process.**  For
  in-process backends the dispatcher pre-draws every task's minibatches from
  the client's own sampler before dispatch; for cross-process backends it
  snapshots the sampler state into the task (first occurrence per client) and
  restores the advanced state returned by the backend.  Either way each
  client's stream advances exactly as a serial run would advance it — including
  when with-replacement sampling puts the same client in the batch twice (the
  duplicate's draws chain after the first occurrence's draws).
* **Client-side bookkeeping** (``sgd_steps_taken``, the ``sgd_steps_total``
  counter) happens here, identically for every backend.

This split is also what makes supervised *retry* safe: a task carries
everything its unit needs (weights snapshot, sampler-state token, step spec)
and nothing main-side mutates until results return, so a pooled backend that
loses a worker mid-dispatch can re-execute the lost units from their original
descriptors and obtain bit-identical outputs (see ``repro.exec.procs``
"Supervision").

Intentionally imports no actor classes — clients are duck-typed
(``client_id``, ``sampler``, ``sgd_steps_taken``) so ``repro.sim`` can import
the execution package without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.exec.base import ExecutionBackend, LocalStepsResult, LocalStepsTask
from repro.exec.serial import SERIAL_BACKEND
from repro.obs import NULL_TRACER
from repro.ops.projections import Projection, identity_projection
from repro.utils.rng import generator_token, restore_generator
from repro.utils.validation import check_positive_float, check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.sim.client import Client

__all__ = ["ClientWork", "run_local_steps", "sampler_state_token",
           "restore_sampler_state"]


def sampler_state_token(sampler) -> dict[str, Any]:
    """Picklable snapshot of a :class:`~repro.data.batching.MinibatchSampler`.

    Captures everything that determines the sampler's future draws: the RNG
    (as an exact :func:`~repro.utils.rng.generator_token`), the current epoch
    permutation, the cursor into it, and the draw counter.
    """
    return {
        "rng": generator_token(sampler._rng),
        "order": np.asarray(sampler._order),
        "cursor": int(sampler._cursor),
        "batches_drawn": int(sampler.batches_drawn),
    }


def restore_sampler_state(sampler, state: dict[str, Any]) -> None:
    """Load a :func:`sampler_state_token` snapshot back into ``sampler``."""
    restore_generator(sampler._rng, state["rng"])
    sampler._order = np.asarray(state["order"], dtype=np.int64)
    sampler._cursor = int(state["cursor"])
    sampler.batches_drawn = int(state["batches_drawn"])


@dataclass
class ClientWork:
    """One client's share of a dispatch: who, how many steps, snapshot when."""

    client: "Client"
    steps: int
    checkpoint_after: int | None = None


def run_local_steps(backend: ExecutionBackend | None, engine,
                    w_start: np.ndarray, work: Sequence[ClientWork], *,
                    lr: float, projection: Projection = identity_projection,
                    obs=None) -> list[LocalStepsResult]:
    """Run every :class:`ClientWork` item's local SGD on ``backend``.

    Results come back in ``work`` order and are bit-identical across backends
    (see :mod:`repro.exec.base`).  ``w_start`` is read-only for every task —
    each task starts from the same vector, which is what every caller
    (aggregation blocks, FedAvg-style rounds) wants.
    """
    backend = backend if backend is not None else SERIAL_BACKEND
    obs = obs if obs is not None else NULL_TRACER
    lr = check_positive_float(lr, "lr")
    for item in work:
        check_positive_int(item.steps, "steps")
        if (item.checkpoint_after is not None
                and not 1 <= item.checkpoint_after <= item.steps):
            raise ValueError(
                f"checkpoint_after must be in [1, {item.steps}], "
                f"got {item.checkpoint_after}")
    backend.prepare(engine, [item.client for item in work])
    tasks: list[LocalStepsTask] = []
    if backend.wants_sampler_state:
        snapshotted: set[int] = set()
        for i, item in enumerate(work):
            cid = item.client.client_id
            # Only the first occurrence carries state; later occurrences of
            # the same client chain onto it worker-side, replicating the
            # serial draw order under with-replacement sampling.
            state = (sampler_state_token(item.client.sampler)
                     if cid not in snapshotted else None)
            snapshotted.add(cid)
            tasks.append(LocalStepsTask(
                index=i, client_id=cid, steps=item.steps, lr=lr,
                checkpoint_after=item.checkpoint_after, projection=projection,
                sampler_state=state))
    else:
        for i, item in enumerate(work):
            batches = [item.client.sampler.next_batch()
                       for _ in range(item.steps)]
            tasks.append(LocalStepsTask(
                index=i, client_id=item.client.client_id, steps=item.steps,
                lr=lr, checkpoint_after=item.checkpoint_after,
                projection=projection, batches=batches))
    results = backend.run_tasks(engine, w_start, tasks, obs=obs)
    if len(results) != len(work):
        raise RuntimeError(
            f"backend {backend.name!r} returned {len(results)} results "
            f"for {len(work)} tasks")
    clients_by_id = {item.client.client_id: item.client for item in work}
    for result in results:
        if result.sampler_state is not None:
            restore_sampler_state(clients_by_id[result.client_id].sampler,
                                  result.sampler_state)
    total_steps = 0
    for item in work:
        item.client.sgd_steps_taken += item.steps
        total_steps += item.steps
    if obs.enabled:
        obs.count("sgd_steps_total", total_steps)
    return results
