"""repro.exec — pluggable parallel execution of client local training.

The per-round client SGD loops are embarrassingly parallel once their
randomness is fixed; this package makes *where* they run a strategy object
(:class:`~repro.exec.base.ExecutionBackend`) chosen per run:

========== =================================================================
``serial``      the reference implementation (default); defines the bits
``thread``      worker threads over per-thread engine clones (GIL released
                inside NumPy/BLAS kernels)
``process``     persistent worker-process pool; weights broadcast once per
                dispatch via shared memory, tasks ship sampler-state tokens
``vectorized``  same-shape clients stacked into one batched matmul kernel
                (Linear/ReLU/Tanh stacks with softmax cross-entropy — both
                paper models; serial fallback otherwise)
========== =================================================================

Every backend is bit-identical to ``serial`` for a fixed seed — see the
determinism contract in :mod:`repro.exec.base`.  Select one with
``backend=``/``--backend`` or the ``REPRO_BACKEND`` / ``REPRO_WORKERS``
environment variables.
"""

from __future__ import annotations

import os

from repro.exec.base import (
    ExecutionBackend,
    LocalStepsResult,
    LocalStepsTask,
    run_local_steps_kernel,
)
from repro.exec.serial import SERIAL_BACKEND, SerialBackend
from repro.exec.threads import ThreadBackend, default_worker_count
from repro.exec.vectorized import VectorizedBackend
from repro.exec.dispatch import (
    ClientWork,
    restore_sampler_state,
    run_local_steps,
    sampler_state_token,
)
from repro.exec.procs import ProcessBackend

__all__ = [
    "ExecutionBackend", "LocalStepsTask", "LocalStepsResult",
    "run_local_steps_kernel", "SerialBackend", "SERIAL_BACKEND",
    "ThreadBackend", "ProcessBackend", "VectorizedBackend",
    "default_worker_count", "ClientWork", "run_local_steps",
    "sampler_state_token", "restore_sampler_state",
    "available_backends", "make_backend", "resolve_backend",
]

#: Environment variables consulted by :func:`resolve_backend`.
BACKEND_ENV = "REPRO_BACKEND"
WORKERS_ENV = "REPRO_WORKERS"
#: Per-dispatch supervision timeout (seconds) for pooled backends.
TIMEOUT_ENV = "REPRO_EXEC_TIMEOUT_S"

_ALIASES = {
    "serial": "serial", "sync": "serial", "none": "serial",
    "thread": "thread", "threads": "thread",
    "process": "process", "processes": "process", "proc": "process",
    "mp": "process",
    "vectorized": "vectorized", "vector": "vectorized", "vec": "vectorized",
    "batched": "vectorized",
}

_POOLED = {"thread": ThreadBackend, "process": ProcessBackend}


def available_backends() -> list[str]:
    """Canonical backend names accepted by :func:`make_backend`."""
    return ["serial", "thread", "process", "vectorized"]


def make_backend(name: str, workers: int | None = None) -> ExecutionBackend:
    """Instantiate a backend by name (``workers`` applies to pooled ones)."""
    key = _ALIASES.get(str(name).strip().lower())
    if key is None:
        raise ValueError(
            f"unknown execution backend {name!r}; "
            f"choose from {available_backends()}")
    if key in _POOLED:
        env_timeout = os.environ.get(TIMEOUT_ENV, "").strip()
        timeout_s = float(env_timeout) if env_timeout else None
        return _POOLED[key](workers=workers, timeout_s=timeout_s)
    if key == "vectorized":
        return VectorizedBackend()
    return SERIAL_BACKEND if workers in (None, 0, 1) else SerialBackend()


def resolve_backend(spec: "ExecutionBackend | str | None" = None,
                    workers: int | None = None) -> ExecutionBackend:
    """Resolve a user-facing backend spec into a live backend instance.

    ``spec`` may be an :class:`ExecutionBackend` (returned as-is; ``workers``
    is ignored), a name for :func:`make_backend`, or ``None`` — in which case
    the ``REPRO_BACKEND`` environment variable decides (default ``serial``).
    A ``workers`` of ``None`` likewise falls back to ``REPRO_WORKERS``.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV, "").strip() or "serial"
    if workers is None:
        env_workers = os.environ.get(WORKERS_ENV, "").strip()
        if env_workers:
            workers = int(env_workers)
    return make_backend(spec, workers)
