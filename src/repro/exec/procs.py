"""ProcessBackend — a persistent worker-process pool with shared-memory broadcast.

True multi-core parallelism for workloads where the GIL (or BLAS thread
contention) limits :class:`~repro.exec.threads.ThreadBackend`.  The design
keeps the per-round wire cost minimal:

* **Pool init (once per engine/roster):** the compute engine and every
  client's shard (dataset + batch size) are pickled into the workers when the
  pool is built, so they never travel again.
* **Per dispatch:** the round's start weights are written once into a
  :mod:`multiprocessing.shared_memory` block all workers read, and each task
  ships only a small descriptor — client id, step counts, and the client's
  minibatch-sampler state token (:func:`~repro.exec.dispatch.sampler_state_token`).
  Workers rebuild the sampler, draw the batches exactly as the main process
  would have, run the pure kernel, and ship back the resulting weights plus
  the advanced sampler state (which the dispatcher restores main-side).

Occurrences of the same client within one dispatch (with-replacement
sampling) are chained into a single worker unit so their draws consume the
client's stream in serial order — a bit-exactness requirement, not an
optimization.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
from multiprocessing import shared_memory
from typing import Any, Sequence

import numpy as np

from repro.data.batching import MinibatchSampler
from repro.exec.base import (
    ExecutionBackend,
    LocalStepsResult,
    LocalStepsTask,
    run_local_steps_kernel,
)
from repro.exec.dispatch import restore_sampler_state, sampler_state_token
from repro.exec.threads import default_worker_count
from repro.nn.network import NeuralNetwork
from repro.obs import NULL_TRACER
from repro.ops.projections import identity_projection

__all__ = ["ProcessBackend"]

_CLOCK = time.monotonic  # system-wide on Linux: comparable across processes

# Worker-process globals, populated once by the pool initializer.
_WORKER: dict[str, Any] = {}


def _init_worker(engine_bytes: bytes, shards: dict) -> None:
    _WORKER["engine"] = pickle.loads(engine_bytes)
    _WORKER["shards"] = shards


def _rebuild_sampler(dataset, batch_size: int, state: dict) -> MinibatchSampler:
    """Reconstruct a sampler continuing bit-identically from ``state``."""
    sampler = MinibatchSampler(dataset, batch_size, np.random.default_rng(0))
    restore_sampler_state(sampler, state)
    return sampler


def _execute_unit(engine: NeuralNetwork, shards: dict, w_start: np.ndarray,
                  unit: tuple) -> tuple:
    """Run one client's chained occurrences; shared by workers and fallback."""
    client_id, state, occurrences = unit
    dataset, batch_size = shards[client_id]
    sampler = _rebuild_sampler(dataset, batch_size, state)
    outputs = []
    for index, steps, lr, checkpoint_after, proj_bytes in occurrences:
        projection = (identity_projection if proj_bytes is None
                      else pickle.loads(proj_bytes))
        batches = [sampler.next_batch() for _ in range(steps)]
        w_end, w_ckpt = run_local_steps_kernel(
            engine, w_start, batches, lr=lr, projection=projection,
            checkpoint_after=checkpoint_after)
        outputs.append((index, w_end, w_ckpt))
    return client_id, sampler_state_token(sampler), outputs


def _run_unit(payload: tuple) -> tuple:
    """Pool entry point: attach the broadcast weights and run one unit."""
    shm_name, dim, unit, submitted = payload
    started = _CLOCK()
    # Attaching would register the segment with the resource tracker
    # (CPython < 3.13 has no track=False), but the *parent* owns and unlinks
    # the block; a worker-side registration only produces spurious "leaked
    # shared_memory" warnings (and, with several workers sharing one tracker
    # under fork, KeyErrors on double-unregister).  Suppress registration for
    # the duration of the attach instead.
    from multiprocessing import resource_tracker
    original_register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        shm = shared_memory.SharedMemory(name=shm_name)
    finally:
        resource_tracker.register = original_register
    try:
        w_start = np.ndarray((dim,), dtype=np.float64, buffer=shm.buf).copy()
    finally:
        shm.close()
    client_id, new_state, outputs = _execute_unit(
        _WORKER["engine"], _WORKER["shards"], w_start, unit)
    return (client_id, new_state, outputs,
            _CLOCK() - started, started - submitted)


class ProcessBackend(ExecutionBackend):
    """Run tasks on a persistent :class:`multiprocessing.pool.Pool`.

    Parameters
    ----------
    workers:
        Pool size; defaults to
        :func:`~repro.exec.threads.default_worker_count`.
    """

    name = "process"
    wants_sampler_state = True

    def __init__(self, workers: int | None = None) -> None:
        self.workers = int(workers) if workers else default_worker_count()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else None)
        self._pool = None
        self._engine: NeuralNetwork | None = None
        self._registry: dict[int, tuple[Any, int]] = {}
        self._stale = True

    # --------------------------------------------------------------- plumbing
    def prepare(self, engine: NeuralNetwork, clients: Sequence[Any]) -> None:
        """Record shards/engine to ship at (re)creation of the worker pool."""
        for client in clients:
            cid = client.client_id
            if cid not in self._registry:
                self._registry[cid] = (client.sampler.dataset,
                                       client.sampler.batch_size)
                self._stale = True
        if self._engine is not engine:
            self._engine = engine
            self._stale = True

    def forget_clients(self, client_ids: Sequence[int]) -> None:
        """Evict shards from the registry (virtual-cohort discard).

        Marks the pool stale so the *workers'* copies are dropped at the next
        (re)creation too; without this a long virtual run would accumulate
        every client ever dispatched in both the parent and each worker.
        """
        dropped = False
        for cid in client_ids:
            if self._registry.pop(int(cid), None) is not None:
                dropped = True
        if dropped:
            self._stale = True

    def _ensure_pool(self):
        if self._pool is not None and not self._stale:
            return self._pool
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
        self._pool = self._ctx.Pool(
            processes=self.workers, initializer=_init_worker,
            initargs=(pickle.dumps(self._engine), dict(self._registry)))
        self._stale = False
        return self._pool

    @staticmethod
    def _build_units(tasks: Sequence[LocalStepsTask]) -> list[tuple]:
        """Chain same-client tasks (in task order) into one unit per client."""
        units: dict[int, tuple] = {}
        for task in tasks:
            if task.batches is not None:
                raise ValueError(
                    "ProcessBackend draws batches worker-side; tasks must "
                    "carry sampler_state, not pre-drawn batches "
                    "(use the dispatcher)")
            if task.sampler_state is None:
                if task.client_id not in units:
                    raise ValueError(
                        "ProcessBackend tasks must carry sampler_state on the "
                        "first occurrence of each client (use the dispatcher)")
            elif task.client_id in units:
                raise ValueError(
                    f"duplicate sampler_state for client {task.client_id}; "
                    "later occurrences must chain (sampler_state=None)")
            proj_bytes = (None if task.projection is identity_projection
                          else pickle.dumps(task.projection))
            occurrence = (task.index, task.steps, task.lr,
                          task.checkpoint_after, proj_bytes)
            if task.client_id in units:
                units[task.client_id][2].append(occurrence)
            else:
                units[task.client_id] = (task.client_id, task.sampler_state,
                                         [occurrence])
        return list(units.values())

    # -------------------------------------------------------------- execution
    def run_tasks(self, engine: NeuralNetwork, w_start: np.ndarray,
                  tasks: Sequence[LocalStepsTask], *, obs=None,
                  ) -> list[LocalStepsResult]:
        """Broadcast ``w_start`` once, fan units out, gather in task order."""
        obs = obs if obs is not None else NULL_TRACER
        self.prepare(engine, [])
        if any(cid not in self._registry
               for cid in {t.client_id for t in tasks}):
            raise RuntimeError(
                "ProcessBackend.run_tasks called with unregistered clients; "
                "call prepare(engine, clients) first (the dispatcher does)")
        units = self._build_units(tasks)
        try:
            payload_ok = True
            units_bytes = pickle.dumps(units)
        except Exception:
            # Unpicklable projection (e.g. a test lambda): run inline instead
            # of crashing — same bits, no parallelism.
            payload_ok = False
            units_bytes = b""
        with obs.span("exec_batch", backend=self.name, tasks=len(tasks),
                      units=len(units), workers=self.workers,
                      inline=not payload_ok):
            if payload_ok:
                unit_results = self._run_pooled(w_start, units, obs)
            else:
                unit_results = [(*_execute_unit(engine, self._registry,
                                                np.asarray(w_start,
                                                           dtype=np.float64),
                                                unit), 0.0, 0.0)
                                for unit in units]
        del units_bytes
        results: list[LocalStepsResult | None] = [None] * len(tasks)
        position = {task.index: pos for pos, task in enumerate(tasks)}
        for client_id, new_state, outputs, busy_s, wait_s in unit_results:
            for j, (index, w_end, w_ckpt) in enumerate(outputs):
                results[position[index]] = LocalStepsResult(
                    index=index, client_id=client_id, w_end=w_end,
                    w_checkpoint=w_ckpt,
                    sampler_state=new_state if j == 0 else None,
                    busy_s=busy_s if j == 0 else 0.0,
                    queue_wait_s=wait_s if j == 0 else 0.0)
        if obs.enabled:
            obs.count("exec_tasks_total", len(tasks))
            obs.observe("exec_worker_busy_s",
                        sum(u[3] for u in unit_results))
            for u in unit_results:
                obs.observe("exec_queue_wait_s", max(0.0, u[4]))
        return results  # type: ignore[return-value]

    def _run_pooled(self, w_start: np.ndarray, units: list[tuple],
                    obs) -> list[tuple]:
        pool = self._ensure_pool()
        w_start = np.ascontiguousarray(w_start, dtype=np.float64)
        shm = shared_memory.SharedMemory(create=True, size=w_start.nbytes)
        try:
            np.ndarray(w_start.shape, dtype=np.float64,
                       buffer=shm.buf)[:] = w_start
            submitted = _CLOCK()
            payloads = [(shm.name, w_start.size, unit, submitted)
                        for unit in units]
            unit_results = pool.map(_run_unit, payloads)
        finally:
            shm.close()
            shm.unlink()
        if obs.enabled:
            obs.count("exec_broadcast_bytes", w_start.nbytes)
        return unit_results

    def close(self) -> None:
        """Terminate the worker pool (registry survives for a later reopen)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._stale = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(workers={self.workers})"
