"""ProcessBackend — a persistent worker-process pool with shared-memory broadcast.

True multi-core parallelism for workloads where the GIL (or BLAS thread
contention) limits :class:`~repro.exec.threads.ThreadBackend`.  The design
keeps the per-round wire cost minimal:

* **Pool init (once per engine/roster):** the compute engine and every
  client's shard (dataset + batch size) are pickled into the workers when the
  pool is built, so they never travel again.
* **Per dispatch:** the round's start weights are written once into a
  :mod:`multiprocessing.shared_memory` block all workers read — and the block
  is *content-cached* across dispatches, so consecutive dispatches from the
  same snapshot (Phase 1 sends every edge's first block the same cloud
  weights) skip the write entirely — and each task
  ships only a small descriptor — client id, step counts, and the client's
  minibatch-sampler state token (:func:`~repro.exec.dispatch.sampler_state_token`).
  Workers rebuild the sampler, draw the batches exactly as the main process
  would have, run the pure kernel, and ship back the resulting weights plus
  the advanced sampler state (which the dispatcher restores main-side).

Occurrences of the same client within one dispatch (with-replacement
sampling) are chained into a single worker unit so their draws consume the
client's stream in serial order — a bit-exactness requirement, not an
optimization.

Supervision
-----------
Dispatches are *supervised*: units are submitted individually and a watch
loop polls for completed results, dead workers (the pool's live pid set
changing — a SIGKILL, an OOM kill), and an optional per-dispatch deadline
(``timeout_s``).  On death or timeout the pool is torn down and respawned and
the unfinished units are resubmitted — safe, because every unit is a pure
function of its descriptor (the kernel consumes no RNG), so a re-executed
unit returns bit-identical outputs.  Retries are bounded by a
:class:`~repro.faults.plan.RetryPolicy`; exhausting the budget raises instead
of looping forever.  Each recovery emits ``worker_respawn`` / ``exec_retry``
trace events and bumps the matching counters.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.pool as mp_pool
import os
import pickle
import signal
import time
from multiprocessing import shared_memory
from typing import Any, Sequence

import numpy as np

from repro.chaos.hooks import fire as chaos_fire
from repro.data.batching import MinibatchSampler
from repro.exec.base import (
    ExecutionBackend,
    LocalStepsResult,
    LocalStepsTask,
    check_timeout,
    resolve_retry,
    run_local_steps_kernel,
)
from repro.exec.dispatch import restore_sampler_state, sampler_state_token
from repro.exec.threads import default_worker_count
from repro.nn.network import NeuralNetwork
from repro.obs import NULL_TRACER
from repro.ops.projections import identity_projection

__all__ = ["ProcessBackend"]

_CLOCK = time.monotonic  # system-wide on Linux: comparable across processes

# Worker-process globals, populated once by the pool initializer.
_WORKER: dict[str, Any] = {}


def _init_worker(engine_bytes: bytes, shards: dict) -> None:
    _WORKER["engine"] = pickle.loads(engine_bytes)
    _WORKER["shards"] = shards


def _rebuild_sampler(dataset, batch_size: int, state: dict) -> MinibatchSampler:
    """Reconstruct a sampler continuing bit-identically from ``state``."""
    sampler = MinibatchSampler(dataset, batch_size, np.random.default_rng(0))
    restore_sampler_state(sampler, state)
    return sampler


def _execute_unit(engine: NeuralNetwork, shards: dict, w_start: np.ndarray,
                  unit: tuple) -> tuple:
    """Run one client's chained occurrences; shared by workers and fallback."""
    client_id, state, occurrences = unit
    dataset, batch_size = shards[client_id]
    sampler = _rebuild_sampler(dataset, batch_size, state)
    outputs = []
    for index, steps, lr, checkpoint_after, proj_bytes in occurrences:
        projection = (identity_projection if proj_bytes is None
                      else pickle.loads(proj_bytes))
        batches = [sampler.next_batch() for _ in range(steps)]
        w_end, w_ckpt = run_local_steps_kernel(
            engine, w_start, batches, lr=lr, projection=projection,
            checkpoint_after=checkpoint_after)
        outputs.append((index, w_end, w_ckpt))
    return client_id, sampler_state_token(sampler), outputs


def _run_unit(payload: tuple) -> tuple:
    """Pool entry point: attach the broadcast weights and run one unit."""
    shm_name, dim, unit, submitted = payload
    started = _CLOCK()
    # Attaching would register the segment with the resource tracker
    # (CPython < 3.13 has no track=False), but the *parent* owns and unlinks
    # the block; a worker-side registration only produces spurious "leaked
    # shared_memory" warnings (and, with several workers sharing one tracker
    # under fork, KeyErrors on double-unregister).  Suppress registration for
    # the duration of the attach instead.
    from multiprocessing import resource_tracker
    original_register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        shm = shared_memory.SharedMemory(name=shm_name)
    finally:
        resource_tracker.register = original_register
    try:
        w_start = np.ndarray((dim,), dtype=np.float64, buffer=shm.buf).copy()
    finally:
        shm.close()
    client_id, new_state, outputs = _execute_unit(
        _WORKER["engine"], _WORKER["shards"], w_start, unit)
    return (client_id, new_state, outputs,
            _CLOCK() - started, started - submitted)


class ProcessBackend(ExecutionBackend):
    """Run tasks on a persistent :class:`multiprocessing.pool.Pool`.

    Parameters
    ----------
    workers:
        Pool size; defaults to
        :func:`~repro.exec.threads.default_worker_count`.
    timeout_s:
        Per-dispatch supervision deadline.  When the batch has not finished
        within this many wall-clock seconds the pool is respawned and the
        unfinished units are retried.  ``None`` (default) disables the
        deadline — dead workers are still detected via the pid watch.
    retry:
        :class:`~repro.faults.plan.RetryPolicy` bounding per-unit retries
        after a worker death or timeout (default policy: 2 retries with
        seeded exponential backoff).
    """

    name = "process"
    wants_sampler_state = True

    def __init__(self, workers: int | None = None, *,
                 timeout_s: float | None = None, retry=None) -> None:
        self.workers = int(workers) if workers else default_worker_count()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.timeout_s = check_timeout(timeout_s)
        self.retry = resolve_retry(retry)
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else None)
        self._pool = None
        self._engine: NeuralNetwork | None = None
        self._registry: dict[int, tuple[Any, int]] = {}
        self._stale = True
        self._shm: shared_memory.SharedMemory | None = None
        self._shm_content: bytes | None = None

    # --------------------------------------------------------------- plumbing
    def prepare(self, engine: NeuralNetwork, clients: Sequence[Any]) -> None:
        """Record shards/engine to ship at (re)creation of the worker pool."""
        for client in clients:
            cid = client.client_id
            if cid not in self._registry:
                self._registry[cid] = (client.sampler.dataset,
                                       client.sampler.batch_size)
                self._stale = True
        if self._engine is not engine:
            self._engine = engine
            self._stale = True

    def forget_clients(self, client_ids: Sequence[int]) -> None:
        """Evict shards from the registry (virtual-cohort discard).

        Marks the pool stale so the *workers'* copies are dropped at the next
        (re)creation too; without this a long virtual run would accumulate
        every client ever dispatched in both the parent and each worker.
        """
        dropped = False
        for cid in client_ids:
            if self._registry.pop(int(cid), None) is not None:
                dropped = True
        if dropped:
            self._stale = True

    def _ensure_pool(self):
        if self._pool is not None and not self._stale:
            return self._pool
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
        self._pool = self._ctx.Pool(
            processes=self.workers, initializer=_init_worker,
            initargs=(pickle.dumps(self._engine), dict(self._registry)))
        self._stale = False
        return self._pool

    @staticmethod
    def _build_units(tasks: Sequence[LocalStepsTask]) -> list[tuple]:
        """Chain same-client tasks (in task order) into one unit per client."""
        units: dict[int, tuple] = {}
        for task in tasks:
            if task.batches is not None:
                raise ValueError(
                    "ProcessBackend draws batches worker-side; tasks must "
                    "carry sampler_state, not pre-drawn batches "
                    "(use the dispatcher)")
            if task.sampler_state is None:
                if task.client_id not in units:
                    raise ValueError(
                        "ProcessBackend tasks must carry sampler_state on the "
                        "first occurrence of each client (use the dispatcher)")
            elif task.client_id in units:
                raise ValueError(
                    f"duplicate sampler_state for client {task.client_id}; "
                    "later occurrences must chain (sampler_state=None)")
            proj_bytes = (None if task.projection is identity_projection
                          else pickle.dumps(task.projection))
            occurrence = (task.index, task.steps, task.lr,
                          task.checkpoint_after, proj_bytes)
            if task.client_id in units:
                units[task.client_id][2].append(occurrence)
            else:
                units[task.client_id] = (task.client_id, task.sampler_state,
                                         [occurrence])
        return list(units.values())

    # -------------------------------------------------------------- execution
    def run_tasks(self, engine: NeuralNetwork, w_start: np.ndarray,
                  tasks: Sequence[LocalStepsTask], *, obs=None,
                  ) -> list[LocalStepsResult]:
        """Broadcast ``w_start`` once, fan units out, gather in task order."""
        obs = obs if obs is not None else NULL_TRACER
        self.prepare(engine, [])
        if any(cid not in self._registry
               for cid in {t.client_id for t in tasks}):
            raise RuntimeError(
                "ProcessBackend.run_tasks called with unregistered clients; "
                "call prepare(engine, clients) first (the dispatcher does)")
        units = self._build_units(tasks)
        try:
            payload_ok = True
            units_bytes = pickle.dumps(units)
        except Exception:
            # Unpicklable projection (e.g. a test lambda): run inline instead
            # of crashing — same bits, no parallelism.
            payload_ok = False
            units_bytes = b""
        with obs.span("exec_batch", backend=self.name, tasks=len(tasks),
                      units=len(units), workers=self.workers,
                      inline=not payload_ok):
            if payload_ok:
                unit_results = self._run_pooled(w_start, units, obs)
            else:
                unit_results = [(*_execute_unit(engine, self._registry,
                                                np.asarray(w_start,
                                                           dtype=np.float64),
                                                unit), 0.0, 0.0)
                                for unit in units]
        del units_bytes
        results: list[LocalStepsResult | None] = [None] * len(tasks)
        position = {task.index: pos for pos, task in enumerate(tasks)}
        for client_id, new_state, outputs, busy_s, wait_s in unit_results:
            for j, (index, w_end, w_ckpt) in enumerate(outputs):
                results[position[index]] = LocalStepsResult(
                    index=index, client_id=client_id, w_end=w_end,
                    w_checkpoint=w_ckpt,
                    sampler_state=new_state if j == 0 else None,
                    busy_s=busy_s if j == 0 else 0.0,
                    queue_wait_s=wait_s if j == 0 else 0.0)
        if obs.enabled:
            obs.count("exec_tasks_total", len(tasks))
            obs.observe("exec_worker_busy_s",
                        sum(u[3] for u in unit_results))
            for u in unit_results:
                obs.observe("exec_queue_wait_s", max(0.0, u[4]))
        return results  # type: ignore[return-value]

    def _run_pooled(self, w_start: np.ndarray, units: list[tuple],
                    obs) -> list[tuple]:
        w_start = np.ascontiguousarray(w_start, dtype=np.float64)
        shm = self._broadcast(w_start, obs)
        return self._supervised_map(shm.name, w_start.size, units, obs)

    def _broadcast(self, w_start: np.ndarray, obs) -> shared_memory.SharedMemory:
        """Write ``w_start`` into the broadcast segment, content-cached.

        The segment persists across dispatches (dispatches are synchronous,
        so it is never rewritten while workers read it).  When the incoming
        snapshot is byte-identical to what the segment already holds — e.g.
        Phase 1 dispatches every edge's first block from the same cloud
        weights — the write is skipped entirely: ``exec_broadcast_bytes``
        counts only real materializations and ``exec_broadcast_cached_total``
        counts the dispatches served from cache.  :meth:`close` unlinks it.
        """
        content = w_start.tobytes()
        if (self._shm is not None and self._shm_content == content):
            if obs.enabled:
                obs.count("exec_broadcast_cached_total")
            return self._shm
        if self._shm is not None and self._shm.size != w_start.nbytes:
            self._release_shm()
        if self._shm is None:
            self._shm = shared_memory.SharedMemory(create=True,
                                                   size=w_start.nbytes)
        np.ndarray(w_start.shape, dtype=np.float64,
                   buffer=self._shm.buf)[:] = w_start
        self._shm_content = content
        if obs.enabled:
            obs.count("exec_broadcast_bytes", w_start.nbytes)
        return self._shm

    def _release_shm(self) -> None:
        if self._shm is None:
            return
        self._shm.close()
        self._shm.unlink()
        self._shm = None
        self._shm_content = None

    def _supervised_map(self, shm_name: str, dim: int, units: list[tuple],
                        obs) -> list[tuple]:
        """Fan units out with death/timeout supervision; results in unit order.

        Each outer iteration submits the still-unfinished units to a healthy
        pool and watches three conditions: results completing (collected
        immediately), the pool's live pid set changing (a worker died — its
        in-flight unit would otherwise hang the dispatch forever), and the
        optional wall-clock deadline.  Death or deadline tears the pool down
        and retries the unfinished units — bit-identical by kernel purity —
        up to ``retry.max_retries`` times per unit.  A worker-side *exception*
        (a real bug, not a crash) propagates immediately and is never retried.
        """
        results: dict[int, tuple] = {}
        attempts = {i: 0 for i in range(len(units))}
        pending = list(range(len(units)))
        while pending:
            pool = self._ensure_pool()
            # Snapshot the healthy pid set *before* anything can die: the
            # pool's own maintenance thread replaces dead workers (with new
            # pids), so a post-mortem snapshot could look "normal" while the
            # dead worker's in-flight unit is lost forever.
            known = {p.pid for p in pool._pool}
            submitted = _CLOCK()
            inflight = {
                i: pool.apply_async(
                    _run_unit, ((shm_name, dim, units[i], submitted),))
                for i in pending}
            # The chaos kill lands after submission so an in-flight unit can
            # genuinely be lost; with no injector installed this is a no-op.
            self._chaos_kill(pool, obs)
            deadline = (None if self.timeout_s is None
                        else submitted + self.timeout_s)
            failure = None
            while inflight:
                for i in [i for i, r in inflight.items() if r.ready()]:
                    results[i] = inflight.pop(i).get()
                if not inflight:
                    break
                alive = {p.pid for p in pool._pool if p.is_alive()}
                if alive != known:
                    failure = "worker_death"
                    break
                if deadline is not None and _CLOCK() > deadline:
                    failure = "timeout"
                    break
                next(iter(inflight.values())).wait(0.02)
            if failure is None:
                alive = {p.pid for p in pool._pool if p.is_alive()}
                if alive != known:
                    # Every unit completed, but a worker died inside the
                    # dispatch window anyway (e.g. SIGKILLed while idle in
                    # the task-queue read).  Its death may have taken a
                    # shared queue lock with it, which would wedge the
                    # *next* dispatch forever — retire the pool now; there
                    # is nothing to retry.
                    self._respawn()
                    if obs.enabled:
                        obs.event("worker_respawn", backend=self.name,
                                  reason="worker_death", resubmitted=0)
                        obs.count("worker_respawns_total")
                break
            # Harvest anything that finished between the last sweep and the
            # failure detection, then retry the rest on a fresh pool.
            for i in [i for i, r in list(inflight.items()) if r.ready()]:
                results[i] = inflight.pop(i).get()
            pending = sorted(inflight)
            self._respawn()
            max_attempt = 0
            for i in pending:
                attempts[i] += 1
                max_attempt = max(max_attempt, attempts[i])
                if attempts[i] > self.retry.max_retries:
                    raise RuntimeError(
                        f"exec unit for client {units[i][0]} failed "
                        f"{attempts[i]} times ({failure}); retry budget "
                        f"({self.retry.max_retries}) exhausted")
            if obs.enabled:
                obs.event("worker_respawn", backend=self.name,
                          reason=failure, resubmitted=len(pending))
                obs.count("worker_respawns_total")
                if pending:
                    obs.count("exec_retries_total", len(pending))
                    for i in pending:
                        obs.event("exec_retry", backend=self.name,
                                  client=units[i][0], attempt=attempts[i],
                                  reason=failure)
            if pending and max_attempt > 0:
                # Wall-clock-only pause before hammering a possibly-sick
                # host again; never affects result bits.
                time.sleep(self.retry.backoff_s(max_attempt - 1,
                                                seed=0, entity="exec"))
        return [results[i] for i in range(len(units))]

    def _respawn(self) -> None:
        """Abandon the (possibly wedged) pool; the next dispatch rebuilds it.

        Deliberately NOT ``Pool.terminate()``: a worker that died from
        SIGKILL/OOM can take a shared queue lock down with it, after which
        the cooperative shutdown (and the finalizer registered at pool
        creation) blocks forever trying to acquire that lock.  Instead the
        maintenance loop is stopped (so it stops replacing workers), the
        remaining daemonic workers are SIGKILLed, the finalizer is
        cancelled, and the daemonic helper threads are simply abandoned —
        they die with the process.  Only the failure path pays this; healthy
        lifecycle teardown (:meth:`close`, stale rebuilds) stays cooperative.
        """
        pool, self._pool = self._pool, None
        self._stale = True
        if pool is None:
            return
        pool._state = mp_pool.TERMINATE
        pool._worker_handler._state = mp_pool.TERMINATE
        for p in pool._pool:
            if p.is_alive():
                p.kill()
        for p in pool._pool:
            p.join(timeout=1.0)
        pool._terminate.cancel()

    def _chaos_kill(self, pool, obs) -> None:
        """Chaos site ``worker_kill``: SIGKILL a derived victim worker."""
        decision = chaos_fire("worker_kill")
        if decision is None:
            return
        procs = [p for p in pool._pool if p.is_alive()]
        if not procs:  # pragma: no cover - empty pool cannot be dispatched to
            return
        pids = sorted(p.pid for p in procs)
        victim = pids[decision["victim"] % len(pids)]
        os.kill(victim, signal.SIGKILL)
        if obs.enabled:
            obs.event("chaos", site="worker_kill",
                      occurrence=decision["occurrence"], pid=victim)

    def close(self) -> None:
        """Terminate the worker pool (registry survives for a later reopen)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._release_shm()
        self._stale = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(workers={self.workers})"
