"""VectorizedBackend — stack same-shape clients into one batched SGD kernel.

A serial round over many small clients is dominated by Python/layer dispatch
overhead, not arithmetic.  This backend stacks the clients of a dispatch that
share a step count and per-step batch shapes into ``(n_clients, batch, dim)``
tensors and runs each SGD step of the *whole group* as a handful of batched
``np.matmul`` calls (stacked GEMMs) with one leading client axis — for the
paper's convex model (multinomial logistic regression) and for the non-convex
MLP stack alike.

Eligibility is declarative: every layer of the engine must carry a
``vector_kind`` tag (:class:`~repro.nn.layers.Linear`, ``ReLU``, ``Tanh``,
``Identity`` do) and the loss must be exactly
:class:`~repro.nn.losses.SoftmaxCrossEntropy`; tasks must use the identity
projection and carry one pre-drawn batch per declared step.  Anything else —
custom layers, non-identity projections, a batch list inconsistent with
``task.steps`` — falls back to the serial kernel per task, bit-identically.

Bit-exactness: NumPy applies the batched matmul/reduction kernels slice-by-
slice with the same accumulation order as the equivalent 2-D call, so every
client's update is bit-identical to the serial kernel.  The equivalence tests
assert this for logistic *and* MLP engines on every backend, and the
``nn/gradcheck`` cross-checks tie the batched step to the finite-difference
gradient of the serial model.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.exec.base import (
    ExecutionBackend,
    LocalStepsResult,
    LocalStepsTask,
    run_local_steps_kernel,
)
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import NeuralNetwork
from repro.obs import NULL_TRACER
from repro.ops.numerics import softmax
from repro.ops.projections import identity_projection

__all__ = ["VectorizedBackend", "engine_is_batchable"]

_TIME = time.perf_counter


def _layer_kind(layer) -> str | None:
    """The layer's declared batched-kernel tag, non-inherited.

    Read from the exact class only: a subclass may override
    ``forward``/``backward``, so it must re-declare ``vector_kind`` itself to
    claim its bits match the stacked kernel's.
    """
    return type(layer).__dict__.get("vector_kind")


def engine_is_batchable(engine: NeuralNetwork) -> bool:
    """True when every layer and the loss are in the batched kernel's vocabulary."""
    if type(engine.loss_fn) is not SoftmaxCrossEntropy:
        return False
    return all(_layer_kind(layer) is not None for layer in engine.layers)


class _StackedModel:
    """An engine's layer stack replicated over ``n`` clients.

    Holds ``(n, …)``-stacked copies of every parameter tensor, each
    initialized from the same ``w_start``, plus the flat-buffer slices needed
    to reassemble per-client parameter vectors in the engine's spec order.
    """

    def __init__(self, engine: NeuralNetwork, w_start: np.ndarray,
                 n: int) -> None:
        self.n = n
        self.dim = w_start.size
        slices: dict[int, dict[str, slice]] = {}
        for layer, spec, sl in engine._specs:
            slices.setdefault(id(layer), {})[spec.name] = sl
        #: list of (kind, payload); only "linear" entries carry parameters.
        self.layers: list[tuple[str, dict]] = []
        for layer in engine.layers:
            kind = _layer_kind(layer)
            if kind != "linear":
                self.layers.append((kind, {}))
                continue
            sl_w = slices[id(layer)]["W"]
            sl_b = slices[id(layer)].get("b")
            self.layers.append(("linear", {
                "Ws": np.repeat(w_start[sl_w].reshape(
                    1, layer.in_features, layer.out_features), n, axis=0),
                "bs": (None if sl_b is None else np.repeat(
                    w_start[sl_b].reshape(1, layer.out_features), n, axis=0)),
                "sl_w": sl_w,
                "sl_b": sl_b,
            }))

    def step(self, X: np.ndarray, y: np.ndarray, lr: float, l2: float) -> None:
        """One batched SGD step over all ``n`` clients.

        Replays exactly the serial kernel's floating-point operations with one
        leading stack axis: per Linear layer ``out = X @ W (+ b)``; the fused
        loss gradient ``g = (softmax(logits) − onehot)/B``; backward
        ``gW = Xᵀ g``, ``gb = Σ g``, ``g ← g Wᵀ`` gated through the activation
        masks; then ``θ -= lr·(∇ + l2·θ)`` only once the whole backward has
        finished — the same update order as the flat-buffer serial step, so
        gradient propagation always reads pre-update weights.
        """
        n, batch = self.n, y.shape[1]
        acts = X
        caches: list = []
        for kind, p in self.layers:
            if kind == "linear":
                caches.append(acts)
                out = np.matmul(acts, p["Ws"])
                if p["bs"] is not None:
                    out += p["bs"][:, None, :]
                acts = out
            elif kind == "relu":
                caches.append(acts > 0.0)
                acts = np.maximum(acts, 0.0)
            elif kind == "tanh":
                acts = np.tanh(acts)
                caches.append(acts)
            else:  # identity
                caches.append(None)
        grad = softmax(acts, axis=-1)
        grad[np.arange(n)[:, None], np.arange(batch)[None, :], y] -= 1.0
        grad /= batch
        updates: list[tuple[dict, np.ndarray, np.ndarray | None]] = []
        for i in range(len(self.layers) - 1, -1, -1):
            kind, p = self.layers[i]
            cache = caches[i]
            if kind == "linear":
                gW = np.matmul(cache.swapaxes(1, 2), grad)
                gb = None if p["bs"] is None else grad.sum(axis=1)
                updates.append((p, gW, gb))
                if i:  # the first layer's input gradient is never consumed
                    grad = np.matmul(grad, p["Ws"].swapaxes(1, 2))
            elif kind == "relu":
                grad = grad * cache
            elif kind == "tanh":
                grad = grad * (1.0 - cache * cache)
        for p, gW, gb in updates:
            if l2:
                gW = gW + l2 * p["Ws"]
            p["Ws"] -= lr * gW
            if gb is not None:
                if l2:
                    gb = gb + l2 * p["bs"]
                p["bs"] -= lr * gb

    def flatten(self, i: int) -> np.ndarray:
        """Client ``i``'s flat parameter vector, reassembled in spec order."""
        flat = np.empty(self.dim, dtype=np.float64)
        for kind, p in self.layers:
            if kind != "linear":
                continue
            flat[p["sl_w"]] = p["Ws"][i].ravel()
            if p["sl_b"] is not None:
                flat[p["sl_b"]] = p["bs"][i]
        return flat


class VectorizedBackend(ExecutionBackend):
    """Batched cross-client SGD; serial fallback for everything else."""

    name = "vectorized"
    wants_sampler_state = False

    def run_tasks(self, engine: NeuralNetwork, w_start: np.ndarray,
                  tasks: Sequence[LocalStepsTask], *, obs=None,
                  ) -> list[LocalStepsResult]:
        """Group eligible tasks and run each group as one stacked kernel."""
        obs = obs if obs is not None else NULL_TRACER
        started = _TIME()
        results: list[LocalStepsResult | None] = [None] * len(tasks)
        vectorizable = engine_is_batchable(engine)
        groups: dict[tuple, list[tuple[int, LocalStepsTask]]] = {}
        leftover: list[tuple[int, LocalStepsTask]] = []
        for pos, task in enumerate(tasks):
            # Eligibility is per task.  The group key carries *every* step's
            # batch shapes — not just the first's — so a task whose later
            # batches are ragged lands in its own (still batchable) group
            # instead of crashing np.stack mid-kernel; a batch list
            # inconsistent with the declared step count is demoted to the
            # serial fallback, which runs exactly the batches present (the
            # same contract as SerialBackend for that descriptor).
            if (vectorizable and task.projection is identity_projection
                    and task.batches and len(task.batches) == task.steps):
                key = (task.steps, task.checkpoint_after, task.lr,
                       tuple((np.shape(X), np.shape(y))
                             for X, y in task.batches))
                groups.setdefault(key, []).append((pos, task))
            else:
                leftover.append((pos, task))
        with obs.span("exec_batch", backend=self.name, tasks=len(tasks),
                      groups=len(groups), fallback=len(leftover)):
            for members in groups.values():
                self._run_group(engine, w_start, members, results)
            for pos, task in leftover:
                w_end, w_ckpt = run_local_steps_kernel(
                    engine, w_start, task.batches, lr=task.lr,
                    projection=task.projection,
                    checkpoint_after=task.checkpoint_after)
                results[pos] = LocalStepsResult(
                    index=task.index, client_id=task.client_id, w_end=w_end,
                    w_checkpoint=w_ckpt)
        if obs.enabled:
            obs.count("exec_tasks_total", len(tasks))
            obs.count("exec_vectorized_tasks_total",
                      len(tasks) - len(leftover))
            obs.observe("exec_worker_busy_s", _TIME() - started)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------ the kernel
    def _run_group(self, engine: NeuralNetwork, w_start: np.ndarray,
                   members: list[tuple[int, LocalStepsTask]],
                   results: list[LocalStepsResult | None]) -> None:
        """One batched SGD run for tasks sharing (steps, checkpoint, lr, shapes)."""
        task0 = members[0][1]
        steps, lr, l2 = task0.steps, task0.lr, engine.l2
        ckpt = task0.checkpoint_after
        w_start = np.asarray(w_start, dtype=np.float64)
        model = _StackedModel(engine, w_start, len(members))
        ckpt_flats: list[np.ndarray] | None = None
        for t in range(steps):
            X = np.stack([np.asarray(task.batches[t][0], dtype=np.float64)
                          for _, task in members])
            y = np.stack([np.asarray(task.batches[t][1])
                          for _, task in members])
            model.step(X, y, lr, l2)
            if ckpt is not None and t + 1 == ckpt:
                ckpt_flats = [model.flatten(i) for i in range(len(members))]
        for i, (pos, task) in enumerate(members):
            results[pos] = LocalStepsResult(
                index=task.index, client_id=task.client_id,
                w_end=model.flatten(i),
                w_checkpoint=None if ckpt_flats is None else ckpt_flats[i])
