"""VectorizedBackend — stack same-shape clients into one batched SGD kernel.

For the paper's convex model (multinomial logistic regression: one ``Linear``
layer + softmax cross-entropy) the per-client SGD step is a handful of small
matmuls, so a serial round is dominated by Python/layer dispatch overhead.
This backend stacks the clients of a dispatch that share a step count and
batch shape into ``(n_clients, batch, dim)`` tensors and runs each SGD step as
*one* batched ``np.matmul`` (a stacked GEMM) over all of them.

Bit-exactness: NumPy applies the batched matmul/reduction kernels slice-by-
slice with the same accumulation order as the equivalent 2-D call, so every
client's update is bit-identical to the serial kernel — the equivalence tests
assert this, and :meth:`VectorizedBackend.run_tasks` falls back to the serial
kernel for anything it cannot prove eligible (MLP engines, non-identity
projections, ragged batch shapes).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.exec.base import (
    ExecutionBackend,
    LocalStepsResult,
    LocalStepsTask,
    run_local_steps_kernel,
)
from repro.nn.layers import Linear
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.network import NeuralNetwork
from repro.obs import NULL_TRACER
from repro.ops.numerics import softmax
from repro.ops.projections import identity_projection

__all__ = ["VectorizedBackend"]

_TIME = time.perf_counter


def _engine_is_logreg(engine: NeuralNetwork) -> bool:
    """True when the engine is exactly the batched kernel's model class."""
    return (len(engine.layers) == 1
            and type(engine.layers[0]) is Linear
            and engine.layers[0].use_bias
            and type(engine.loss_fn) is SoftmaxCrossEntropy)


class VectorizedBackend(ExecutionBackend):
    """Batched logistic-regression SGD; serial fallback for everything else."""

    name = "vectorized"
    wants_sampler_state = False

    def run_tasks(self, engine: NeuralNetwork, w_start: np.ndarray,
                  tasks: Sequence[LocalStepsTask], *, obs=None,
                  ) -> list[LocalStepsResult]:
        """Group eligible tasks and run each group as one stacked kernel."""
        obs = obs if obs is not None else NULL_TRACER
        started = _TIME()
        results: list[LocalStepsResult | None] = [None] * len(tasks)
        vectorizable = _engine_is_logreg(engine)
        groups: dict[tuple, list[tuple[int, LocalStepsTask]]] = {}
        leftover: list[tuple[int, LocalStepsTask]] = []
        for pos, task in enumerate(tasks):
            if (vectorizable and task.projection is identity_projection
                    and task.batches):
                X0, y0 = task.batches[0]
                key = (task.steps, task.checkpoint_after, task.lr,
                       X0.shape, y0.shape)
                groups.setdefault(key, []).append((pos, task))
            else:
                leftover.append((pos, task))
        with obs.span("exec_batch", backend=self.name, tasks=len(tasks),
                      groups=len(groups), fallback=len(leftover)):
            for members in groups.values():
                self._run_group(engine, w_start, members, results)
            for pos, task in leftover:
                w_end, w_ckpt = run_local_steps_kernel(
                    engine, w_start, task.batches, lr=task.lr,
                    projection=task.projection,
                    checkpoint_after=task.checkpoint_after)
                results[pos] = LocalStepsResult(
                    index=task.index, client_id=task.client_id, w_end=w_end,
                    w_checkpoint=w_ckpt)
        if obs.enabled:
            obs.count("exec_tasks_total", len(tasks))
            obs.count("exec_vectorized_tasks_total",
                      len(tasks) - len(leftover))
            obs.observe("exec_worker_busy_s", _TIME() - started)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------ the kernel
    def _run_group(self, engine: NeuralNetwork, w_start: np.ndarray,
                   members: list[tuple[int, LocalStepsTask]],
                   results: list[LocalStepsResult | None]) -> None:
        """One batched SGD run for tasks sharing (steps, checkpoint, shapes).

        Replays exactly the serial kernel's floating-point operations —
        ``logits = X @ W + b``; ``g = (softmax(logits) - onehot)/B``;
        ``gW = Xᵀ @ g``; ``gb = Σ g``; ``+ l2·θ``; ``θ -= lr·(∇ + l2·θ)`` —
        with one leading stack axis over the group's clients.
        """
        layer = engine.layers[0]
        (_, _, sl_w), (_, _, sl_b) = engine._specs
        din, n_cls = layer.in_features, layer.out_features
        n = len(members)
        task0 = members[0][1]
        steps, lr, l2 = task0.steps, task0.lr, engine.l2
        ckpt = task0.checkpoint_after
        w_start = np.asarray(w_start, dtype=np.float64)
        Ws = np.repeat(w_start[sl_w].reshape(1, din, n_cls), n, axis=0)
        bs = np.repeat(w_start[sl_b].reshape(1, n_cls), n, axis=0)
        ckpt_flats: list[np.ndarray] | None = None
        for t in range(steps):
            X = np.stack([task.batches[t][0] for _, task in members])
            y = np.stack([np.asarray(task.batches[t][1])
                          for _, task in members])
            batch = y.shape[1]
            logits = np.matmul(X, Ws)
            logits += bs[:, None, :]
            grad = softmax(logits, axis=-1)
            grad[np.arange(n)[:, None], np.arange(batch)[None, :], y] -= 1.0
            grad /= batch
            gW = np.matmul(X.swapaxes(1, 2), grad)
            gb = grad.sum(axis=1)
            if l2:
                gW = gW + l2 * Ws
                gb = gb + l2 * bs
            Ws -= lr * gW
            bs -= lr * gb
            if ckpt is not None and t + 1 == ckpt:
                ckpt_flats = [self._flatten(Ws[i], bs[i], sl_w, sl_b,
                                            w_start.size)
                              for i in range(n)]
        for i, (pos, task) in enumerate(members):
            results[pos] = LocalStepsResult(
                index=task.index, client_id=task.client_id,
                w_end=self._flatten(Ws[i], bs[i], sl_w, sl_b, w_start.size),
                w_checkpoint=None if ckpt_flats is None else ckpt_flats[i])

    @staticmethod
    def _flatten(W: np.ndarray, b: np.ndarray, sl_w: slice, sl_b: slice,
                 dim: int) -> np.ndarray:
        """Reassemble one client's flat parameter vector in spec order."""
        flat = np.empty(dim, dtype=np.float64)
        flat[sl_w] = W.ravel()
        flat[sl_b] = b
        return flat
