"""SerialBackend — the default: run every task inline on the shared engine.

This is the reference implementation of the determinism contract: its output
*defines* what the parallel backends must reproduce bit-for-bit.  It adds no
threads, no processes, and (with a :class:`~repro.obs.NullTracer`) no
per-task overhead beyond one function call, so the default configuration is
exactly as fast as the pre-backend code path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exec.base import (
    ExecutionBackend,
    LocalStepsResult,
    LocalStepsTask,
    run_local_steps_kernel,
)
from repro.nn.network import NeuralNetwork
from repro.obs import NULL_TRACER

__all__ = ["SerialBackend", "SERIAL_BACKEND"]


class SerialBackend(ExecutionBackend):
    """Execute tasks one after another on the caller's engine.

    Emits the canonical per-client ``client_local_steps`` span for each task
    (the parallel backends cannot — spans are not thread-safe — and emit
    ``exec_batch`` aggregates instead).
    """

    name = "serial"
    wants_sampler_state = False

    def run_tasks(self, engine: NeuralNetwork, w_start: np.ndarray,
                  tasks: Sequence[LocalStepsTask], *, obs=None,
                  ) -> list[LocalStepsResult]:
        """Run every task inline, in order, on ``engine``."""
        obs = obs if obs is not None else NULL_TRACER
        results: list[LocalStepsResult] = []
        for task in tasks:
            with obs.span("client_local_steps", client=task.client_id,
                          steps=task.steps) as span:
                w_end, w_ckpt = run_local_steps_kernel(
                    engine, w_start, task.batches, lr=task.lr,
                    projection=task.projection,
                    checkpoint_after=task.checkpoint_after)
            results.append(LocalStepsResult(
                index=task.index, client_id=task.client_id, w_end=w_end,
                w_checkpoint=w_ckpt, busy_s=span.duration))
        return results


#: Process-wide shared serial backend; what ``backend=None`` resolves to
#: (unless the ``REPRO_BACKEND`` environment variable overrides the default).
SERIAL_BACKEND = SerialBackend()
