"""Euclidean projections onto the constraint sets used by HierMinimax.

The paper allows the model domain ``W`` and the weight domain ``P`` to be arbitrary
compact convex sets (Assumption 1).  In practice the experiments use

* ``W = R^d`` (no projection) or an L2 ball of radius ``R_W`` for the theory benches,
* ``P = Δ_{N_E - 1}`` — the probability simplex — or a box-constrained subset of it
  (the paper's "prior knowledge or parameter regularization" footnote).

All projections here are exact Euclidean projections computed with vectorized NumPy:

* :func:`project_simplex` uses the O(n log n) sort-based algorithm of
  Held–Wolfe–Crowder / Duchi et al. (2008).
* :func:`project_capped_simplex` projects onto
  ``{p : lo <= p_i <= hi, sum p = 1}`` by bisection on the shift parameter of the
  clipped-affine function, which is monotone, so the solve is robust and fast.
* :func:`project_l2_ball` and :func:`project_box` are closed-form.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "project_simplex",
    "project_capped_simplex",
    "project_l2_ball",
    "project_box",
    "identity_projection",
    "Projection",
]

Projection = Callable[[np.ndarray], np.ndarray]


def identity_projection(x: np.ndarray) -> np.ndarray:
    """Projection onto the whole space (no-op); used when ``W = R^d``."""
    return x


def project_simplex(v: np.ndarray, radius: float = 1.0) -> np.ndarray:
    """Project ``v`` onto the simplex ``{p >= 0, sum(p) = radius}``.

    Implements the sort-and-threshold algorithm: find the largest ``rho`` with
    ``u_rho - (cumsum(u)_rho - radius) / rho > 0`` where ``u`` is ``v`` sorted in
    decreasing order; the projection is ``max(v - theta, 0)`` with
    ``theta = (cumsum(u)_rho - radius) / rho``.

    Parameters
    ----------
    v:
        Input vector (any real values).
    radius:
        Total mass of the target simplex; must be positive.

    Returns
    -------
    numpy.ndarray
        The unique Euclidean projection, nonnegative and summing to ``radius``.
    """
    v = np.asarray(v, dtype=np.float64)
    if v.ndim != 1:
        raise ValueError(f"project_simplex expects a 1-D vector, got shape {v.shape}")
    if v.size == 0:
        raise ValueError("cannot project an empty vector onto a simplex")
    if not np.isfinite(radius) or radius <= 0:
        raise ValueError(f"simplex radius must be positive, got {radius}")
    if not np.all(np.isfinite(v)):
        raise ValueError("project_simplex received non-finite input")

    u = np.sort(v)[::-1]
    cssv = np.cumsum(u) - radius
    ind = np.arange(1, v.size + 1)
    cond = u - cssv / ind > 0
    # cond[0] is always True because u[0] - (u[0] - radius) = radius > 0.
    rho = ind[cond][-1]
    theta = cssv[rho - 1] / rho
    return np.maximum(v - theta, 0.0)


def project_capped_simplex(v: np.ndarray, lo: float = 0.0, hi: float = 1.0,
                           *, total: float = 1.0, tol: float = 1e-12,
                           max_iter: int = 200) -> np.ndarray:
    """Project onto the box-constrained simplex ``{lo <= p_i <= hi, sum p = total}``.

    The projection is ``clip(v - theta, lo, hi)`` for the unique ``theta`` making the
    coordinates sum to ``total``; ``theta`` is found by bisection since the sum is a
    continuous non-increasing function of ``theta``.

    This realizes the paper's general convex constraint set ``P``: e.g.
    ``lo = 0.05`` guarantees every edge area keeps at least 5% weight.
    """
    v = np.asarray(v, dtype=np.float64)
    if v.ndim != 1:
        raise ValueError(f"project_capped_simplex expects a 1-D vector, got shape {v.shape}")
    n = v.size
    if n == 0:
        raise ValueError("cannot project an empty vector")
    if lo > hi:
        raise ValueError(f"lower bound {lo} exceeds upper bound {hi}")
    if not (n * lo <= total + 1e-12 and total <= n * hi + 1e-12):
        raise ValueError(
            f"infeasible capped simplex: need {n}*{lo} <= {total} <= {n}*{hi}")

    def mass(theta: float) -> float:
        return float(np.clip(v - theta, lo, hi).sum())

    # Bracket theta: at theta_low the clipped sum is maximal (n*hi), at theta_high
    # minimal (n*lo).
    theta_low = float(v.min() - hi - 1.0)
    theta_high = float(v.max() - lo + 1.0)
    for _ in range(max_iter):
        theta_mid = 0.5 * (theta_low + theta_high)
        if mass(theta_mid) > total:
            theta_low = theta_mid
        else:
            theta_high = theta_mid
        if theta_high - theta_low < tol:
            break
    out = np.clip(v - 0.5 * (theta_low + theta_high), lo, hi)
    # Remove the residual mass error from the bisection tolerance by distributing it
    # over the interior (strictly-between-bounds) coordinates.
    residual = total - out.sum()
    if abs(residual) > 0:
        interior = (out > lo + 1e-15) & (out < hi - 1e-15)
        n_int = int(interior.sum())
        if n_int > 0:
            out[interior] += residual / n_int
            out = np.clip(out, lo, hi)
    return out


def project_l2_ball(v: np.ndarray, radius: float, center: np.ndarray | None = None,
                    ) -> np.ndarray:
    """Project ``v`` onto the L2 ball of ``radius`` around ``center`` (default 0)."""
    if not np.isfinite(radius) or radius < 0:
        raise ValueError(f"ball radius must be a nonnegative finite number, got {radius}")
    v = np.asarray(v, dtype=np.float64)
    if center is not None:
        center = np.asarray(center, dtype=np.float64)
        if center.shape != v.shape:
            raise ValueError(f"center shape {center.shape} != vector shape {v.shape}")
        shifted = v - center
    else:
        shifted = v
    norm = float(np.linalg.norm(shifted))
    if norm <= radius:
        return v.copy()
    scaled = shifted * (radius / norm)
    return scaled if center is None else center + scaled


def project_box(v: np.ndarray, lo: np.ndarray | float, hi: np.ndarray | float) -> np.ndarray:
    """Project ``v`` onto the axis-aligned box ``[lo, hi]`` (closed-form clip)."""
    out = np.clip(np.asarray(v, dtype=np.float64), lo, hi)
    if np.any(np.asarray(lo) > np.asarray(hi)):
        raise ValueError("box projection requires lo <= hi elementwise")
    return out
