"""Numerical kernels: projections onto constraint sets and stable primitives."""

from repro.ops.numerics import (
    clip_by_norm,
    flat_norm,
    log_softmax,
    logsumexp,
    one_hot,
    softmax,
    weighted_average,
)
from repro.ops.projections import (
    Projection,
    identity_projection,
    project_box,
    project_capped_simplex,
    project_l2_ball,
    project_simplex,
)

__all__ = [
    "clip_by_norm",
    "flat_norm",
    "log_softmax",
    "logsumexp",
    "one_hot",
    "softmax",
    "weighted_average",
    "Projection",
    "identity_projection",
    "project_box",
    "project_capped_simplex",
    "project_l2_ball",
    "project_simplex",
]
