"""Numerically-stable primitives shared by the NN substrate and the algorithms.

All functions are vectorized over a leading batch dimension and avoid temporary
copies where a fused expression exists (guides: broadcast first, allocate once).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "logsumexp",
    "one_hot",
    "clip_by_norm",
    "weighted_average",
    "flat_norm",
]


def logsumexp(z: np.ndarray, axis: int = -1, keepdims: bool = False) -> np.ndarray:
    """Stable ``log(sum(exp(z)))`` along ``axis``."""
    z = np.asarray(z, dtype=np.float64)
    zmax = np.max(z, axis=axis, keepdims=True)
    out = np.log(np.sum(np.exp(z - zmax), axis=axis, keepdims=True)) + zmax
    return out if keepdims else np.squeeze(out, axis=axis)


def softmax(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``; rows sum to exactly 1 up to float error."""
    z = np.asarray(z, dtype=np.float64)
    shifted = z - np.max(z, axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= np.sum(shifted, axis=axis, keepdims=True)
    return shifted


def log_softmax(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-softmax along ``axis``."""
    z = np.asarray(z, dtype=np.float64)
    return z - logsumexp(z, axis=axis, keepdims=True)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer ``labels`` of shape (B,) into a (B, num_classes) 0/1 matrix."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"one_hot expects 1-D labels, got shape {labels.shape}")
    if num_classes < 1:
        raise ValueError(f"num_classes must be >= 1, got {num_classes}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels out of range [0, {num_classes}): min={labels.min()}, max={labels.max()}")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def clip_by_norm(v: np.ndarray, max_norm: float) -> np.ndarray:
    """Rescale ``v`` so that ``||v||_2 <= max_norm`` (no-op if already inside)."""
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    norm = float(np.linalg.norm(v))
    if norm <= max_norm or norm == 0.0:
        return v
    return v * (max_norm / norm)


def weighted_average(vectors: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """Average the rows of ``vectors`` (shape (n, d)) with optional ``weights``.

    Weights are normalized to sum to 1; a uniform average is used when omitted.
    This is the aggregation kernel behind every client-edge / edge-cloud merge.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValueError(f"weighted_average expects shape (n, d), got {vectors.shape}")
    n = vectors.shape[0]
    if n == 0:
        raise ValueError("cannot average zero vectors")
    if weights is None:
        return vectors.mean(axis=0)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (n,):
        raise ValueError(f"weights shape {weights.shape} incompatible with {n} vectors")
    if np.any(weights < 0):
        raise ValueError("aggregation weights must be nonnegative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("aggregation weights must not all be zero")
    return (weights / total) @ vectors


def flat_norm(v: np.ndarray) -> float:
    """Euclidean norm of a flattened array as a Python float."""
    return float(np.linalg.norm(np.asarray(v).ravel()))
