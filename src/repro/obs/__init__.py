"""repro.obs — the telemetry layer of the training stack.

Three cooperating parts (see DESIGN.md §"Observability"):

* :mod:`repro.obs.tracer` — :class:`Tracer` with nestable context-manager
  spans (``run`` → ``cloud_round`` → ``phase1_model_update`` /
  ``phase2_weight_update`` → ``edge_block`` → ``client_local_steps``, plus
  ``evaluate`` and ``data_gen``) and the no-op :class:`NullTracer` default;
* :mod:`repro.obs.metrics` — named counters / gauges / histograms with a
  ``snapshot()`` API;
* :mod:`repro.obs.events` + :mod:`repro.obs.report` — the JSONL run-record
  schema, the :class:`TraceWriter` sink, and the offline ``trace-report``
  analyzer (plus :func:`follow_trace`, the live tail behind
  ``trace-report --follow``);
* :mod:`repro.obs.profile` — the ``trace-profile`` span profiler:
  self/cumulative time tables (wall *and* simulated clock), folded stacks,
  speedscope export;
* :mod:`repro.obs.critical_path` — replays the timing trees recorded by
  :class:`~repro.simtime.SimTimer` into per-round critical chains,
  per-entity blame, and parallelism efficiency;
* :mod:`repro.obs.perfcheck` — normalized ``BENCH_*.json`` bench documents
  and the ``perf-check`` regression gate over them.

Every algorithm, actor, and the experiment runner accept an ``obs=`` keyword
(default :data:`NULL_TRACER`); hot loops pay ~zero cost when tracing is off and
results are bit-identical either way, because the tracer never touches an RNG.
"""

from repro.obs.critical_path import (
    ChainStep,
    CriticalPathReport,
    RoundCriticalPath,
    analyze_critical_paths,
    analyze_round_tree,
    format_critical_path,
)
from repro.obs.events import EVENT_KINDS, TraceWriter, format_event
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PeakMemoryTracker,
)
from repro.obs.perfcheck import (
    PerfCheckResult,
    compare_bench,
    format_perfcheck,
    load_bench,
    write_bench,
)
from repro.obs.profile import (
    SpanProfile,
    folded_stacks,
    format_profile,
    profile_trace,
    speedscope_document,
)
from repro.obs.report import (
    RoundRecord,
    TraceReport,
    analyze_trace,
    follow_trace,
    format_trace_report,
    load_trace,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "TraceWriter",
    "format_event",
    "EVENT_KINDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PeakMemoryTracker",
    "TraceReport",
    "RoundRecord",
    "load_trace",
    "analyze_trace",
    "format_trace_report",
    "follow_trace",
    "SpanProfile",
    "profile_trace",
    "format_profile",
    "folded_stacks",
    "speedscope_document",
    "ChainStep",
    "RoundCriticalPath",
    "CriticalPathReport",
    "analyze_round_tree",
    "analyze_critical_paths",
    "format_critical_path",
    "PerfCheckResult",
    "load_bench",
    "write_bench",
    "compare_bench",
    "format_perfcheck",
]
