"""repro.obs — the telemetry layer of the training stack.

Three cooperating parts (see DESIGN.md §"Observability"):

* :mod:`repro.obs.tracer` — :class:`Tracer` with nestable context-manager
  spans (``run`` → ``cloud_round`` → ``phase1_model_update`` /
  ``phase2_weight_update`` → ``edge_block`` → ``client_local_steps``, plus
  ``evaluate`` and ``data_gen``) and the no-op :class:`NullTracer` default;
* :mod:`repro.obs.metrics` — named counters / gauges / histograms with a
  ``snapshot()`` API;
* :mod:`repro.obs.events` + :mod:`repro.obs.report` — the JSONL run-record
  schema, the :class:`TraceWriter` sink, and the offline ``trace-report``
  analyzer.

Every algorithm, actor, and the experiment runner accept an ``obs=`` keyword
(default :data:`NULL_TRACER`); hot loops pay ~zero cost when tracing is off and
results are bit-identical either way, because the tracer never touches an RNG.
"""

from repro.obs.events import EVENT_KINDS, TraceWriter, format_event
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import (
    RoundRecord,
    TraceReport,
    analyze_trace,
    format_trace_report,
    load_trace,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "TraceWriter",
    "format_event",
    "EVENT_KINDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceReport",
    "RoundRecord",
    "load_trace",
    "analyze_trace",
    "format_trace_report",
]
