"""Span tracing: nestable, context-manager timers with structured attributes.

The :class:`Tracer` is the single object threaded through the training stack
(``obs=`` keyword on every algorithm, actor, and the experiment runner).  It
provides

* **spans** — ``with obs.span("phase1_model_update", round=k):`` measures a
  nested region and, when a :class:`~repro.obs.events.TraceWriter` is attached,
  streams one ``span`` event per close.  The canonical hierarchy is
  ``run`` → ``cloud_round`` → ``phase1_model_update`` / ``phase2_weight_update``
  → ``edge_block`` → ``client_local_steps``, plus ``evaluate`` and ``data_gen``;
* **metrics** — :meth:`count` / :meth:`gauge` / :meth:`observe` delegate to a
  :class:`~repro.obs.metrics.MetricsRegistry`;
* **events** — :meth:`event` emits free-form point-in-time records.

The default throughout the repo is the :class:`NullTracer`, whose every method
is a no-op returning shared singletons — hot loops pay one method call per
instrumentation point and nothing else, and tracing never touches any RNG, so
results are bit-identical with tracing on or off.
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs.events import TraceWriter
from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]

_TIME = time.perf_counter


class Span:
    """One live measured region; created by :meth:`Tracer.span`.

    Use as a context manager.  Attributes passed at creation or added with
    :meth:`set` *before the block exits* are included in the span's trace
    event; :attr:`duration` is available after exit.
    """

    __slots__ = ("name", "attrs", "depth", "path", "start", "duration",
                 "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self._tracer = tracer
        self.depth = 0
        self.path = name
        self.start = 0.0
        self.duration = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach additional structured attributes to this span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        """Start timing and push onto the tracer's span stack."""
        stack = self._tracer._stack
        self.depth = len(stack)
        self.path = (f"{stack[-1].path}/{self.name}" if stack else self.name)
        stack.append(self)
        self.start = _TIME()
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Stop timing, pop the stack, and emit the span-close event."""
        self.duration = _TIME() - self.start
        self._tracer._close_span(self)


class _NullSpan:
    """Shared no-op span returned by :class:`NullTracer`."""

    __slots__ = ()
    duration = 0.0

    def set(self, **attrs: Any) -> None:
        """Discard attributes."""

    def __enter__(self) -> "_NullSpan":
        """No-op."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """No-op."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer that does nothing — the default ``obs=`` hook.

    Every method is a no-op; :meth:`span` returns a shared singleton span.
    ``enabled`` is ``False`` so callers can guard work (e.g. snapshot diffs)
    that would be wasted without a real tracer.
    """

    __slots__ = ()
    enabled = False
    #: No invariant monitor on the null tracer (see :mod:`repro.invariants`).
    invariants = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def count(self, name: str, amount: float = 1.0) -> None:
        """Discard a counter increment."""

    def gauge(self, name: str, value: float) -> None:
        """Discard a gauge write."""

    def observe(self, name: str, value: float) -> None:
        """Discard a histogram sample."""

    def event(self, kind: str, **fields: Any) -> None:
        """Discard a point-in-time event."""

    def heartbeat(self, **fields: Any) -> None:
        """Discard a progress heartbeat."""

    def snapshot(self) -> dict:
        """Empty metrics snapshot."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def span_totals(self) -> dict:
        """Empty span accumulation."""
        return {}

    def close(self) -> None:
        """No-op."""

    def __enter__(self) -> "NullTracer":
        """No-op context manager support (mirrors :class:`Tracer`)."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """No-op."""


#: Process-wide shared no-op tracer; what ``obs=None`` resolves to.
NULL_TRACER = NullTracer()


class Tracer:
    """Live tracer: nested spans, a metrics registry, optional JSONL output.

    Parameters
    ----------
    writer:
        Optional :class:`~repro.obs.events.TraceWriter` (or a path accepted by
        its constructor) receiving the event stream.  ``None`` keeps everything
        in memory (span totals + metrics only).
    metrics:
        Registry to record into; a fresh one by default.
    meta:
        Free-form metadata written in the ``trace_start`` record.
    write_max_depth:
        When set, spans nested deeper than this are still *timed* (they appear
        in :meth:`span_totals`) but not written to the trace file — a knob to
        keep long runs' traces compact (e.g. ``3`` drops the per-client
        ``client_local_steps`` records).
    heartbeat_every:
        Throttle for :meth:`heartbeat`: write every N-th heartbeat record
        (1 = all of them).  Long million-round runs tail comfortably with a
        coarser cadence.
    track_memory:
        Opt into a :class:`~repro.obs.metrics.PeakMemoryTracker` (tracemalloc)
        exposed as :attr:`mem_tracker`; the run loop then publishes a
        ``mem_peak_bytes`` gauge once per round.  Off by default because
        tracemalloc instruments every allocation (measurable slowdown).
    invariants:
        Optional :class:`~repro.invariants.InvariantMonitor` (or ``True`` for
        one with the default checks).  The run loop consults this attribute
        once per round and, when set, verifies runtime invariants (finite
        losses, simplex weights, ledger balance) against the live algorithm
        state — pure reads, bit-identical on or off.  Violations land as
        ``invariant`` trace events and in the monitor's ``violations`` list.
    """

    enabled = True

    #: Peak-memory probe; None unless constructed with ``track_memory=True``.
    mem_tracker = None

    #: Invariant monitor; None unless constructed with ``invariants=``.
    invariants = None

    def __init__(self, writer: TraceWriter | str | None = None, *,
                 metrics: MetricsRegistry | None = None,
                 meta: dict | None = None,
                 write_max_depth: int | None = None,
                 heartbeat_every: int = 1,
                 track_memory: bool = False,
                 invariants=None) -> None:
        if writer is not None and not isinstance(writer, TraceWriter):
            writer = TraceWriter(writer)
        if heartbeat_every < 1:
            raise ValueError(
                f"heartbeat_every must be >= 1, got {heartbeat_every}")
        self.writer = writer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._stack: list[Span] = []
        self._totals: dict[str, list] = {}  # name -> [count, total_seconds]
        self._t0 = _TIME()
        self._write_max_depth = write_max_depth
        self._heartbeat_every = int(heartbeat_every)
        self._heartbeats_seen = 0
        self._closed = False
        if track_memory:
            from repro.obs.metrics import PeakMemoryTracker

            self.mem_tracker = PeakMemoryTracker()
        if invariants is not None and invariants is not False:
            # Lazy import: repro.invariants is a leaf consumer of obs.
            from repro.invariants import InvariantMonitor

            self.invariants = (InvariantMonitor() if invariants is True
                               else invariants)
        if self.writer is not None:
            self.writer.write({"ev": "trace_start", "t": 0.0,
                               "meta": dict(meta or {})})

    # ----------------------------------------------------------------- spans
    def span(self, name: str, **attrs: Any) -> Span:
        """Open a new span named ``name`` carrying ``attrs``."""
        return Span(self, name, attrs)

    def _close_span(self, span: Span) -> None:
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - misuse guard (overlapping span exits)
            try:
                stack.remove(span)
            except ValueError:
                pass
        slot = self._totals.get(span.name)
        if slot is None:
            self._totals[span.name] = [1, span.duration]
        else:
            slot[0] += 1
            slot[1] += span.duration
        if self.writer is not None and (self._write_max_depth is None
                                        or span.depth <= self._write_max_depth):
            self.writer.write({
                "ev": "span", "t": span.start - self._t0, "name": span.name,
                "path": span.path, "depth": span.depth, "dur_s": span.duration,
                "attrs": span.attrs,
            })

    def span_totals(self) -> dict:
        """Accumulated wall-clock per span name: ``{name: {count, total_s}}``."""
        return {name: {"count": c, "total_s": t}
                for name, (c, t) in self._totals.items()}

    # --------------------------------------------------------------- metrics
    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        self.metrics.histogram(name).observe(value)

    def snapshot(self) -> dict:
        """The metrics registry's current snapshot."""
        return self.metrics.snapshot()

    # ---------------------------------------------------------------- events
    def event(self, kind: str, **fields: Any) -> None:
        """Write a point-in-time ``log`` event (no-op without a writer)."""
        if self.writer is not None:
            self.writer.write({"ev": "log", "t": _TIME() - self._t0,
                               "kind": kind, "fields": fields})

    def heartbeat(self, **fields: Any) -> None:
        """Write a throttled ``heartbeat`` progress record.

        Every ``heartbeat_every``-th call produces one ``log`` event of kind
        ``heartbeat`` carrying ``fields`` plus the current gauge values —
        the live progress channel ``trace-report --follow`` tails.  No-op
        without a writer (heartbeats are a file-tailing feature).
        """
        if self.writer is None:
            return
        seen = self._heartbeats_seen
        self._heartbeats_seen = seen + 1
        if seen % self._heartbeat_every:
            return
        gauges = self.metrics.gauge_values()
        if gauges:
            fields = {**fields, "gauges": gauges}
        self.writer.write({"ev": "log", "t": _TIME() - self._t0,
                           "kind": "heartbeat", "fields": fields})

    # ----------------------------------------------------------------- close
    def close(self) -> None:
        """Emit the final ``metrics`` and ``trace_end`` records; close the file.

        Idempotent; also invoked by the context-manager protocol.
        """
        if self._closed:
            return
        self._closed = True
        if self.mem_tracker is not None:
            # Final peak lands in the trace's closing metrics record even if
            # the run loop never sampled it (e.g. zero completed rounds).
            self.metrics.gauge("mem_peak_bytes").set(
                float(self.mem_tracker.peak_bytes()))
            self.mem_tracker.close()
        if self.writer is not None:
            t = _TIME() - self._t0
            self.writer.write({"ev": "metrics", "t": t,
                               "data": self.metrics.snapshot()})
            self.writer.write({"ev": "trace_end", "t": t,
                               "span_totals": self.span_totals()})
            self.writer.close()

    def __enter__(self) -> "Tracer":
        """Context-manager support: ``with Tracer(path) as obs: ...``."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Close the trace on block exit."""
        self.close()
