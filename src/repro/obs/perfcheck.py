"""Tracked perf trajectory: normalized bench files and regression gating.

The benchmarks (``benchmarks/bench_*.py``) distil each run into a small set
of *normalized metrics* — counters, traffic bytes, backend speedup ratios,
deterministic simulated seconds — and write them as ``BENCH_<name>.json``
(via :func:`write_bench`, wired through the ``bench_trajectory`` fixture).
A baseline copy of each file is committed at the repo root; CI re-runs the
benches and ``python -m repro perf-check`` compares current against baseline
with **per-kind tolerances**:

========  ============================================================
kind      rule
========  ============================================================
counter   exact integer match (work performed must not drift)
bytes     exact match (wire traffic is deterministic)
exact     relative error ≤ 1e-9 (deterministic floats: sim seconds,
          accuracies — machine-independent by construction)
ratio     one-sided: current ≥ (1 − tol) × baseline, tol 0.35 by
          default (backend speedups are noisy; only collapses fail,
          improvements always pass)
seconds   informational only — wall-clock is machine-dependent and
          never gates
========  ============================================================

A metric present in the baseline but missing from the current run fails
(coverage regressed); a new current metric is reported but passes (commit an
updated baseline to start tracking it).  ``perf-check --update`` promotes
the current files to baselines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

__all__ = ["MetricCheck", "PerfCheckResult", "KINDS", "DEFAULT_RATIO_TOL",
           "normalize_metrics", "write_bench", "load_bench", "compare_bench",
           "format_perfcheck"]

#: Recognized metric kinds (see the module docstring for the gating rules).
KINDS = ("counter", "bytes", "exact", "ratio", "seconds")

#: Default one-sided tolerance for ``ratio`` metrics (35% slack).
DEFAULT_RATIO_TOL = 0.35

#: Relative tolerance for ``exact`` (deterministic float) metrics.
EXACT_REL_TOL = 1e-9

_SCHEMA = 1


@dataclass(frozen=True)
class MetricCheck:
    """Outcome of comparing one metric against its baseline."""

    name: str
    kind: str
    baseline: float | None
    current: float | None
    status: str          # "ok" | "fail" | "info" | "missing" | "new"
    detail: str = ""

    @property
    def gating(self) -> bool:
        """Does this row affect the pass/fail verdict?"""
        return self.status in ("fail", "missing")


@dataclass(frozen=True)
class PerfCheckResult:
    """All per-metric outcomes for one bench file pair."""

    bench: str
    checks: tuple[MetricCheck, ...] = ()

    @property
    def ok(self) -> bool:
        """True when no gating check failed."""
        return not any(c.gating for c in self.checks)

    @property
    def failures(self) -> tuple[MetricCheck, ...]:
        """The gating rows."""
        return tuple(c for c in self.checks if c.gating)


def normalize_metrics(metrics: Mapping[str, Any]) -> dict:
    """Coerce ``{name: value}`` / ``{name: {value, kind}}`` into file form.

    Bare values default to kind ``"exact"``; unknown kinds raise so typos in
    a bench don't silently change the gating rule.
    """
    out: dict[str, dict] = {}
    for name, spec in metrics.items():
        if isinstance(spec, Mapping):
            kind = str(spec.get("kind", "exact"))
            value = spec["value"]
        else:
            kind, value = "exact", spec
        if kind not in KINDS:
            raise ValueError(
                f"metric {name!r}: unknown kind {kind!r} (one of {KINDS})")
        out[name] = {"value": float(value), "kind": kind}
    return out


def write_bench(path: str | Path, bench: str, metrics: Mapping[str, Any],
                *, context: Mapping[str, Any] | None = None) -> dict:
    """Write a normalized ``BENCH_<name>.json`` document; return it."""
    doc = {
        "bench": bench,
        "schema": _SCHEMA,
        "metrics": normalize_metrics(metrics),
        "context": dict(context or {}),
    }
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def load_bench(path: str | Path) -> dict:
    """Load and minimally validate a bench document."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or "metrics" not in doc:
        raise ValueError(f"{path}: not a bench document (no 'metrics' key)")
    doc["metrics"] = normalize_metrics(doc["metrics"])
    return doc


def _check_one(name: str, kind: str, base: float, cur: float,
               ratio_tol: float) -> MetricCheck:
    if kind == "seconds":
        return MetricCheck(name, kind, base, cur, "info",
                           "wall-clock; informational only")
    if kind in ("counter", "bytes"):
        if cur == base:
            return MetricCheck(name, kind, base, cur, "ok")
        return MetricCheck(name, kind, base, cur, "fail",
                           f"must match exactly; drift {cur - base:+g}")
    if kind == "exact":
        denom = max(abs(base), abs(cur), 1.0)
        rel = abs(cur - base) / denom
        if rel <= EXACT_REL_TOL:
            return MetricCheck(name, kind, base, cur, "ok")
        return MetricCheck(name, kind, base, cur, "fail",
                           f"relative error {rel:.2e} > {EXACT_REL_TOL:g}")
    # ratio: one-sided lower bound; higher is always fine.
    floor = (1.0 - ratio_tol) * base
    if cur >= floor:
        return MetricCheck(name, kind, base, cur, "ok")
    return MetricCheck(name, kind, base, cur, "fail",
                       f"below {floor:.3f} (= (1-{ratio_tol:g}) x baseline)")


def compare_bench(baseline: Mapping[str, Any], current: Mapping[str, Any], *,
                  ratio_tol: float = DEFAULT_RATIO_TOL) -> PerfCheckResult:
    """Compare two bench documents metric by metric."""
    base_m = normalize_metrics(baseline.get("metrics", {}))
    cur_m = normalize_metrics(current.get("metrics", {}))
    checks: list[MetricCheck] = []
    for name in sorted(set(base_m) | set(cur_m)):
        b, c = base_m.get(name), cur_m.get(name)
        if c is None:
            checks.append(MetricCheck(name, b["kind"], b["value"], None,
                                      "missing",
                                      "present in baseline, absent now"))
            continue
        if b is None:
            checks.append(MetricCheck(name, c["kind"], None, c["value"],
                                      "new", "not in baseline yet; run "
                                      "perf-check --update to track it"))
            continue
        kind = b["kind"]
        if c["kind"] != kind:
            checks.append(MetricCheck(name, kind, b["value"], c["value"],
                                      "fail", f"kind changed "
                                      f"{kind!r} -> {c['kind']!r}"))
            continue
        checks.append(_check_one(name, kind, b["value"], c["value"],
                                 ratio_tol))
    return PerfCheckResult(
        bench=str(baseline.get("bench", current.get("bench", "?"))),
        checks=tuple(checks))


_STATUS_MARK = {"ok": "ok  ", "fail": "FAIL", "info": "info",
                "missing": "MISS", "new": "new "}


def format_perfcheck(result: PerfCheckResult) -> str:
    """Human-readable per-metric table with the final verdict."""
    lines = [f"perf-check: bench {result.bench!r} — "
             + ("PASS" if result.ok else "FAIL")]
    for c in result.checks:
        base = "-" if c.baseline is None else f"{c.baseline:g}"
        cur = "-" if c.current is None else f"{c.current:g}"
        line = (f"  [{_STATUS_MARK[c.status]}] {c.name:<28s} "
                f"{c.kind:<8s} base={base:<14s} now={cur:<14s}")
        if c.detail:
            line += f" {c.detail}"
        lines.append(line)
    return "\n".join(lines)
