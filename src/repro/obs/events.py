"""Event schema and JSONL trace writer of the observability layer.

Every record a :class:`~repro.obs.tracer.Tracer` emits is one JSON object per
line ("JSONL"), self-describing via its ``ev`` field.  The schema, stable across
the repo (the offline analyzer in :mod:`repro.obs.report` and any external
tooling parse exactly these shapes):

``trace_start``
    ``{"ev": "trace_start", "t": 0.0, "meta": {...}}`` — first record of a
    trace; ``meta`` carries free-form run metadata supplied by the caller.
``span``
    ``{"ev": "span", "t": <float>, "name": <str>, "path": <str>,
    "depth": <int>, "dur_s": <float>, "attrs": {...}}`` — one *closed* span.
    ``t`` is the span's start offset in seconds from trace start, ``path`` the
    ``/``-joined names of the enclosing spans (e.g.
    ``"run/cloud_round/phase1_model_update"``), ``depth`` the nesting level
    (0 for a root span), and ``attrs`` its structured attributes (round index,
    edge id, communication deltas, …).  On traced runs with a live
    :class:`~repro.simtime.SimTimer`, ``cloud_round`` spans also carry
    ``sim_s`` (the round's simulated makespan) and ``sim_tree`` (the recorded
    dependency tree :mod:`repro.obs.critical_path` replays).  Spans are
    written at *close* time, so children precede their parents in the file.
``log``
    ``{"ev": "log", "t": <float>, "kind": <str>, "fields": {...}}`` — a
    point-in-time progress event (the schema the
    :class:`~repro.utils.logging.RunLogger` events are routed through).
    Kind ``"heartbeat"`` is the live progress channel written once per cloud
    round by :meth:`~repro.obs.tracer.Tracer.heartbeat` (throttled by its
    ``heartbeat_every``): ``fields`` carries ``algorithm``, ``round``,
    ``rounds_completed``, ``sim_time_s`` (when a cost model is installed),
    the latest ``worst_accuracy`` / ``average_accuracy``, and a ``gauges``
    sub-dict of current gauge values — what ``trace-report --follow`` tails.
``metrics``
    ``{"ev": "metrics", "t": <float>, "data": {"counters": {...},
    "gauges": {...}, "histograms": {...}}}`` — a full
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, emitted on
    ``Tracer.close()``.
``trace_end``
    ``{"ev": "trace_end", "t": <float>, "span_totals": {name:
    {"count": <int>, "total_s": <float>}}}`` — last record; accumulated
    wall-clock per span name.

All values are JSON-native; NumPy scalars and small arrays are coerced on
write.  Timestamps are ``time.perf_counter`` offsets (monotonic, not
wall-clock-of-day), which is what per-phase attribution needs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, IO

__all__ = ["TraceWriter", "format_event", "json_default", "EVENT_KINDS"]

#: The record types of the trace schema, in the order they typically appear.
EVENT_KINDS = ("trace_start", "span", "log", "metrics", "trace_end")


def json_default(obj: Any) -> Any:
    """Coerce non-JSON-native values (NumPy scalars/arrays, tuples) on encode."""
    if hasattr(obj, "item") and not hasattr(obj, "__len__"):
        return obj.item()  # NumPy scalar
    if hasattr(obj, "tolist"):
        return obj.tolist()  # NumPy array
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"cannot serialize {type(obj).__name__} into a trace event")


class TraceWriter:
    """Append-only JSONL sink for trace events.

    Parameters
    ----------
    target:
        File path (opened for writing, parents created) or an open text
        file-like object (left open on :meth:`close` when supplied by the
        caller).
    flush_every:
        Flush the underlying stream every ``flush_every`` records (1 = always;
        larger values amortize syscalls for hot traces).
    """

    def __init__(self, target: str | Path | IO[str], *, flush_every: int = 64,
                 ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self._flush_every = int(flush_every)
        self._pending = 0
        self._records = 0
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._fh: IO[str] = path.open("w")
            self._owns_fh = True
            self.path: Path | None = path
        else:
            self._fh = target
            self._owns_fh = False
            self.path = None

    @property
    def records_written(self) -> int:
        """Number of events written so far."""
        return self._records

    def write(self, event: dict) -> None:
        """Serialize ``event`` as one JSON line."""
        self._fh.write(json.dumps(event, default=json_default,
                                  separators=(",", ":")))
        self._fh.write("\n")
        self._records += 1
        self._pending += 1
        if self._pending >= self._flush_every:
            self._fh.flush()
            self._pending = 0

    def close(self) -> None:
        """Flush and (when this writer opened the file) close the stream."""
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()


def format_event(event: dict, *, elapsed: float | None = None) -> str:
    """Render a progress event as the canonical one-line ``kind: k=v …`` form.

    Shared by :class:`~repro.utils.logging.RunLogger` (human-readable stream)
    and trace tooling, so both surfaces agree on field formatting.
    """
    kind = event.get("event", "info")
    fields = " ".join(f"{k}={_fmt(v)}" for k, v in event.items() if k != "event")
    prefix = f"[{elapsed:9.2f}s] " if elapsed is not None else ""
    return f"{prefix}{kind}: {fields}"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
