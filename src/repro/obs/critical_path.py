"""Critical-path analysis of recorded simulated-time dependency trees.

A round's makespan under the virtual clock (:mod:`repro.simtime`) is the
longest chain through its client→edge→cloud dependency graph: serial scopes
chain their children, ``parallel()`` barriers wait for their slowest branch.
When a :class:`~repro.simtime.SimTimer` records (``record=True``, flipped
automatically by traced runs), every ``cloud_round`` span carries the round's
timing tree in its ``sim_tree`` attribute; this module replays those trees
and answers *why the clock advanced*:

* the **critical chain** of each round — the sequence of ``compute`` /
  ``transfer`` / ``probe`` / ``wait`` leaves whose durations sum exactly to
  the round's makespan;
* **per-entity blame** — simulated seconds of the chain attributed to the
  participant that was waited on (the innermost scope label, ``"edge:3"`` /
  ``"client:12"``, falling back to the leaf's charged entity), aggregated
  per round and across the run;
* **kind@link attribution** — chain seconds by action kind and link
  (``transfer@edge_cloud``, ``compute``, ``wait``), separating bandwidth
  from straggler problems;
* the **parallelism efficiency** — total simulated work ÷ (makespan ×
  concurrency slots).  1.0 means the schedule kept every slot busy; low
  values quantify barrier waste, i.e. the headroom a semi-asynchronous
  schedule can reclaim.

``trace-report`` appends this analysis to its output when a trace contains
recorded trees; ``trace-report --json`` embeds it as structured data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

__all__ = ["ChainStep", "RoundCriticalPath", "CriticalPathReport",
           "analyze_round_tree", "analyze_critical_paths",
           "format_critical_path"]

#: Interior (scope) node kinds of a timing tree; everything else is a leaf.
SCOPE_KINDS = frozenset({"round", "parallel", "branch", "measure", "scope"})


@dataclass(frozen=True)
class ChainStep:
    """One leaf action on a round's critical chain."""

    kind: str                 # compute | transfer | probe | wait
    dur_s: float
    blame: str                # participant charged for this step
    entity: Any = None
    link: str | None = None

    @property
    def attribution(self) -> str:
        """``kind@link`` bucket of this step (kind alone without a link)."""
        return f"{self.kind}@{self.link}" if self.link else self.kind


@dataclass(frozen=True)
class RoundCriticalPath:
    """The critical chain of one recorded round."""

    round_index: int
    makespan_s: float
    work_s: float             # sum of every leaf duration in the tree
    width: int                # concurrency slots the schedule could use
    chain: tuple[ChainStep, ...]
    blame: Mapping[str, float]
    by_kind: Mapping[str, float]

    @property
    def chain_s(self) -> float:
        """Duration of the critical chain (= makespan, modulo rounding)."""
        return sum(s.dur_s for s in self.chain)

    @property
    def efficiency(self) -> float:
        """Work ÷ (makespan × width): 1.0 = perfectly parallel schedule."""
        denom = self.makespan_s * self.width
        return self.work_s / denom if denom > 0 else 1.0

    @property
    def top_blame(self) -> str | None:
        """The participant the round waited on longest (None if idle)."""
        if not self.blame:
            return None
        return max(self.blame, key=lambda k: (self.blame[k], k))


@dataclass(frozen=True)
class CriticalPathReport:
    """Aggregated critical-path analysis over a run's recorded rounds."""

    rounds: tuple[RoundCriticalPath, ...]
    makespan_s: float
    work_s: float
    blame: Mapping[str, float]
    by_kind: Mapping[str, float]

    @property
    def efficiency(self) -> float:
        """Run-level parallelism efficiency (work ÷ Σ makespan·width)."""
        denom = sum(r.makespan_s * r.width for r in self.rounds)
        return self.work_s / denom if denom > 0 else 1.0

    def as_dict(self) -> dict:
        """JSON-ready summary (per-round chains trimmed to blame handles)."""
        return {
            "rounds": [
                {
                    "round": r.round_index,
                    "makespan_s": r.makespan_s,
                    "work_s": r.work_s,
                    "width": r.width,
                    "efficiency": r.efficiency,
                    "top_blame": r.top_blame,
                    "chain": [
                        {"kind": s.kind, "dur_s": s.dur_s, "blame": s.blame,
                         **({"link": s.link} if s.link else {})}
                        for s in r.chain
                    ],
                    "blame": dict(r.blame),
                }
                for r in self.rounds
            ],
            "makespan_s": self.makespan_s,
            "work_s": self.work_s,
            "efficiency": self.efficiency,
            "blame": dict(self.blame),
            "by_kind": dict(self.by_kind),
        }


def _is_scope(node: Mapping[str, Any]) -> bool:
    return str(node.get("kind", "")) in SCOPE_KINDS


def _walk_chain(node: Mapping[str, Any], label: str | None,
                out: list[ChainStep]) -> None:
    """Collect the critical chain's leaves under ``node`` into ``out``."""
    own = node.get("label")
    if own is not None:
        label = str(own)
    if _is_scope(node):
        children = node.get("children") or ()
        if not children:
            return
        if node.get("kind") == "parallel":
            # The barrier waits for the slowest branch only.
            best = max(children, key=lambda c: float(c.get("dur_s", 0.0)))
            _walk_chain(best, label, out)
        else:
            for child in children:
                _walk_chain(child, label, out)
        return
    entity = node.get("entity")
    if label is None:
        label = str(entity) if entity is not None else str(
            node.get("kind", "?"))
    link = node.get("link")
    out.append(ChainStep(kind=str(node.get("kind", "?")),
                         dur_s=float(node.get("dur_s", 0.0)),
                         blame=label, entity=entity,
                         link=str(link) if link is not None else None))


def _work(node: Mapping[str, Any]) -> float:
    """Total simulated work: every leaf duration in the tree."""
    if _is_scope(node):
        return sum(_work(c) for c in node.get("children") or ())
    return float(node.get("dur_s", 0.0))


def _width(node: Mapping[str, Any]) -> int:
    """Concurrency slots: parallel scopes add branches, serial ones don't."""
    children = node.get("children") or ()
    if not _is_scope(node) or not children:
        return 1
    widths = [_width(c) for c in children]
    if node.get("kind") == "parallel":
        return sum(widths)
    return max(widths)


def analyze_round_tree(tree: Mapping[str, Any]) -> RoundCriticalPath:
    """Replay one recorded round tree into its critical-path summary."""
    chain: list[ChainStep] = []
    _walk_chain(tree, None, chain)
    blame: dict[str, float] = {}
    by_kind: dict[str, float] = {}
    for step in chain:
        blame[step.blame] = blame.get(step.blame, 0.0) + step.dur_s
        key = step.attribution
        by_kind[key] = by_kind.get(key, 0.0) + step.dur_s
    return RoundCriticalPath(
        round_index=int(tree.get("round", -1)),
        makespan_s=float(tree.get("dur_s", 0.0)),
        work_s=_work(tree),
        width=_width(tree),
        chain=tuple(chain),
        blame=blame,
        by_kind=by_kind,
    )


def analyze_critical_paths(trees: Iterable[Mapping[str, Any]],
                           ) -> CriticalPathReport:
    """Analyze every recorded round tree and aggregate blame across them."""
    rounds = tuple(analyze_round_tree(t) for t in trees)
    blame: dict[str, float] = {}
    by_kind: dict[str, float] = {}
    for r in rounds:
        for k, v in r.blame.items():
            blame[k] = blame.get(k, 0.0) + v
        for k, v in r.by_kind.items():
            by_kind[k] = by_kind.get(k, 0.0) + v
    return CriticalPathReport(
        rounds=rounds,
        makespan_s=sum(r.makespan_s for r in rounds),
        work_s=sum(r.work_s for r in rounds),
        blame=blame,
        by_kind=by_kind,
    )


def format_critical_path(report: CriticalPathReport, *, top: int = 8,
                         timeline: int = 5) -> str:
    """Human-readable critical-path section (for ``trace-report``).

    Parameters
    ----------
    top:
        Rows shown in the blame and kind@link tables.
    timeline:
        Per-round lines from the start and end of the run (0 hides them).
    """
    lines: list[str] = []
    n = len(report.rounds)
    lines.append(f"critical path ({n} recorded rounds):")
    lines.append(f"  total makespan        : {report.makespan_s:.3f} s "
                 f"(simulated)")
    lines.append(f"  total work            : {report.work_s:.3f} s across all "
                 f"participants")
    lines.append(f"  parallelism efficiency: {report.efficiency:.1%} "
                 f"(work / makespan / slots)")
    if report.blame:
        lines.append("  blame (chain seconds waited on each participant):")
        ordered = sorted(report.blame.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, s in ordered[:top]:
            share = s / report.makespan_s if report.makespan_s > 0 else 0.0
            lines.append(f"    {name:<22s} {s:10.3f} s  {share:6.1%}")
        if len(ordered) > top:
            lines.append(f"    … {len(ordered) - top} participants elided …")
    if report.by_kind:
        lines.append("  chain composition (kind@link):")
        for key, s in sorted(report.by_kind.items(),
                             key=lambda kv: (-kv[1], kv[0]))[:top]:
            share = s / report.makespan_s if report.makespan_s > 0 else 0.0
            lines.append(f"    {key:<22s} {s:10.3f} s  {share:6.1%}")
    if timeline > 0 and report.rounds:
        lines.append("  per-round longest chain:")
        shown = list(report.rounds)
        if len(shown) > 2 * timeline:
            head, tail = shown[:timeline], shown[-timeline:]
            gap = len(shown) - 2 * timeline
        else:
            head, tail, gap = shown, [], 0
        for r in head:
            lines.append(_round_line(r))
        if gap:
            lines.append(f"    … {gap} rounds elided …")
            for r in tail:
                lines.append(_round_line(r))
    return "\n".join(lines)


def _round_line(r: RoundCriticalPath) -> str:
    blame = r.top_blame or "-"
    return (f"    round {r.round_index:>5d}  {r.makespan_s * 1e3:9.2f} sim-ms"
            f"  x{r.width:<3d} slots  eff {r.efficiency:6.1%}  "
            f"{len(r.chain):3d} steps  waits on {blame}")
