"""Offline trace analysis: reconstruct a run from its JSONL trace.

``python -m repro trace-report run.trace.jsonl`` (or
:func:`analyze_trace` / :func:`format_trace_report` programmatically) replays a
trace written by :class:`~repro.obs.tracer.Tracer` and reports

* the per-phase wall-clock breakdown (``phase1_model_update``,
  ``phase2_weight_update``, ``evaluate``, ``data_gen``) and what fraction of
  the measured ``run`` spans those phases cover,
* communication totals replayed from the per-round deltas and the run-final
  snapshot the instrumented :class:`~repro.core.base.FederatedAlgorithm`
  attaches to its spans — these must match the live
  :class:`~repro.topology.comm.CommSnapshot` of the run,
* the round timeline (duration and traffic of each cloud round),
* the fault ledger replayed from ``fault`` events written by
  :class:`~repro.faults.FaultInjector` — injected failures versus the
  recoveries the run survived, in total and per round,
* the byzantine ledger replayed from ``attack``/``defense`` events — uploads
  tampered by the :class:`~repro.defense.AttackPlan` versus the rejections
  and clips the installed :class:`~repro.defense.DefensePolicy` took,
* the membership ledger replayed from ``membership`` events written by
  :class:`~repro.membership.MembershipManager` — client arrivals and
  departures, edge crash/recover episodes, re-homings and partition heals,
  with a joined/left balance check against the population delta,
* the invariant ledger replayed from ``invariant`` events written by an
  attached :class:`~repro.invariants.InvariantMonitor` — which runtime
  invariants were violated, when, and why,
* the resilience ledger replayed from the crash-recovery machinery's events —
  supervised-executor retries and pool respawns (``exec_retry`` /
  ``worker_respawn``), checkpoint generation fallbacks
  (``checkpoint_fallback``), detected shard corruption
  (``shard_corrupt_detected``), and injected ``chaos`` kill-points — and
* the final metrics snapshot (counters / gauges / histograms).
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

__all__ = ["TraceReport", "RoundRecord", "load_trace", "analyze_trace",
           "format_trace_report", "follow_trace", "PHASE_SPANS"]

#: Span names treated as "phases" in the breakdown, in display order.
PHASE_SPANS = ("data_gen", "phase1_model_update", "phase2_weight_update",
               "evaluate")

#: Phase spans nested inside ``run`` (data_gen happens outside algorithm runs).
_RUN_PHASES = ("phase1_model_update", "phase2_weight_update", "evaluate")

_BYTES_PER_FLOAT = 8


@dataclass(frozen=True)
class RoundRecord:
    """One ``cloud_round`` span replayed from a trace."""

    algorithm: str
    round_index: int
    start_s: float
    duration_s: float
    floats: float          # payload floats moved during the round (all links)
    cycles: int            # sync cycles completed during the round
    sim_s: float = 0.0     # simulated round makespan (0 without a cost model)

    @property
    def bytes(self) -> float:
        """Wire bytes of the round (floats are float64-equivalent units)."""
        return self.floats * _BYTES_PER_FLOAT


@dataclass(frozen=True)
class TraceReport:
    """Everything :func:`analyze_trace` reconstructs from one trace file."""

    events: int
    span_totals: Mapping[str, Mapping[str, float]]
    run_total_s: float
    phase_times: Mapping[str, float]
    phase_coverage: float          # (phase1+phase2+evaluate) / run wall-clock
    rounds: tuple[RoundRecord, ...]
    comm_cycles: Mapping[str, int]
    comm_messages: Mapping[str, int]
    comm_floats: Mapping[str, float]
    replay_consistent: bool        # per-round deltas sum to the final snapshot
    sim_time_s: float = 0.0        # simulated seconds across the trace's runs
    metrics: Mapping[str, Any] = field(default_factory=dict)
    meta: Mapping[str, Any] = field(default_factory=dict)
    fault_totals: Mapping[str, int] = field(default_factory=dict)
    faults_by_round: Mapping[int, Mapping[str, int]] = field(
        default_factory=dict)
    attack_totals: Mapping[str, int] = field(default_factory=dict)
    defense_totals: Mapping[str, int] = field(default_factory=dict)
    byzantine_by_round: Mapping[int, Mapping[str, int]] = field(
        default_factory=dict)
    membership_totals: Mapping[str, int] = field(default_factory=dict)
    membership_by_round: Mapping[int, Mapping[str, int]] = field(
        default_factory=dict)
    #: Population before round 0 (from the ``population`` ledger entry; -1
    #: when the trace has no membership events).
    membership_initial: int = -1
    #: Population after the last membership transition (-1 when absent).
    membership_final: int = -1
    #: Violations per invariant check name (``invariant`` events).
    invariant_totals: Mapping[str, int] = field(default_factory=dict)
    #: Replayed violation records ``(round, check, message)``, in file order.
    invariant_records: tuple = ()
    #: Recovery machinery actions per event kind (``exec_retry``,
    #: ``worker_respawn``, ``checkpoint_fallback``, ``shard_corrupt_detected``,
    #: ``chaos``).
    resilience_totals: Mapping[str, int] = field(default_factory=dict)
    #: Recorded per-round timing trees (``sim_tree`` attrs of ``cloud_round``
    #: spans) — input of :mod:`repro.obs.critical_path`.
    sim_trees: tuple = ()
    #: Heartbeat progress records replayed from the trace, in file order.
    heartbeats: tuple = ()

    @property
    def attacks_injected(self) -> int:
        """Total tampered uploads replayed from ``attack`` events."""
        return sum(self.attack_totals.values())

    @property
    def attacks_filtered(self) -> int:
        """Total defense actions (rejections, clips) from ``defense`` events."""
        return sum(self.defense_totals.values())

    @property
    def total_bytes(self) -> float:
        """Replayed traffic volume in wire bytes."""
        return sum(self.comm_floats.values()) * _BYTES_PER_FLOAT

    @property
    def total_cycles(self) -> int:
        """Replayed sync-cycle total across links."""
        return sum(self.comm_cycles.values())

    @property
    def edge_cloud_cycles(self) -> int:
        """Replayed cycles on the cloud-facing links (the theory's measure)."""
        return sum(v for k, v in self.comm_cycles.items()
                   if k in ("edge_cloud", "client_cloud", "level_1"))

    @property
    def members_joined(self) -> int:
        """Total client arrivals replayed from the ``membership`` ledger."""
        return self.membership_totals.get("joined", 0)

    @property
    def members_left(self) -> int:
        """Total client departures replayed from the ``membership`` ledger."""
        return self.membership_totals.get("left", 0)

    @property
    def membership_net_delta(self) -> int:
        """Population change across the trace (final − initial active set).

        The ledger balances when this equals ``members_joined −
        members_left``; 0 when the trace carries no membership events.
        """
        if self.membership_initial < 0 or self.membership_final < 0:
            return 0
        return self.membership_final - self.membership_initial

    @property
    def invariant_violations(self) -> int:
        """Total invariant violations replayed from ``invariant`` events."""
        return sum(self.invariant_totals.values())

    @property
    def recovery_actions(self) -> int:
        """Total crash-recovery actions (retries, respawns, fallbacks)."""
        return sum(n for k, n in self.resilience_totals.items() if k != "chaos")

    @property
    def faults_injected(self) -> int:
        """Total injected failures (dropouts, outages, lost/corrupt messages)."""
        return sum(n for k, n in self.fault_totals.items()
                   if not _is_recovery(k))

    @property
    def faults_recovered(self) -> int:
        """Total recovery actions (retries that succeeded, fallbacks, bans)."""
        return sum(n for k, n in self.fault_totals.items() if _is_recovery(k))


def load_trace(path: str | Path, *, strict: bool = False) -> list[dict]:
    """Parse a JSONL trace file into a list of event dicts.

    A run killed mid-write (OOM, SIGKILL, full disk) leaves a truncated final
    line; by default such malformed lines are *skipped with a warning* so the
    surviving prefix still profiles and reports.  Pass ``strict=True`` to get
    the old behaviour: a :class:`ValueError` naming the offending line.
    """
    events = []
    with Path(path).open() as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{line_no}: not a JSON trace record: "
                        f"{exc}") from exc
                warnings.warn(
                    f"{path}:{line_no}: skipping malformed trace record "
                    f"(truncated write?): {exc}", stacklevel=2)
    return events


def follow_trace(path: str | Path, *, poll_s: float = 0.5,
                 timeout_s: float | None = None) -> Iterator[dict]:
    """Tail a live trace file, yielding events as the writer appends them.

    Buffers the (possibly partial) final line until its newline arrives, so a
    mid-write poll never yields a truncated record.  Stops when a
    ``trace_end`` event is seen — the writer's close marker — or, when
    ``timeout_s`` is set, after that many seconds without a new event.
    Malformed *complete* lines are skipped with a warning, as in
    :func:`load_trace`.
    """
    buf = ""
    idle_s = 0.0
    with Path(path).open() as fh:
        while True:
            chunk = fh.read()
            if chunk:
                idle_s = 0.0
                buf += chunk
                while True:
                    nl = buf.find("\n")
                    if nl < 0:
                        break
                    line, buf = buf[:nl].strip(), buf[nl + 1:]
                    if not line:
                        continue
                    try:
                        ev = json.loads(line)
                    except json.JSONDecodeError as exc:
                        warnings.warn(f"{path}: skipping malformed trace "
                                      f"record: {exc}", stacklevel=2)
                        continue
                    yield ev
                    if ev.get("ev") == "trace_end":
                        return
            else:
                if timeout_s is not None and idle_s >= timeout_s:
                    return
                time.sleep(poll_s)
                idle_s += poll_s


def _merge_numeric(into: dict, frm: Mapping, cast=float) -> None:
    for k, v in frm.items():
        into[k] = cast(into.get(k, 0)) + cast(v)


def _is_recovery(kind: str) -> bool:
    """Is this ``fault`` event kind a recovery (vs an injected failure)?

    Imported lazily: :mod:`repro.faults` depends on :mod:`repro.obs` for its
    event plumbing, so the reverse import must not happen at module load.
    """
    from repro.faults.injector import RECOVERY_KINDS
    return kind in RECOVERY_KINDS


def analyze_trace(source: str | Path | Iterable[dict]) -> TraceReport:
    """Replay ``source`` (a path or parsed event stream) into a report."""
    events = (load_trace(source) if isinstance(source, (str, Path))
              else list(source))
    span_totals: dict[str, dict] = {}
    rounds: list[RoundRecord] = []
    delta_cycles: dict[str, int] = {}
    delta_messages: dict[str, int] = {}
    delta_floats: dict[str, float] = {}
    final_cycles: dict[str, int] = {}
    final_messages: dict[str, int] = {}
    final_floats: dict[str, float] = {}
    have_final = False
    sim_total = 0.0
    sim_from_rounds = 0.0
    have_sim_final = False
    metrics: Mapping[str, Any] = {}
    meta: Mapping[str, Any] = {}
    fault_totals: dict[str, int] = {}
    faults_by_round: dict[int, dict[str, int]] = {}
    attack_totals: dict[str, int] = {}
    defense_totals: dict[str, int] = {}
    byzantine_by_round: dict[int, dict[str, int]] = {}
    membership_totals: dict[str, int] = {}
    membership_by_round: dict[int, dict[str, int]] = {}
    membership_initial = -1
    membership_final = -1
    invariant_totals: dict[str, int] = {}
    invariant_records: list[tuple] = []
    resilience_totals: dict[str, int] = {}
    resilience_kinds = ("exec_retry", "worker_respawn", "checkpoint_fallback",
                        "shard_corrupt_detected", "chaos")
    sim_trees: list = []
    heartbeats: list[dict] = []
    for ev in events:
        kind = ev.get("ev")
        if kind == "trace_start":
            meta = ev.get("meta", {})
        elif kind == "metrics":
            metrics = ev.get("data", metrics)
        elif kind == "log" and ev.get("kind") == "heartbeat":
            heartbeats.append(ev.get("fields", {}))
        elif kind == "log" and ev.get("kind") == "fault":
            fields = ev.get("fields", {})
            fault = str(fields.get("fault", "?"))
            fault_totals[fault] = fault_totals.get(fault, 0) + 1
            rnd = int(fields.get("round", -1))
            slot = faults_by_round.setdefault(
                rnd, {"injected": 0, "recovered": 0})
            recovery = fields.get("recovery")
            if recovery is None:
                recovery = _is_recovery(fault)
            slot["recovered" if recovery else "injected"] += 1
        elif kind == "log" and ev.get("kind") == "attack":
            fields = ev.get("fields", {})
            attack = str(fields.get("attack", "?"))
            attack_totals[attack] = attack_totals.get(attack, 0) + 1
            rnd = int(fields.get("round", -1))
            slot = byzantine_by_round.setdefault(
                rnd, {"attacked": 0, "filtered": 0})
            slot["attacked"] += 1
        elif kind == "log" and ev.get("kind") == "membership":
            fields = ev.get("fields", {})
            action = str(fields.get("action", "?"))
            membership_totals[action] = membership_totals.get(action, 0) + 1
            rnd = int(fields.get("round", -1))
            slot = membership_by_round.setdefault(rnd, {})
            slot[action] = slot.get(action, 0) + 1
            active = fields.get("active")
            if active is not None:
                # The opening `population` entry sets the baseline; every
                # later transition carries the post-transition head count.
                if action == "population" or membership_initial < 0:
                    membership_initial = int(active)
                membership_final = int(active)
        elif kind == "log" and ev.get("kind") == "invariant":
            fields = ev.get("fields", {})
            check = str(fields.get("check", "?"))
            invariant_totals[check] = invariant_totals.get(check, 0) + 1
            invariant_records.append((int(fields.get("round", -1)), check,
                                      str(fields.get("message", ""))))
        elif kind == "log" and ev.get("kind") in resilience_kinds:
            key = str(ev.get("kind"))
            resilience_totals[key] = resilience_totals.get(key, 0) + 1
        elif kind == "log" and ev.get("kind") == "defense":
            fields = ev.get("fields", {})
            action = str(fields.get("action", "?"))
            defense_totals[action] = defense_totals.get(action, 0) + 1
            rnd = int(fields.get("round", -1))
            slot = byzantine_by_round.setdefault(
                rnd, {"attacked": 0, "filtered": 0})
            slot["filtered"] += 1
        elif kind == "span":
            name = ev.get("name", "?")
            slot = span_totals.setdefault(name, {"count": 0, "total_s": 0.0})
            slot["count"] += 1
            slot["total_s"] += float(ev.get("dur_s", 0.0))
            attrs = ev.get("attrs", {})
            if name == "cloud_round":
                if "sim_tree" in attrs:
                    sim_trees.append(attrs["sim_tree"])
                comm = attrs.get("comm", {})
                _merge_numeric(delta_cycles, comm.get("cycles", {}), int)
                _merge_numeric(delta_messages, comm.get("messages", {}), int)
                _merge_numeric(delta_floats, comm.get("floats", {}), float)
                sim_s = float(attrs.get("sim_s", 0.0))
                sim_from_rounds += sim_s
                rounds.append(RoundRecord(
                    algorithm=str(attrs.get("algorithm", "?")),
                    round_index=int(attrs.get("round", -1)),
                    start_s=float(ev.get("t", 0.0)),
                    duration_s=float(ev.get("dur_s", 0.0)),
                    floats=float(sum(comm.get("floats", {}).values())),
                    cycles=int(sum(comm.get("cycles", {}).values())),
                    sim_s=sim_s,
                ))
            elif name == "run":
                if "comm_total" in attrs:
                    # Run-final snapshots accumulate across the trace's runs.
                    have_final = True
                    total = attrs["comm_total"]
                    _merge_numeric(final_cycles, total.get("cycles", {}), int)
                    _merge_numeric(final_messages, total.get("messages", {}),
                                   int)
                    _merge_numeric(final_floats, total.get("floats", {}),
                                   float)
                if "sim_total_s" in attrs:
                    have_sim_final = True
                    sim_total += float(attrs["sim_total_s"])
    # Prefer the exact run-final snapshots; fall back to summed round deltas.
    cycles = final_cycles if have_final else delta_cycles
    messages = final_messages if have_final else delta_messages
    floats = final_floats if have_final else delta_floats
    replay_consistent = (not have_final) or _consistent(
        delta_cycles, final_cycles) and _consistent(
        delta_floats, final_floats, rel=1e-9)
    run_total = span_totals.get("run", {}).get("total_s", 0.0)
    phase_times = {p: span_totals.get(p, {}).get("total_s", 0.0)
                   for p in PHASE_SPANS}
    in_run = sum(phase_times[p] for p in _RUN_PHASES)
    coverage = (in_run / run_total) if run_total > 0 else 0.0
    return TraceReport(
        events=len(events),
        span_totals=span_totals,
        run_total_s=run_total,
        phase_times=phase_times,
        phase_coverage=coverage,
        rounds=tuple(rounds),
        comm_cycles=dict(cycles),
        comm_messages=dict(messages),
        comm_floats=dict(floats),
        replay_consistent=replay_consistent,
        sim_time_s=sim_total if have_sim_final else sim_from_rounds,
        metrics=metrics,
        meta=meta,
        fault_totals=fault_totals,
        faults_by_round=faults_by_round,
        attack_totals=attack_totals,
        defense_totals=defense_totals,
        byzantine_by_round=byzantine_by_round,
        membership_totals=membership_totals,
        membership_by_round=membership_by_round,
        membership_initial=membership_initial,
        membership_final=membership_final,
        invariant_totals=invariant_totals,
        invariant_records=tuple(invariant_records),
        resilience_totals=resilience_totals,
        sim_trees=tuple(sim_trees),
        heartbeats=tuple(heartbeats),
    )


def _consistent(deltas: Mapping, finals: Mapping, *, rel: float = 0.0) -> bool:
    """Do summed per-round deltas agree with the run-final snapshot?

    Cycle counts must match exactly; float volumes up to ``rel`` relative
    error (per-round deltas are floating-point differences).  A trace without
    per-round records (``write_max_depth=0``) is vacuously consistent.
    """
    if not deltas:
        return True
    for key in set(deltas) | set(finals):
        a, b = float(deltas.get(key, 0)), float(finals.get(key, 0))
        if abs(a - b) > rel * max(abs(a), abs(b), 1.0):
            return False
    return True


def format_trace_report(report: TraceReport, *, timeline: int = 5) -> str:
    """Human-readable rendering of a :class:`TraceReport`.

    Parameters
    ----------
    timeline:
        Show at most this many rounds from the start and end of the timeline
        (0 hides the timeline section).
    """
    lines: list[str] = []
    algos = sorted({r.algorithm for r in report.rounds})
    lines.append(f"trace: {report.events} events, {len(report.rounds)} rounds"
                 + (f", {len(report.heartbeats)} heartbeats"
                    if report.heartbeats else "")
                 + (f", algorithms: {', '.join(algos)}" if algos else ""))
    if report.meta:
        lines.append(f"meta : {json.dumps(dict(report.meta), sort_keys=True)}")
    lines.append("")
    lines.append(f"run wall-clock        : {report.run_total_s:.3f} s "
                 f"(phases cover {report.phase_coverage:.1%})")
    if report.sim_time_s > 0.0:
        lines.append(f"simulated time        : {report.sim_time_s:.3f} s "
                     f"(virtual clock; cost-model makespan)")
    lines.append("per-phase breakdown:")
    for phase in PHASE_SPANS:
        t = report.phase_times.get(phase, 0.0)
        slot = report.span_totals.get(phase, {})
        share = t / report.run_total_s if report.run_total_s > 0 else 0.0
        lines.append(f"  {phase:<22s} {t:10.3f} s  {share:6.1%}  "
                     f"({int(slot.get('count', 0))} spans)")
    other = {n: s for n, s in report.span_totals.items()
             if n not in PHASE_SPANS + ("run", "cloud_round")}
    for name in sorted(other, key=lambda n: -other[n]["total_s"])[:4]:
        s = other[name]
        lines.append(f"  {name:<22s} {s['total_s']:10.3f} s   (nested; "
                     f"{int(s['count'])} spans)")
    lines.append("")
    lines.append("communication (replayed"
                 + ("" if report.replay_consistent
                    else "; WARNING: deltas disagree with final snapshot")
                 + "):")
    lines.append(f"  total cycles          : {report.total_cycles}")
    lines.append(f"  edge-cloud cycles     : {report.edge_cloud_cycles}")
    lines.append(f"  total traffic         : {report.total_bytes / 1e6:.3f} MB")
    for key in sorted(report.comm_floats):
        mb = report.comm_floats[key] * _BYTES_PER_FLOAT / 1e6
        msgs = report.comm_messages.get(key, 0)
        lines.append(f"    {key:<20s} {mb:10.3f} MB  ({msgs} messages)")
    if report.sim_trees:
        # Imported lazily to keep the module dependency one-way.
        from repro.obs.critical_path import (analyze_critical_paths,
                                             format_critical_path)
        lines.append("")
        lines.append(format_critical_path(
            analyze_critical_paths(report.sim_trees), timeline=timeline))
    if timeline > 0 and report.rounds:
        lines.append("")
        lines.append("round timeline:")
        shown = list(report.rounds)
        if len(shown) > 2 * timeline:
            head, tail = shown[:timeline], shown[-timeline:]
            gap = len(shown) - 2 * timeline
        else:
            head, tail, gap = shown, [], 0
        for r in head:
            lines.append(_round_line(r))
        if gap:
            lines.append(f"  … {gap} rounds elided …")
            for r in tail:
                lines.append(_round_line(r))
    if report.fault_totals:
        lines.append("")
        lines.append(f"faults: {report.faults_injected} injected, "
                     f"{report.faults_recovered} recovery actions, "
                     f"{len(report.faults_by_round)} rounds affected")
        for label, pick in (("injected", lambda k: not _is_recovery(k)),
                            ("recovery", _is_recovery)):
            for kind in sorted(k for k in report.fault_totals if pick(k)):
                lines.append(f"  {kind:<22s} {report.fault_totals[kind]:6d}  "
                             f"({label})")
        by_round = sorted(report.faults_by_round.items())
        if timeline > 0 and by_round:
            lines.append("fault timeline:")
            if len(by_round) > 2 * timeline:
                head, tail = by_round[:timeline], by_round[-timeline:]
                gap = len(by_round) - 2 * timeline
            else:
                head, tail, gap = by_round, [], 0
            for rnd, slot in head:
                lines.append(_fault_round_line(rnd, slot))
            if gap:
                lines.append(f"  … {gap} rounds elided …")
                for rnd, slot in tail:
                    lines.append(_fault_round_line(rnd, slot))
    if report.attack_totals or report.defense_totals:
        lines.append("")
        lines.append(f"byzantine: {report.attacks_injected} attacked uploads, "
                     f"{report.attacks_filtered} filtered/clipped, "
                     f"{len(report.byzantine_by_round)} rounds affected")
        for kind in sorted(report.attack_totals):
            lines.append(f"  {kind:<22s} {report.attack_totals[kind]:6d}  "
                         f"(attack)")
        for action in sorted(report.defense_totals):
            lines.append(f"  {action:<22s} {report.defense_totals[action]:6d}  "
                         f"(defense)")
        by_round = sorted(report.byzantine_by_round.items())
        if timeline > 0 and by_round:
            lines.append("byzantine timeline:")
            if len(by_round) > 2 * timeline:
                head, tail = by_round[:timeline], by_round[-timeline:]
                gap = len(by_round) - 2 * timeline
            else:
                head, tail, gap = by_round, [], 0
            for rnd, slot in head:
                lines.append(_byz_round_line(rnd, slot))
            if gap:
                lines.append(f"  … {gap} rounds elided …")
                for rnd, slot in tail:
                    lines.append(_byz_round_line(rnd, slot))
    if report.membership_totals:
        lines.append("")
        balance = report.members_joined - report.members_left
        lines.append(
            f"membership: {report.members_joined} joined, "
            f"{report.members_left} left, "
            f"{report.membership_totals.get('re-homed', 0)} re-homed, "
            f"{report.membership_totals.get('edge_crash', 0)} edge crashes, "
            f"{report.membership_totals.get('edge_recover', 0)} recoveries")
        if report.membership_initial >= 0:
            lines.append(
                f"  population            : {report.membership_initial} -> "
                f"{report.membership_final} "
                f"(net {report.membership_net_delta:+d}; ledger "
                + ("balanced" if balance == report.membership_net_delta
                   else f"IMBALANCED: joined-left={balance:+d}") + ")")
        for action in sorted(report.membership_totals):
            if action == "population":
                continue
            lines.append(f"  {action:<22s} "
                         f"{report.membership_totals[action]:6d}")
        by_round = sorted(r for r in report.membership_by_round if r >= 0)
        if timeline > 0 and by_round:
            lines.append("membership timeline:")
            if len(by_round) > 2 * timeline:
                head, tail = by_round[:timeline], by_round[-timeline:]
                gap = len(by_round) - 2 * timeline
            else:
                head, tail, gap = by_round, [], 0
            for rnd in head:
                lines.append(_membership_round_line(
                    rnd, report.membership_by_round[rnd]))
            if gap:
                lines.append(f"  … {gap} rounds elided …")
                for rnd in tail:
                    lines.append(_membership_round_line(
                        rnd, report.membership_by_round[rnd]))
    if report.invariant_totals:
        lines.append("")
        lines.append(f"invariants: {report.invariant_violations} violation(s) "
                     f"across {len(report.invariant_totals)} check(s)")
        for check in sorted(report.invariant_totals):
            lines.append(f"  {check:<22s} {report.invariant_totals[check]:6d}")
        for rnd, check, message in report.invariant_records[:2 * timeline]:
            lines.append(f"  round {rnd:>5d}  {check}: {message}")
        elided = len(report.invariant_records) - 2 * timeline
        if timeline > 0 and elided > 0:
            lines.append(f"  … {elided} violation records elided …")
    if report.resilience_totals:
        lines.append("")
        chaos_n = report.resilience_totals.get("chaos", 0)
        lines.append(f"resilience: {report.recovery_actions} recovery "
                     f"action(s)"
                     + (f", {chaos_n} injected kill-point(s)" if chaos_n
                        else ""))
        for kind in sorted(report.resilience_totals):
            lines.append(f"  {kind:<22s} {report.resilience_totals[kind]:6d}")
    counters = report.metrics.get("counters", {}) if report.metrics else {}
    gauges = report.metrics.get("gauges", {}) if report.metrics else {}
    if counters or gauges:
        lines.append("")
        lines.append("metrics:")
        for k in sorted(counters):
            lines.append(f"  {k:<22s} {counters[k]:g}")
        for k in sorted(gauges):
            lines.append(f"  {k:<22s} {gauges[k]:g}  (gauge)")
    return "\n".join(lines)


def _byz_round_line(rnd: int, slot: Mapping[str, int]) -> str:
    return (f"  round {rnd:>5d}  {slot.get('attacked', 0):4d} attacked  "
            f"{slot.get('filtered', 0):4d} filtered")


def _membership_round_line(rnd: int, slot: Mapping[str, int]) -> str:
    parts = "  ".join(f"{slot[a]} {a}" for a in sorted(slot))
    return f"  round {rnd:>5d}  {parts}"


def _fault_round_line(rnd: int, slot: Mapping[str, int]) -> str:
    return (f"  round {rnd:>5d}  {slot.get('injected', 0):4d} injected  "
            f"{slot.get('recovered', 0):4d} recovered")


def _round_line(r: RoundRecord) -> str:
    line = (f"  [{r.algorithm}] round {r.round_index:>5d}  "
            f"{r.duration_s * 1e3:8.2f} ms  {r.bytes / 1e3:10.1f} kB  "
            f"{r.cycles:4d} cycles")
    if r.sim_s > 0.0:
        line += f"  {r.sim_s * 1e3:8.2f} sim-ms"
    return line
