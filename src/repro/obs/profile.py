"""Span profiler: self/cumulative time tables, folded stacks, speedscope.

``python -m repro trace-profile run.trace.jsonl`` aggregates a JSONL trace
(written by :class:`~repro.obs.tracer.Tracer`) into profiler views:

* **wall-clock table** — per span name: count, *cumulative* time (span
  durations summed) and *self* time (duration minus time attributed to child
  spans), reconstructed from the flat span stream;
* **simulated-time table** — the same self/cumulative split over the timing
  trees recorded by :class:`~repro.simtime.SimTimer` (``compute`` /
  ``transfer`` / ``probe`` / ``wait`` leaves under ``round`` / ``parallel`` /
  ``branch`` scopes), so the virtual clock is profiled with the same
  vocabulary as the wall clock;
* **folded stacks** (``--folded wall|sim``) — one ``seg;seg;seg value`` line
  per unique stack, the input format of Brendan Gregg's ``flamegraph.pl``
  and of speedscope's "folded" importer;
* **speedscope JSON** (``--speedscope out.json``) — an evented profile per
  ``run``/root span, loadable at https://speedscope.app for an interactive
  timeline.

Tree reconstruction relies on the writer's ordering contract: spans are
emitted when they *close*, so every child record precedes its parent and a
single backward scan rebuilds the forest without timestamps.  Spans dropped
by ``write_max_depth`` only ever truncate the bottom of the tree (their time
then counts as the parent's self time), never the middle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = ["ProfileNode", "SpanProfile", "build_span_forest", "profile_trace",
           "profile_events", "folded_stacks", "speedscope_document",
           "format_profile", "write_speedscope"]


@dataclass
class ProfileNode:
    """One span replayed from the trace, re-linked to its children."""

    name: str
    path: str
    depth: int
    start_s: float
    dur_s: float
    attrs: Mapping[str, Any]
    children: list["ProfileNode"] = field(default_factory=list)

    @property
    def self_s(self) -> float:
        """Duration not covered by child spans (clamped at zero)."""
        return max(0.0, self.dur_s - sum(c.dur_s for c in self.children))


def build_span_forest(events: Iterable[dict]) -> list[ProfileNode]:
    """Re-link the flat ``span`` event stream into a forest of trees.

    Spans are written at close time, children before parents; a span of depth
    ``d`` therefore adopts the trailing pending spans deeper than ``d``.
    Multiple roots arise naturally (``data_gen`` before ``run``, several runs
    per trace, concatenated killed+resumed traces).
    """
    pending: list[ProfileNode] = []
    for ev in events:
        if ev.get("ev") != "span":
            continue
        node = ProfileNode(
            name=str(ev.get("name", "?")),
            path=str(ev.get("path", ev.get("name", "?"))),
            depth=int(ev.get("depth", 0)),
            start_s=float(ev.get("t", 0.0)),
            dur_s=float(ev.get("dur_s", 0.0)),
            attrs=ev.get("attrs", {}),
        )
        kids: list[ProfileNode] = []
        while pending and pending[-1].depth > node.depth:
            kids.append(pending.pop())
        kids.reverse()  # restore close order ≈ execution order
        node.children = kids
        pending.append(node)
    return pending


# --------------------------------------------------------------------- tables
def _wall_table(forest: list[ProfileNode]) -> dict[str, dict]:
    table: dict[str, dict] = {}
    stack = list(forest)
    while stack:
        node = stack.pop()
        slot = table.setdefault(node.name,
                                {"count": 0, "self_s": 0.0, "cum_s": 0.0})
        slot["count"] += 1
        slot["self_s"] += node.self_s
        slot["cum_s"] += node.dur_s
        stack.extend(node.children)
    return table


def _sim_key(node: Mapping[str, Any]) -> str:
    """Aggregation key of a timing-tree node: its label, else its kind."""
    label = node.get("label")
    return str(label) if label is not None else str(node.get("kind", "?"))


def _sim_table(trees: Iterable[Mapping[str, Any]]) -> dict[str, dict]:
    table: dict[str, dict] = {}
    stack = list(trees)
    while stack:
        node = stack.pop()
        children = node.get("children", ())
        dur = float(node.get("dur_s", 0.0))
        self_s = (dur if not children
                  else max(0.0, dur - sum(float(c.get("dur_s", 0.0))
                                          for c in children)))
        slot = table.setdefault(_sim_key(node),
                                {"count": 0, "self_s": 0.0, "cum_s": 0.0})
        slot["count"] += 1
        slot["self_s"] += self_s
        slot["cum_s"] += dur
        stack.extend(children)
    return table


@dataclass(frozen=True)
class SpanProfile:
    """Everything :func:`profile_trace` aggregates from one trace."""

    forest: tuple[ProfileNode, ...]
    #: Per span name: {count, self_s, cum_s} over the wall clock.
    wall: Mapping[str, Mapping[str, float]]
    #: Per timing-tree label/kind: {count, self_s, cum_s} over the sim clock.
    sim: Mapping[str, Mapping[str, float]]
    #: The recorded per-round timing trees (``sim_tree`` span attributes).
    sim_trees: tuple[Mapping[str, Any], ...]

    @property
    def wall_total_s(self) -> float:
        """Wall-clock covered by root spans."""
        return sum(n.dur_s for n in self.forest)

    @property
    def sim_total_s(self) -> float:
        """Simulated seconds covered by the recorded round trees."""
        return sum(float(t.get("dur_s", 0.0)) for t in self.sim_trees)


def profile_events(events: Iterable[dict]) -> SpanProfile:
    """Aggregate a parsed event stream into a :class:`SpanProfile`."""
    events = list(events)
    forest = build_span_forest(events)
    sim_trees = tuple(ev["attrs"]["sim_tree"] for ev in events
                      if ev.get("ev") == "span"
                      and "sim_tree" in ev.get("attrs", {}))
    return SpanProfile(
        forest=tuple(forest),
        wall=_wall_table(forest),
        sim=_sim_table(sim_trees),
        sim_trees=sim_trees,
    )


def profile_trace(source: "str | Path | Iterable[dict]") -> SpanProfile:
    """Profile ``source`` (a trace path or parsed event stream)."""
    from repro.obs.report import load_trace
    events = (load_trace(source) if isinstance(source, (str, Path))
              else source)
    return profile_events(events)


# -------------------------------------------------------------- folded stacks
def folded_stacks(profile: SpanProfile, *, clock: str = "wall",
                  ) -> list[str]:
    """Render the profile as folded stacks (``a;b;c <value>`` lines).

    ``clock="wall"`` folds the span forest with *self* wall-clock values;
    ``clock="sim"`` folds the recorded timing trees with leaf sim durations.
    Values are integer microseconds (flamegraph.pl wants integers); identical
    stacks are merged.  Lines are sorted for deterministic output.
    """
    folded: dict[str, int] = {}

    def add(stack: str, seconds: float) -> None:
        us = int(round(seconds * 1e6))
        if us > 0:
            folded[stack] = folded.get(stack, 0) + us

    if clock == "wall":
        nodes = list(profile.forest)
        while nodes:
            node = nodes.pop()
            add(node.path.replace("/", ";"), node.self_s)
            nodes.extend(node.children)
    elif clock == "sim":
        def walk(node: Mapping[str, Any], prefix: str) -> None:
            seg = _sim_seg(node)
            stack = f"{prefix};{seg}" if prefix else seg
            children = node.get("children", ())
            if not children:
                add(stack, float(node.get("dur_s", 0.0)))
                return
            for child in children:
                walk(child, stack)

        for tree in profile.sim_trees:
            walk(tree, "")
    else:
        raise ValueError(f"clock must be 'wall' or 'sim', got {clock!r}")
    return [f"{stack} {value}" for stack, value in sorted(folded.items())]


def _sim_seg(node: Mapping[str, Any]) -> str:
    """Folded-stack segment of a timing-tree node."""
    kind = str(node.get("kind", "?"))
    if kind == "round":
        return "round"
    label = node.get("label")
    if kind in ("compute", "transfer", "probe", "wait"):
        parts = [kind]
        link = node.get("link")
        if link is not None:
            parts.append(str(link))
        entity = node.get("entity")
        if entity is not None:
            parts.append(str(entity))
        if label is not None:
            parts.append(str(label))
        return ":".join(parts)
    return str(label) if label is not None else kind


# ----------------------------------------------------------------- speedscope
def speedscope_document(profile: SpanProfile, *, name: str = "trace") -> dict:
    """Build a speedscope-format document from the wall-clock span forest.

    One evented profile per root span (typically one per ``run``); open at
    https://speedscope.app or with the ``speedscope`` CLI.
    """
    frame_index: dict[str, int] = {}
    frames: list[dict] = []

    def frame(name: str) -> int:
        idx = frame_index.get(name)
        if idx is None:
            idx = frame_index[name] = len(frames)
            frames.append({"name": name})
        return idx

    profiles = []
    for i, root in enumerate(profile.forest):
        events: list[dict] = []

        def emit(node: ProfileNode, at_floor: float) -> float:
            # Clamp into monotone order: a child's recorded start may precede
            # the last emitted instant by rounding; never go backwards.
            start = max(node.start_s, at_floor)
            end = max(start, node.start_s + node.dur_s)
            events.append({"type": "O", "frame": frame(node.name),
                           "at": start})
            floor = start
            for child in sorted(node.children, key=lambda c: c.start_s):
                floor = emit(child, floor)
            end = max(end, floor)
            events.append({"type": "C", "frame": frame(node.name), "at": end})
            return end

        end = emit(root, root.start_s)
        profiles.append({
            "type": "evented",
            "name": f"{name}: {root.name} #{i}",
            "unit": "seconds",
            "startValue": root.start_s,
            "endValue": end,
            "events": events,
        })
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "shared": {"frames": frames},
        "profiles": profiles,
        "activeProfileIndex": 0,
        "exporter": "repro trace-profile",
    }


# ------------------------------------------------------------------ rendering
def format_profile(profile: SpanProfile, *, sort: str = "self",
                   limit: int = 0) -> str:
    """Human-readable self/cumulative tables (wall and, when recorded, sim).

    Parameters
    ----------
    sort:
        Order rows by ``"self"`` or ``"cum"`` time, descending.
    limit:
        Keep at most this many rows per table (0 = all).
    """
    if sort not in ("self", "cum"):
        raise ValueError(f"sort must be 'self' or 'cum', got {sort!r}")
    key = "self_s" if sort == "self" else "cum_s"
    lines: list[str] = []

    def table(title: str, rows: Mapping[str, Mapping[str, float]],
              total: float) -> None:
        lines.append(title)
        lines.append(f"  {'name':<28s} {'count':>7s} {'self':>12s} "
                     f"{'cum':>12s} {'self%':>7s}")
        ordered = sorted(rows.items(), key=lambda kv: -kv[1][key])
        if limit > 0 and len(ordered) > limit:
            dropped = len(ordered) - limit
            ordered = ordered[:limit]
        else:
            dropped = 0
        for name, slot in ordered:
            share = slot["self_s"] / total if total > 0 else 0.0
            lines.append(f"  {name:<28s} {int(slot['count']):>7d} "
                         f"{slot['self_s']:>10.4f} s {slot['cum_s']:>10.4f} s "
                         f"{share:>6.1%}")
        if dropped:
            lines.append(f"  … {dropped} rows elided …")

    lines.append(f"profile: {len(profile.forest)} root spans, "
                 f"{profile.wall_total_s:.3f} s wall"
                 + (f", {profile.sim_total_s:.3f} s simulated"
                    if profile.sim_trees else ""))
    lines.append("")
    table("wall-clock (per span name):", profile.wall, profile.wall_total_s)
    if profile.sim:
        lines.append("")
        # Self-time shares are of total *work* (sum over all concurrent
        # participants), which exceeds the makespan on parallel schedules.
        sim_work = sum(s["self_s"] for s in profile.sim.values())
        table(f"simulated time (per scope label / leaf kind; "
              f"{len(profile.sim_trees)} recorded rounds, "
              f"{sim_work:.3f} s total work):",
              profile.sim, sim_work)
    return "\n".join(lines)


def write_speedscope(profile: SpanProfile, path: "str | Path", *,
                     name: str = "trace") -> None:
    """Write the speedscope document for ``profile`` to ``path``."""
    doc = speedscope_document(profile, name=name)
    Path(path).write_text(json.dumps(doc) + "\n")
