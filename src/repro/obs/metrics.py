"""Named counters, gauges, and histograms for run telemetry.

A :class:`MetricsRegistry` is the numeric half of the observability layer
(:mod:`repro.obs`): algorithms and actors increment counters
(``sgd_steps_total``, ``edge_cloud_bytes``), set gauges (``worst_edge_loss``),
and observe histogram samples (per-round step time) through their
:class:`~repro.obs.tracer.Tracer`; the registry's :meth:`snapshot` is a plain
JSON-ready dict the :class:`~repro.metrics.history.TrainingHistory` consumers,
benchmarks, and the JSONL trace can all share.

Everything here is in-process and allocation-light — no locks, no label sets —
because the simulator is single-threaded and hot loops must not pay for
instrumentation machinery.
"""

from __future__ import annotations

import warnings
from bisect import bisect_left
from math import ceil
from typing import Dict, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "PeakMemoryTracker",
           "DEFAULT_BUCKETS", "RAW_SAMPLE_LIMIT", "DEFAULT_MAX_SERIES"]

#: Default histogram bucket upper bounds: decades from 1 µs to 1000 s, built for
#: the step/round wall-clock times this repo observes.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(10.0 ** e for e in range(-6, 4))

#: Raw samples a histogram retains verbatim; while ``count`` stays at or below
#: this, percentiles are exact (nearest-rank over the sorted samples).
RAW_SAMPLE_LIMIT = 256

#: Default cap on unique metric series a registry will register.
DEFAULT_MAX_SERIES = 4096


class Counter:
    """Monotonically increasing count (e.g. total SGD steps, bytes sent)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be nonnegative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        self.value += amount


class Gauge:
    """Last-written value (e.g. the current worst edge loss)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    Parameters
    ----------
    buckets:
        Sorted upper bounds of the finite buckets; samples above the last bound
        land in the implicit ``+inf`` bucket.  Defaults to
        :data:`DEFAULT_BUCKETS`.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max", "raw")

    def __init__(self, buckets: Sequence[float] | None = None) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted ascending")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.raw: list[float] = []  # first RAW_SAMPLE_LIMIT samples, verbatim

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.raw) < RAW_SAMPLE_LIMIT:
            self.raw.append(value)

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile ``q`` (0–100) of the observed samples.

        The rule, spelled out (small samples included): with ``n`` samples the
        reported value is the ``ceil(q/100 · n)``-th smallest sample (1-based;
        ``q=0`` maps to the minimum).  So a single sample answers every
        percentile with itself, and two samples report the smaller for
        ``q ≤ 50`` and the larger above — no interpolation between samples is
        invented.  While ``n ≤`` :data:`RAW_SAMPLE_LIMIT` every sample is
        retained and the answer is *exact*; beyond that the rank is looked up
        in the fixed buckets and the answer is the bucket's upper bound
        (clamped to the observed maximum) — a conservative estimate.  Returns
        ``None`` when empty.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        n = self.count
        if n == 0:
            return None
        rank = max(1, ceil(q / 100.0 * n))
        if n <= len(self.raw):
            return sorted(self.raw)[rank - 1]
        seen = 0
        for bound, c in zip(self.buckets, self.counts):
            seen += c
            if seen >= rank:
                return min(bound, self.max)
        return self.max

    def as_dict(self) -> dict:
        """JSON-ready summary (bucket bounds are stringified keys)."""
        out = {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": {f"{b:g}": c for b, c in zip(self.buckets, self.counts)},
        }
        out["buckets"]["+inf"] = self.counts[-1]
        return out


class MetricsRegistry:
    """Create-on-first-use registry of named metrics.

    A name may hold only one metric type; asking for the same name with a
    different type raises, which catches instrument-naming typos early.

    Parameters
    ----------
    max_series:
        Cardinality guard: cap on *unique* metric names across all three
        types.  A name that would exceed the cap is not registered; the call
        warns once per registry and returns a shared overflow sink of the
        right type, so instrumented code keeps working while memory stays
        bounded (the failure mode is an entity id leaking into metric names —
        one series per client round).  Dropped registration attempts are
        counted and surfaced as ``"overflow"`` in :meth:`snapshot`.
    """

    def __init__(self, *, max_series: int = DEFAULT_MAX_SERIES) -> None:
        if max_series < 1:
            raise ValueError(f"max_series must be >= 1, got {max_series}")
        self.max_series = int(max_series)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._overflow = 0
        self._overflow_warned = False
        self._sink_counter = Counter()
        self._sink_gauge = Gauge()
        self._sink_histogram = Histogram()

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {"counter": self._counters, "gauge": self._gauges,
                  "histogram": self._histograms}
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}")

    @property
    def series(self) -> int:
        """Unique metric names currently registered."""
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    @property
    def overflow(self) -> int:
        """Registration attempts dropped by the ``max_series`` guard."""
        return self._overflow

    def _over_cap(self, name: str) -> bool:
        if self.series < self.max_series:
            return False
        self._overflow += 1
        if not self._overflow_warned:
            self._overflow_warned = True
            warnings.warn(
                f"metrics registry hit max_series={self.max_series} "
                f"registering {name!r}; further new series go to a shared "
                f"overflow sink (is an entity id leaking into metric names?)",
                stacklevel=3)
        return True

    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter called ``name``."""
        c = self._counters.get(name)
        if c is None:
            if self._over_cap(name):
                return self._sink_counter
            self._check_unique(name, "counter")
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        """Return (creating if needed) the gauge called ``name``."""
        g = self._gauges.get(name)
        if g is None:
            if self._over_cap(name):
                return self._sink_gauge
            self._check_unique(name, "gauge")
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str,
                  buckets: Sequence[float] | None = None) -> Histogram:
        """Return (creating if needed) the histogram called ``name``."""
        h = self._histograms.get(name)
        if h is None:
            if self._over_cap(name):
                return self._sink_histogram
            self._check_unique(name, "histogram")
            h = self._histograms[name] = Histogram(buckets)
        return h

    def gauge_values(self) -> dict:
        """Current value of every gauge (the heartbeat payload)."""
        return {k: g.value for k, g in self._gauges.items()}

    def snapshot(self) -> dict:
        """Plain-dict copy of every metric: the ``metrics`` event payload."""
        snap = {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {k: h.as_dict() for k, h in self._histograms.items()},
        }
        if self._overflow:
            snap["overflow"] = self._overflow
        return snap

    def reset(self) -> None:
        """Drop every registered metric (between repetitions)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._overflow = 0
        self._overflow_warned = False


class PeakMemoryTracker:
    """Opt-in peak-memory probe backed by :mod:`tracemalloc`.

    Measures the peak of Python-level allocations (numpy buffers included)
    since :meth:`reset_peak` — the number behind the ``mem_peak_bytes`` gauge
    that the run loop publishes once per round when a
    :class:`~repro.obs.tracer.Tracer` is built with ``track_memory=True``.

    tracemalloc instruments every allocation, which costs real time (~2x on
    allocation-heavy code), so this is strictly opt-in and never touched by
    the default tracer path.  The tracker only ever *starts* tracemalloc if it
    is not already tracing, and only stops it on :meth:`close` if it was the
    one that started it, so nesting with user-level tracemalloc use is safe.
    """

    def __init__(self, start: bool = True) -> None:
        self._owns_tracing = False
        if start:
            self.start()

    def start(self) -> None:
        """Begin tracing (no-op if tracemalloc is already running)."""
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracing = True

    @property
    def tracing(self) -> bool:
        import tracemalloc

        return tracemalloc.is_tracing()

    def current_bytes(self) -> int:
        """Bytes currently allocated (0 when not tracing)."""
        import tracemalloc

        return tracemalloc.get_traced_memory()[0] if tracemalloc.is_tracing() else 0

    def peak_bytes(self) -> int:
        """Peak traced bytes since start / the last :meth:`reset_peak`."""
        import tracemalloc

        return tracemalloc.get_traced_memory()[1] if tracemalloc.is_tracing() else 0

    def reset_peak(self) -> None:
        """Reset the peak to the current allocation level."""
        import tracemalloc

        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()

    def close(self) -> None:
        """Stop tracing iff this tracker started it.  Idempotent."""
        import tracemalloc

        if self._owns_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._owns_tracing = False
