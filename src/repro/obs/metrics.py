"""Named counters, gauges, and histograms for run telemetry.

A :class:`MetricsRegistry` is the numeric half of the observability layer
(:mod:`repro.obs`): algorithms and actors increment counters
(``sgd_steps_total``, ``edge_cloud_bytes``), set gauges (``worst_edge_loss``),
and observe histogram samples (per-round step time) through their
:class:`~repro.obs.tracer.Tracer`; the registry's :meth:`snapshot` is a plain
JSON-ready dict the :class:`~repro.metrics.history.TrainingHistory` consumers,
benchmarks, and the JSONL trace can all share.

Everything here is in-process and allocation-light — no locks, no label sets —
because the simulator is single-threaded and hot loops must not pay for
instrumentation machinery.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds: decades from 1 µs to 1000 s, built for
#: the step/round wall-clock times this repo observes.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(10.0 ** e for e in range(-6, 4))


class Counter:
    """Monotonically increasing count (e.g. total SGD steps, bytes sent)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be nonnegative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        self.value += amount


class Gauge:
    """Last-written value (e.g. the current worst edge loss)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    Parameters
    ----------
    buckets:
        Sorted upper bounds of the finite buckets; samples above the last bound
        land in the implicit ``+inf`` bucket.  Defaults to
        :data:`DEFAULT_BUCKETS`.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Sequence[float] | None = None) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted ascending")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-ready summary (bucket bounds are stringified keys)."""
        out = {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {f"{b:g}": c for b, c in zip(self.buckets, self.counts)},
        }
        out["buckets"]["+inf"] = self.counts[-1]
        return out


class MetricsRegistry:
    """Create-on-first-use registry of named metrics.

    A name may hold only one metric type; asking for the same name with a
    different type raises, which catches instrument-naming typos early.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {"counter": self._counters, "gauge": self._gauges,
                  "histogram": self._histograms}
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}")

    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter called ``name``."""
        c = self._counters.get(name)
        if c is None:
            self._check_unique(name, "counter")
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        """Return (creating if needed) the gauge called ``name``."""
        g = self._gauges.get(name)
        if g is None:
            self._check_unique(name, "gauge")
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str,
                  buckets: Sequence[float] | None = None) -> Histogram:
        """Return (creating if needed) the histogram called ``name``."""
        h = self._histograms.get(name)
        if h is None:
            self._check_unique(name, "histogram")
            h = self._histograms[name] = Histogram(buckets)
        return h

    def snapshot(self) -> dict:
        """Plain-dict copy of every metric: the ``metrics`` event payload."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {k: h.as_dict() for k, h in self._histograms.items()},
        }

    def reset(self) -> None:
        """Drop every registered metric (between repetitions)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
