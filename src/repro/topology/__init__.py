"""Hierarchical network structure, communication accounting, and sampling."""

from repro.topology.comm import DIRECTIONS, LINKS, CommSnapshot, CommunicationTracker
from repro.topology.network import HierarchicalTopology
from repro.topology.sampling import (
    sample_by_weight,
    sample_checkpoint_slot,
    sample_uniform_subset,
)

__all__ = [
    "DIRECTIONS",
    "LINKS",
    "CommSnapshot",
    "CommunicationTracker",
    "HierarchicalTopology",
    "sample_by_weight",
    "sample_checkpoint_slot",
    "sample_uniform_subset",
]
