"""Communication accounting for federated algorithms.

The paper's evaluation plots accuracy against *communication rounds* and its theory
counts *edge-cloud communication complexity*.  :class:`CommunicationTracker` records
enough raw information to report both (and more):

* **events** — each call to :meth:`record` logs ``count`` messages of ``floats``
  scalars each on one *link* (``client_edge``, ``edge_cloud``, or ``client_cloud``
  for two-layer baselines) in one *direction* (``up`` toward the cloud, ``down``
  toward the clients);
* **sync cycles** — each call to :meth:`sync_cycle` marks one completed
  synchronization cycle on a link (a broadcast + collect pair).  The figures'
  default "communication rounds" is the total number of sync cycles across all
  links, the convention under which one client-server exchange of a two-layer
  method and one client-edge aggregation of a hierarchical method each cost 1.

Derived views: per-link message/float totals, bytes, edge-cloud-only cycles (the
theory's complexity measure), and immutable snapshots for time series.

**Payload-unit convention.**  The ``floats`` argument of :meth:`record` is the
*encoded payload size in float64 equivalents* (wire bytes ÷ 8), not the logical
vector length.  Full-precision messages record their dimension ``d``; compressed
uploads must record ``Compressor.payload_floats(d)`` — e.g. a 4-bit quantizer
reports ``1 + d·4/64`` for a ``d``-vector — so that ``total_bytes = floats × 8``
is the true wire volume for compressed and uncompressed runs alike.  (Downlink
broadcasts are always full precision in this repo; only uploads are compressed.)
Every instrumented call site follows this convention, and the compression tests
assert that quantized runs report proportionally fewer bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["CommunicationTracker", "CommSnapshot", "LINKS", "DIRECTIONS"]

LINKS = ("client_edge", "edge_cloud", "client_cloud")
DIRECTIONS = ("up", "down")
_BYTES_PER_FLOAT = 8


@dataclass(frozen=True)
class CommSnapshot:
    """Immutable communication totals at one instant.

    Attributes
    ----------
    cycles:
        Sync-cycle count per link.
    messages:
        Message count per (link, direction) pair, keyed ``f"{link}:{direction}"``.
    floats:
        Payload volume per (link, direction) pair, in float64-equivalent units
        (see the module docstring: compressed uploads are recorded at their
        encoded size, so ``× 8`` is wire bytes).
    """

    cycles: Dict[str, int]
    messages: Dict[str, int]
    floats: Dict[str, float]

    @property
    def total_cycles(self) -> int:
        """The default "communication rounds" of the figures."""
        return sum(self.cycles.values())

    @property
    def edge_cloud_cycles(self) -> int:
        """The theory's edge-cloud communication complexity measure.

        Two-layer baselines talk straight to the cloud, so their client-cloud
        cycles are counted here as well — both traverse the WAN backhaul.  The
        multi-layer generalization's top link (``level_1``) likewise counts.
        """
        return (self.cycles.get("edge_cloud", 0) + self.cycles.get("client_cloud", 0)
                + self.cycles.get("level_1", 0))

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    @property
    def total_floats(self) -> float:
        return sum(self.floats.values())

    @property
    def total_bytes(self) -> float:
        """True wire bytes: ``floats`` are payload units of 8 bytes each.

        Compressed uploads were recorded via ``Compressor.payload_floats``, so
        this is the *compressed* volume, not ``8 × vector length``.
        """
        return self.total_floats * _BYTES_PER_FLOAT

    @property
    def edge_cloud_bytes(self) -> float:
        """Wire bytes on the cloud-facing links (``edge_cloud_cycles``'s twin)."""
        total = 0.0
        for key, value in self.floats.items():
            link = key.split(":", 1)[0]
            if link in ("edge_cloud", "client_cloud", "level_1"):
                total += value
        return total * _BYTES_PER_FLOAT

    def diff(self, earlier: "CommSnapshot") -> "CommSnapshot":
        """The traffic performed between ``earlier`` and this snapshot.

        Used by the observability layer to attach per-round communication
        deltas to ``cloud_round`` trace spans.

        Contract: for each of the three maps, the result covers the *union*
        of both snapshots' keys and keeps exactly the entries whose delta is
        nonzero (a key present only in ``earlier`` yields its negated value,
        so ``later.diff(earlier)`` and ``earlier.diff(later)`` are exact
        negations).  Counters only ever grow during a run, so negative deltas
        signal the snapshots were passed in the wrong order — the totals of a
        correctly ordered diff are always nonnegative.
        """
        def delta(mine: Dict, theirs: Dict, zero):
            keys = set(mine) | set(theirs)
            out = {k: mine.get(k, zero) - theirs.get(k, zero) for k in keys}
            return {k: v for k, v in out.items() if v != zero}

        return CommSnapshot(cycles=delta(self.cycles, earlier.cycles, 0),
                            messages=delta(self.messages, earlier.messages, 0),
                            floats=delta(self.floats, earlier.floats, 0.0))


class CommunicationTracker:
    """Mutable accumulator of the communication performed by one algorithm run.

    Parameters
    ----------
    extra_links:
        Additional link names beyond the standard three — used by the
        multi-layer generalization, whose trees have one link type per level
        (``level_1``, ``level_2``, …).
    """

    def __init__(self, extra_links: tuple[str, ...] = ()) -> None:
        self._links = tuple(LINKS) + tuple(extra_links)
        self._cycles: Dict[str, int] = {link: 0 for link in self._links}
        self._messages: Dict[str, int] = {}
        self._floats: Dict[str, float] = {}

    def record(self, link: str, direction: str, *, count: int = 1,
               floats: float = 0.0) -> None:
        """Log ``count`` messages of ``floats`` payload units each.

        ``floats`` follows the payload-unit convention of the module docstring:
        pass the vector dimension for full-precision messages and
        ``Compressor.payload_floats(dim)`` for compressed uploads.
        """
        if link not in self._links:
            raise ValueError(f"unknown link {link!r}; options: {self._links}")
        if direction not in DIRECTIONS:
            raise ValueError(f"unknown direction {direction!r}; options: {DIRECTIONS}")
        if count < 0 or floats < 0:
            raise ValueError("count and floats must be nonnegative")
        key = f"{link}:{direction}"
        self._messages[key] = self._messages.get(key, 0) + int(count)
        self._floats[key] = self._floats.get(key, 0.0) + float(floats) * int(count)

    def sync_cycle(self, link: str, *, count: int = 1) -> None:
        """Mark ``count`` completed synchronization cycles on ``link``."""
        if link not in self._links:
            raise ValueError(f"unknown link {link!r}; options: {self._links}")
        if count < 0:
            raise ValueError("count must be nonnegative")
        self._cycles[link] += int(count)

    # ---------------------------------------------------------------- reading
    def snapshot(self) -> CommSnapshot:
        """Immutable copy of the current totals."""
        return CommSnapshot(cycles=dict(self._cycles),
                            messages=dict(self._messages),
                            floats=dict(self._floats))

    @property
    def total_cycles(self) -> int:
        """Total sync cycles — the default communication-round counter."""
        return sum(self._cycles.values())

    @property
    def edge_cloud_cycles(self) -> int:
        """Edge↔cloud (plus client↔cloud / top-level tree link) cycles."""
        return (self._cycles["edge_cloud"] + self._cycles["client_cloud"]
                + self._cycles.get("level_1", 0))

    @property
    def total_bytes(self) -> float:
        """Total wire bytes (compressed sizes; see the payload convention)."""
        return sum(self._floats.values()) * _BYTES_PER_FLOAT

    def reset(self) -> None:
        """Zero all counters (between repetitions)."""
        self._cycles = {link: 0 for link in self._links}
        self._messages.clear()
        self._floats.clear()

    def restore(self, snapshot: "CommSnapshot") -> None:
        """Overwrite the totals with a snapshot (checkpoint resume).

        Links present in the snapshot but unknown to this tracker are added,
        so a tracker restored from a multi-layer run keeps its level links.
        """
        self._links = tuple(dict.fromkeys(
            tuple(self._links) + tuple(snapshot.cycles)))
        self._cycles = {link: 0 for link in self._links}
        self._cycles.update({k: int(v) for k, v in snapshot.cycles.items()})
        self._messages = {k: int(v) for k, v in snapshot.messages.items()}
        self._floats = {k: float(v) for k, v in snapshot.floats.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CommunicationTracker(cycles={self._cycles}, "
                f"bytes={self.total_bytes:.3g})")
