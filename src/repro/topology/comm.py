"""Communication accounting for federated algorithms.

The paper's evaluation plots accuracy against *communication rounds* and its theory
counts *edge-cloud communication complexity*.  :class:`CommunicationTracker` records
enough raw information to report both (and more):

* **events** — each call to :meth:`record` logs ``count`` messages of ``floats``
  scalars each on one *link* (``client_edge``, ``edge_cloud``, or ``client_cloud``
  for two-layer baselines) in one *direction* (``up`` toward the cloud, ``down``
  toward the clients);
* **sync cycles** — each call to :meth:`sync_cycle` marks one completed
  synchronization cycle on a link (a broadcast + collect pair).  The figures'
  default "communication rounds" is the total number of sync cycles across all
  links, the convention under which one client-server exchange of a two-layer
  method and one client-edge aggregation of a hierarchical method each cost 1.

Derived views: per-link message/float totals, bytes (8 bytes per float64 scalar),
edge-cloud-only cycles (the theory's complexity measure), and immutable snapshots
for time series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["CommunicationTracker", "CommSnapshot", "LINKS", "DIRECTIONS"]

LINKS = ("client_edge", "edge_cloud", "client_cloud")
DIRECTIONS = ("up", "down")
_BYTES_PER_FLOAT = 8


@dataclass(frozen=True)
class CommSnapshot:
    """Immutable communication totals at one instant.

    Attributes
    ----------
    cycles:
        Sync-cycle count per link.
    messages:
        Message count per (link, direction) pair, keyed ``f"{link}:{direction}"``.
    floats:
        Scalar volume per (link, direction) pair.
    """

    cycles: Dict[str, int]
    messages: Dict[str, int]
    floats: Dict[str, float]

    @property
    def total_cycles(self) -> int:
        """The default "communication rounds" of the figures."""
        return sum(self.cycles.values())

    @property
    def edge_cloud_cycles(self) -> int:
        """The theory's edge-cloud communication complexity measure.

        Two-layer baselines talk straight to the cloud, so their client-cloud
        cycles are counted here as well — both traverse the WAN backhaul.  The
        multi-layer generalization's top link (``level_1``) likewise counts.
        """
        return (self.cycles.get("edge_cloud", 0) + self.cycles.get("client_cloud", 0)
                + self.cycles.get("level_1", 0))

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    @property
    def total_floats(self) -> float:
        return sum(self.floats.values())

    @property
    def total_bytes(self) -> float:
        """Traffic volume assuming float64 payloads."""
        return self.total_floats * _BYTES_PER_FLOAT


class CommunicationTracker:
    """Mutable accumulator of the communication performed by one algorithm run.

    Parameters
    ----------
    extra_links:
        Additional link names beyond the standard three — used by the
        multi-layer generalization, whose trees have one link type per level
        (``level_1``, ``level_2``, …).
    """

    def __init__(self, extra_links: tuple[str, ...] = ()) -> None:
        self._links = tuple(LINKS) + tuple(extra_links)
        self._cycles: Dict[str, int] = {link: 0 for link in self._links}
        self._messages: Dict[str, int] = {}
        self._floats: Dict[str, float] = {}

    def record(self, link: str, direction: str, *, count: int = 1,
               floats: float = 0.0) -> None:
        """Log ``count`` messages of ``floats`` scalars each on ``link``/``direction``."""
        if link not in self._links:
            raise ValueError(f"unknown link {link!r}; options: {self._links}")
        if direction not in DIRECTIONS:
            raise ValueError(f"unknown direction {direction!r}; options: {DIRECTIONS}")
        if count < 0 or floats < 0:
            raise ValueError("count and floats must be nonnegative")
        key = f"{link}:{direction}"
        self._messages[key] = self._messages.get(key, 0) + int(count)
        self._floats[key] = self._floats.get(key, 0.0) + float(floats) * int(count)

    def sync_cycle(self, link: str, *, count: int = 1) -> None:
        """Mark ``count`` completed synchronization cycles on ``link``."""
        if link not in self._links:
            raise ValueError(f"unknown link {link!r}; options: {self._links}")
        if count < 0:
            raise ValueError("count must be nonnegative")
        self._cycles[link] += int(count)

    # ---------------------------------------------------------------- reading
    def snapshot(self) -> CommSnapshot:
        """Immutable copy of the current totals."""
        return CommSnapshot(cycles=dict(self._cycles),
                            messages=dict(self._messages),
                            floats=dict(self._floats))

    @property
    def total_cycles(self) -> int:
        """Total sync cycles — the default communication-round counter."""
        return sum(self._cycles.values())

    @property
    def edge_cloud_cycles(self) -> int:
        """Edge↔cloud (plus client↔cloud / top-level tree link) cycles."""
        return (self._cycles["edge_cloud"] + self._cycles["client_cloud"]
                + self._cycles.get("level_1", 0))

    @property
    def total_bytes(self) -> float:
        """Total traffic volume in bytes (float64 payloads)."""
        return sum(self._floats.values()) * _BYTES_PER_FLOAT

    def reset(self) -> None:
        """Zero all counters (between repetitions)."""
        self._cycles = {link: 0 for link in self._links}
        self._messages.clear()
        self._floats.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CommunicationTracker(cycles={self._cycles}, "
                f"bytes={self.total_bytes:.3g})")
