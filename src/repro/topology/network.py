"""Hierarchical hub-and-spoke network topology (Fig. 1 of the paper).

:class:`HierarchicalTopology` describes the static structure: one cloud server,
``N_E`` edge servers, and each edge server's set of associated clients.  The paper
assumes a uniform ``N0`` clients per edge but notes the generalization to
non-uniform areas; both are supported.  Client identifiers are global integers in
edge-major order, matching :meth:`repro.data.FederatedDataset.iter_clients`.

The topology is pure structure — no state, no communication; those live in
:mod:`repro.sim` and :mod:`repro.topology.comm`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["HierarchicalTopology"]


class HierarchicalTopology:
    """Client-edge-cloud structure with global client indexing.

    Parameters
    ----------
    clients_per_edge:
        Client count of each edge area, length ``N_E``.
    """

    def __init__(self, clients_per_edge: Sequence[int]) -> None:
        counts = [int(c) for c in clients_per_edge]
        if not counts:
            raise ValueError("topology needs at least one edge server")
        if any(c < 1 for c in counts):
            raise ValueError(f"every edge area needs >= 1 client, got {counts}")
        self._counts = tuple(counts)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        self._offsets = offsets
        self._edge_of_client = np.repeat(np.arange(len(counts)), counts)

    # ------------------------------------------------------------------ basics
    @classmethod
    def uniform(cls, num_edges: int, clients_per_edge: int) -> "HierarchicalTopology":
        """The paper's uniform layout: ``N_E`` edges × ``N0`` clients."""
        if num_edges < 1 or clients_per_edge < 1:
            raise ValueError("num_edges and clients_per_edge must be >= 1")
        return cls([clients_per_edge] * num_edges)

    @classmethod
    def from_dataset(cls, dataset) -> "HierarchicalTopology":
        """Topology matching a :class:`repro.data.FederatedDataset` layout."""
        return cls(dataset.clients_per_edge())

    @property
    def num_edges(self) -> int:
        """``N_E``."""
        return len(self._counts)

    @property
    def num_clients(self) -> int:
        """``N`` — total clients across edge areas."""
        return int(self._offsets[-1])

    @property
    def clients_per_edge(self) -> tuple[int, ...]:
        """Client count per edge area."""
        return self._counts

    @property
    def is_uniform(self) -> bool:
        """Whether all edge areas have the same client count (the paper's ``N0``)."""
        return len(set(self._counts)) == 1

    @property
    def n0(self) -> int:
        """The uniform per-edge client count ``N0``; raises when non-uniform."""
        if not self.is_uniform:
            raise ValueError("topology is non-uniform; N0 is undefined")
        return self._counts[0]

    # ------------------------------------------------------------------ lookup
    def clients_of_edge(self, edge: int) -> np.ndarray:
        """Global client indices of edge area ``edge``."""
        if not 0 <= edge < self.num_edges:
            raise IndexError(f"edge index {edge} out of range [0, {self.num_edges})")
        return np.arange(self._offsets[edge], self._offsets[edge + 1])

    def edge_of_client(self, client: int) -> int:
        """Edge area that client ``client`` belongs to."""
        if not 0 <= client < self.num_clients:
            raise IndexError(f"client index {client} out of range [0, {self.num_clients})")
        return int(self._edge_of_client[client])

    def validate_dataset(self, dataset) -> None:
        """Check that a federated dataset matches this topology exactly."""
        counts = tuple(dataset.clients_per_edge())
        if counts != self._counts:
            raise ValueError(
                f"dataset layout {counts} does not match topology {self._counts}")

    # --------------------------------------------------------------- analysis
    def to_networkx(self):
        """Hub-and-spoke graph: ``cloud`` – ``edge:e`` – ``client:i`` nodes.

        Requires :mod:`networkx` (an optional analysis/visualization aid).
        """
        import networkx as nx

        g = nx.Graph()
        g.add_node("cloud", layer="cloud")
        for e in range(self.num_edges):
            g.add_node(f"edge:{e}", layer="edge")
            g.add_edge("cloud", f"edge:{e}", link="edge_cloud")
            for c in self.clients_of_edge(e):
                g.add_node(f"client:{int(c)}", layer="client")
                g.add_edge(f"edge:{e}", f"client:{int(c)}", link="client_edge")
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_uniform:
            return (f"HierarchicalTopology(N_E={self.num_edges}, N0={self._counts[0]}, "
                    f"N={self.num_clients})")
        return f"HierarchicalTopology(clients_per_edge={self._counts})"
