"""Participant-sampling primitives for Phases 1 and 2 of Algorithm 1.

* :func:`sample_by_weight` — Phase 1: ``m`` i.i.d. draws from Categorical(p)
  (with replacement, as in DRFA), making the ``1/m`` average of returned models an
  unbiased estimate of the p-weighted aggregate.
* :func:`sample_uniform_subset` — Phase 2: a uniform size-``m`` subset without
  replacement, under which ``v_e = (N_E/m) f_e`` (0 off-support) is the unbiased
  gradient estimator derived in §4.2.
* :func:`sample_checkpoint_slot` — the uniform checkpoint index ``(c1, c2)`` from
  ``[τ1] × [τ2]``, encoded as a flat slot for convenience.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sample_by_weight", "sample_uniform_subset", "sample_checkpoint_slot"]


def sample_by_weight(p: np.ndarray, m: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``m`` edge indices i.i.d. from the categorical distribution ``p``.

    Returns a (possibly repeating) integer array of length ``m``.  ``p`` must be a
    probability vector; a tiny negative/rounding slack is tolerated and
    renormalized.
    """
    p = np.asarray(p, dtype=np.float64)
    if p.ndim != 1 or p.size == 0:
        raise ValueError(f"p must be a nonempty 1-D vector, got shape {p.shape}")
    if m < 1:
        raise ValueError(f"must sample at least one edge, got m={m}")
    if np.any(p < -1e-9):
        raise ValueError(f"p has negative entries: min={p.min()}")
    q = np.clip(p, 0.0, None)
    total = q.sum()
    if total <= 0:
        raise ValueError("p has no positive mass")
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"p must sum to 1 (got {total}); project it first")
    q = q / total
    return rng.choice(p.size, size=m, replace=True, p=q)


def sample_uniform_subset(n: int, m: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random subset of size ``m`` from ``{0, …, n-1}``, no replacement."""
    if n < 1:
        raise ValueError(f"population must be nonempty, got n={n}")
    if not 1 <= m <= n:
        raise ValueError(f"subset size m={m} must satisfy 1 <= m <= n={n}")
    return rng.choice(n, size=m, replace=False)


def sample_checkpoint_slot(tau1: int, tau2: int, rng: np.random.Generator,
                           ) -> tuple[int, int]:
    """Sample the checkpoint index uniformly from the round's ``τ1·τ2`` slots.

    Returns ``(c1, c2)`` where ``c2 ∈ {0, …, τ2-1}`` is the client-edge aggregation
    block and ``c1 ∈ {1, …, τ1}`` the number of local SGD steps completed within
    that block at the moment of the snapshot.  The encoding covers each of the
    round's local-update instants exactly once, as the unbiasedness argument of
    Appendix A requires.
    """
    if tau1 < 1 or tau2 < 1:
        raise ValueError(f"tau1 and tau2 must be >= 1, got ({tau1}, {tau2})")
    slot = int(rng.integers(0, tau1 * tau2))
    c2, c1 = divmod(slot, tau1)
    return c1 + 1, c2
