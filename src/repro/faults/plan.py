"""Declarative fault model for the client–edge–cloud simulation.

A :class:`FaultPlan` is a frozen, seeded description of *what can go wrong* in a
run — client dropouts, stragglers, edge-server outages, and message loss or
corruption on the hierarchy's links — together with the :class:`RetryPolicy`
that governs how the system fights back.  The plan itself never draws random
numbers; the :class:`~repro.faults.injector.FaultInjector` turns it into
per-round, per-entity decisions that are a *pure function* of
``(plan.seed, round, entity)``, which is what makes faulty runs reproducible
and checkpoint/resume exact.

``FaultPlan.none()`` (or simply not passing a plan) disables every fault path:
algorithms take the exact same code paths and produce bit-identical outputs to
a build without the fault layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

import numpy as np

from repro.defense.attacks import AttackPlan
from repro.membership.plan import ChurnPlan
from repro.utils.rng import stable_key
from repro.utils.validation import check_probability

__all__ = ["FaultPlan", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retransmission with deterministic backoff accounting.

    Parameters
    ----------
    max_retries:
        Retransmissions attempted after the first (lost) transmission of a
        message; ``0`` disables retries.  Each retransmission is re-charged to
        the :class:`~repro.topology.comm.CommunicationTracker`, so comm plots
        reflect the true wire traffic under loss.
    backoff_base_s / backoff_factor:
        The ``n``-th retry waits ``backoff_base_s * backoff_factor**n``
        (simulated) seconds.  The time is accumulated into the
        ``retry_backoff_s_total`` metric, never slept.
    max_backoff_s:
        Cap on any single backoff wait, so exponential growth cannot run
        unbounded under long loss episodes.  ``None`` (default) leaves the
        geometric schedule uncapped — bit-identical to the pre-cap policy.
    jitter:
        Optional deterministic jitter fraction in ``[0, 1]``: each wait is
        scaled by a factor drawn uniformly from ``[1 - jitter, 1 + jitter]``
        as a pure function of ``(seed, round, entity, attempt)`` — seeded
        de-synchronization, not wall-clock randomness.  ``0`` (default)
        disables jitter and skips the draw entirely.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float | None = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ValueError(
                f"max_retries must be an integer >= 0, got {self.max_retries!r}")
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.max_backoff_s is not None and self.max_backoff_s < 0:
            raise ValueError(
                f"max_backoff_s must be >= 0 or None, got {self.max_backoff_s}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(self, attempt: int, *, seed: int | None = None,
                  round_index: int = 0, entity: str = "") -> float:
        """Simulated wait before retry number ``attempt`` (0-based).

        With ``jitter`` set and a ``seed`` supplied, the wait is perturbed by
        a factor that is a pure function of
        ``(seed, round_index, entity, attempt)``; the cap applies before the
        jitter, so a capped schedule still de-synchronizes.
        """
        wait = self.backoff_base_s * self.backoff_factor ** attempt
        if self.max_backoff_s is not None:
            wait = min(wait, self.max_backoff_s)
        if self.jitter > 0.0 and seed is not None:
            ss = np.random.SeedSequence(
                entropy=seed,
                spawn_key=(stable_key("retry_jitter"), round_index,
                           stable_key(entity), attempt))
            u = np.random.default_rng(ss).random()
            wait *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return wait


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of the failures injected into one run.

    All rates are per-round, per-entity probabilities in ``[0, 1]``.

    Parameters
    ----------
    client_dropout:
        Probability a client is unreachable for an entire cloud round: it runs
        no local steps and uploads nothing; aggregation weights are
        renormalized over the survivors.
    client_straggle:
        Probability a client straggles.  A straggler only completes
        ``round_timeout_slots / straggler_slowdown`` of its ``τ1`` local steps
        before the round deadline and uploads that truncated model; when the
        deadline leaves it zero completed steps, the timeout converts it into
        a dropout (counted under ``stragglers_timed_out``).
    straggler_slowdown:
        How many times slower a straggler computes (``>= 1``).
    round_timeout_slots:
        The per-round deadline in local-step slots; ``None`` means ``τ1`` (a
        straggler may use the whole block but no more).
    edge_outage:
        Probability an edge server (or a level-1 subtree in the multi-layer
        generalization) is dark for an entire round: it contributes to neither
        Phase 1 aggregation nor Phase 2 loss estimation; the cloud falls back
        to the edge's previous loss estimate for the weight ascent.
    msg_loss:
        Probability each uplink message is lost in transit.  The
        :class:`RetryPolicy` retransmits (charging the tracker); when all
        retries fail the sender is treated as dropped for that aggregation.
    msg_corrupt:
        Probability a delivered uplink payload is corrupted (NaN-poisoned).
        Receivers validate payloads, quarantine the sender for the rest of the
        run, and renormalize without it.
    seed:
        Root seed of the fault process — independent of the algorithm seed, so
        the same training run can be replayed under different fault draws.
    retry:
        The :class:`RetryPolicy` for lost messages.
    byzantine:
        Optional :class:`~repro.defense.attacks.AttackPlan` — the adversarial
        tier.  Roster members' uploads are tampered at the receiver side of
        every link (model poisoning, loss inflation) as pure functions of
        ``(byzantine.seed, round, client)``.  ``None`` (or a null attack
        plan) leaves every payload untouched.
    guard_zscore:
        Receiver-side anomaly guard: a *finite* array upload whose norm sits
        more than this many robust z-scores from the round's cohort (same
        link, at least 8 prior uploads) quarantines its sender, exactly like
        the NaN guard.  ``0`` disables the guard.  It only arms when the plan
        is otherwise active (faults or an attack), so it never changes a
        healthy run's code paths.
    churn:
        Optional :class:`~repro.membership.plan.ChurnPlan` — the dynamic
        membership tier (client arrivals/departures, edge crash/recover,
        partitions).  Carried here so one spec string configures a whole
        degraded run (``churn_arrive=0.05,churn_edge_mttf=40,...``), but
        *activated* by the :mod:`repro.membership` layer, not the fault
        injector: ``FederatedAlgorithm`` resolves it into a
        :class:`~repro.membership.manager.MembershipManager` when no
        explicit ``churn=`` argument is given.  It does not arm the injector
        (:attr:`is_null` ignores it).
    """

    client_dropout: float = 0.0
    client_straggle: float = 0.0
    straggler_slowdown: float = 2.0
    round_timeout_slots: int | None = None
    edge_outage: float = 0.0
    msg_loss: float = 0.0
    msg_corrupt: float = 0.0
    seed: int = 0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    byzantine: AttackPlan | None = None
    guard_zscore: float = 0.0
    churn: ChurnPlan | None = None

    def __post_init__(self) -> None:
        for name in ("client_dropout", "client_straggle", "edge_outage",
                     "msg_loss", "msg_corrupt"):
            check_probability(getattr(self, name), name)
        if self.straggler_slowdown < 1.0:
            raise ValueError(f"straggler_slowdown must be >= 1, "
                             f"got {self.straggler_slowdown}")
        if self.round_timeout_slots is not None and self.round_timeout_slots < 1:
            raise ValueError(f"round_timeout_slots must be >= 1 or None, "
                             f"got {self.round_timeout_slots}")
        if self.byzantine is not None and not isinstance(self.byzantine,
                                                         AttackPlan):
            raise TypeError(f"byzantine must be an AttackPlan or None, "
                            f"got {type(self.byzantine).__name__}")
        if self.guard_zscore < 0:
            raise ValueError(
                f"guard_zscore must be >= 0, got {self.guard_zscore}")
        if self.churn is not None and not isinstance(self.churn, ChurnPlan):
            raise TypeError(f"churn must be a ChurnPlan or None, "
                            f"got {type(self.churn).__name__}")

    # ------------------------------------------------------------- inspection
    @property
    def is_null(self) -> bool:
        """True when neither a fault nor an attack can ever fire.

        ``guard_zscore`` alone does not activate the plan: the guard is a
        countermeasure, armed only when something can actually go wrong.
        """
        return (self.client_dropout == 0.0 and self.client_straggle == 0.0
                and self.edge_outage == 0.0 and self.msg_loss == 0.0
                and self.msg_corrupt == 0.0 and not self.has_attack)

    @property
    def has_attack(self) -> bool:
        """True when the plan carries an active Byzantine attack."""
        return self.byzantine is not None and not self.byzantine.is_null

    @property
    def has_churn(self) -> bool:
        """True when the plan carries active membership dynamics."""
        return self.churn is not None and not self.churn.is_null

    def straggler_steps(self, tau1: int) -> int:
        """Local steps a straggler completes before the round deadline.

        ``0`` means the timeout converted the straggler into a dropout.
        """
        deadline = (tau1 if self.round_timeout_slots is None
                    else min(tau1, self.round_timeout_slots))
        return int(deadline / self.straggler_slowdown)

    # ------------------------------------------------------------ construction
    @classmethod
    def none(cls) -> "FaultPlan":
        """The fault-free plan: every algorithm output is bit-identical to a
        run with no ``faults=`` argument at all."""
        return cls()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a CLI spec like
        ``"client_dropout=0.2,edge_outage=0.05,seed=3,max_retries=1"``.

        Keys are :class:`FaultPlan` field names plus the :class:`RetryPolicy`
        fields (``max_retries``, ``backoff_base_s``, ``backoff_factor``) plus
        the ``attack_``-prefixed :class:`~repro.defense.attacks.AttackPlan`
        fields — e.g.
        ``"attack=sign_flip,attack_fraction=0.2,attack_seed=1"`` (also
        ``attack_scale``, ``attack_start_round``, ``attack_colluding``,
        ``attack_clients=0|3|7``) — plus the ``churn_``-prefixed
        :class:`~repro.membership.plan.ChurnPlan` fields, e.g.
        ``"churn_arrive=0.05,churn_depart=0.02,churn_edge_mttf=40"``.
        """
        plan_kwargs: dict = {}
        retry_kwargs: dict = {}
        attack_parts: list[str] = []
        churn_parts: list[str] = []
        plan_fields = {f.name: f.type for f in fields(cls)
                       if f.name not in ("retry", "byzantine", "churn")}
        retry_fields = {f.name for f in fields(RetryPolicy)}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"fault spec entry {part!r} is not key=value")
            key, _, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key == "attack":
                attack_parts.append(f"attack={raw}")
                continue
            if key.startswith("attack_"):
                attack_parts.append(f"{key[len('attack_'):]}={raw}")
                continue
            if key.startswith("churn_"):
                churn_parts.append(f"{key[len('churn_'):]}={raw}")
                continue
            if key in ("seed", "round_timeout_slots", "max_retries"):
                value: object = int(raw)
            else:
                value = float(raw)
            if key in plan_fields:
                plan_kwargs[key] = value
            elif key in retry_fields:
                retry_kwargs[key] = value
            else:
                raise ValueError(
                    f"unknown fault spec key {key!r}; options: "
                    f"{sorted(plan_fields) + sorted(retry_fields)} "
                    f"plus attack / attack_* / churn_* keys")
        plan = cls(**plan_kwargs)
        if retry_kwargs:
            plan = replace(plan, retry=RetryPolicy(**retry_kwargs))
        if attack_parts:
            plan = replace(plan,
                           byzantine=AttackPlan.parse(",".join(attack_parts)))
        if churn_parts:
            plan = replace(plan,
                           churn=ChurnPlan.parse(",".join(churn_parts)))
        return plan
