"""repro.faults — fault injection, graceful degradation, and checkpoint/resume.

Three cooperating parts (see DESIGN.md §"Fault model"):

* :mod:`repro.faults.plan` — the declarative, seeded :class:`FaultPlan`
  (client dropouts, stragglers, edge outages, message loss/corruption) and the
  :class:`RetryPolicy` for bounded, comm-charged retransmissions;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` that turns a plan
  into per-round decisions that are pure functions of
  ``(seed, round, entity)``, plus the quarantine/degradation bookkeeping and
  the fault metrics/events routed through :mod:`repro.obs`;
* :mod:`repro.faults.checkpoint` — versioned, atomically-written checkpoint
  files that let a killed run resume bit-identically
  (``--checkpoint``/``--resume`` on the examples and
  ``checkpoint_dir=``/``resume=`` on :func:`repro.experiments.run_experiment`).

Every algorithm accepts a ``faults=`` keyword (``None`` → no injection, the
exact pre-existing code paths); degradation semantics — aggregation-weight
renormalization over survivors, NaN/Inf quarantine, stale-loss fallback for
dark edges — live at the aggregation points of the algorithms themselves.
"""

from repro.faults.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKSUM_KEY,
    CheckpointError,
    load_checkpoint_file,
    previous_checkpoint_path,
    save_checkpoint_file,
)
from repro.faults.injector import (
    INJECTED_KINDS,
    RECOVERY_KINDS,
    FaultInjector,
    resolve_injector,
)
from repro.defense.attacks import AttackPlan
from repro.faults.plan import FaultPlan, RetryPolicy

__all__ = [
    "AttackPlan",
    "FaultPlan",
    "RetryPolicy",
    "FaultInjector",
    "resolve_injector",
    "INJECTED_KINDS",
    "RECOVERY_KINDS",
    "CheckpointError",
    "CHECKPOINT_FORMAT",
    "CHECKSUM_KEY",
    "save_checkpoint_file",
    "load_checkpoint_file",
    "previous_checkpoint_path",
]
