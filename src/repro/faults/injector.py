"""Seeded fault injection and graceful-degradation bookkeeping.

The :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan` into
concrete per-round decisions.  Every decision is a pure function of
``(plan.seed, round, kind, entity[, sequence])`` via dedicated
:class:`numpy.random.SeedSequence` streams, so

* the same plan + seed reproduce the same failures regardless of which
  algorithm (or how much observability) is running,
* decisions never touch the *algorithm's* RNG streams — a null plan is
  bit-identical to no plan at all, and
* a run killed and resumed from a checkpoint at a round boundary replays the
  remaining rounds' faults exactly.

The injector also owns the run-scoped degradation state: the quarantine set of
senders caught shipping non-finite payloads, and the fault metrics/events that
flow through the PR-1 observability layer (``clients_dropped_total``,
``retries_total``, ``rounds_degraded``, ``quarantined_senders``, plus a
``fault`` event per injected failure and per recovery).
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import FaultPlan
from repro.obs import NULL_TRACER
from repro.utils.rng import stable_key

__all__ = ["FaultInjector", "resolve_injector"]

#: ``fault`` event kinds that are *injected* failures.
INJECTED_KINDS = ("client_dropout", "client_straggler", "straggler_timeout",
                  "edge_outage", "msg_lost", "msg_corrupt")
#: ``fault`` event kinds that are *recoveries* (the run degraded gracefully).
RECOVERY_KINDS = ("retry_success", "stale_loss_fallback",
                  "checkpoint_fallback", "quarantine")

#: Minimum same-link uploads seen this round before the norm z-score guard
#: can flag an outlier (robust statistics need a cohort).
GUARD_MIN_COHORT = 8


class FaultInjector:
    """Per-run fault oracle plus degradation state.

    Parameters
    ----------
    plan:
        The declarative fault configuration.  ``FaultPlan.none()`` yields a
        disabled injector whose every query is a constant-time no-op.
    obs:
        Optional :class:`~repro.obs.Tracer` receiving fault events and the
        fault metric counters; defaults to the shared no-op tracer.
    """

    def __init__(self, plan: FaultPlan, *, obs=None) -> None:
        self.plan = plan
        self.obs = obs if obs is not None else NULL_TRACER
        self.enabled = not plan.is_null
        self.quarantined: set[str] = set()
        self.backoff_s_total = 0.0
        # The adversarial tier: roster members' uploads are tampered inside
        # receive(), so every algorithm's aggregation sees poisoned payloads
        # without any per-algorithm attack code.
        self.attacks = (plan.byzantine
                        if plan.byzantine is not None
                        and not plan.byzantine.is_null else None)
        # Suspicion ledger fed by the defense layer (robust aggregators and
        # the norm guard): sender -> times flagged.  Survives checkpoints.
        self.suspicion: dict[str, int] = {}
        # Per-round dedup of emitted events (a whole-round decision like an
        # edge outage is queried by both phases) and the per-sender message
        # sequence counter that makes repeated uploads within a round draw
        # independent loss/corruption outcomes.
        self._event_round: int | None = None
        self._emitted: set[tuple] = set()
        self._msg_seq: dict[tuple, int] = {}
        # Round-scoped cohort of per-link array-upload norms for the z-score
        # guard; rebuilt each round (round-boundary resume needs no state).
        self._norm_cohort: dict[str, list[float]] = {}

    # ------------------------------------------------------------ rng plumbing
    def _rng(self, round_index: int, kind: str, entity: str,
             seq: int = 0) -> np.random.Generator:
        """A generator that is a pure function of its arguments and the seed."""
        ss = np.random.SeedSequence(
            entropy=self.plan.seed,
            spawn_key=(stable_key(kind), round_index, stable_key(entity), seq))
        return np.random.default_rng(ss)

    def _round_scope(self, round_index: int) -> None:
        if self._event_round != round_index:
            self._event_round = round_index
            self._emitted.clear()
            self._msg_seq.clear()
            self._norm_cohort.clear()

    def _emit(self, round_index: int, kind: str, entity: str, *,
              dedup: bool = True, **fields) -> bool:
        """Emit a ``fault`` event; returns ``False`` when deduped away.

        Callers increment the matching metric counter only on ``True``, so a
        whole-round decision queried by both phases is counted exactly once.
        """
        if dedup:
            key = (round_index, kind, entity)
            if key in self._emitted:
                return False
            self._emitted.add(key)
        self.obs.event("fault", round=round_index, fault=kind, entity=entity,
                       recovery=kind in RECOVERY_KINDS, **fields)
        return True

    # ---------------------------------------------------------- availability
    def edge_dark(self, round_index: int, edge_id: int) -> bool:
        """Is this edge server (or level-1 subtree) dark for the whole round?

        Quarantined edges are permanently dark.  The decision is identical for
        every query in the round, so Phase 1 and Phase 2 agree on it.
        """
        if not self.enabled:
            return False
        self._round_scope(round_index)
        entity = f"edge:{edge_id}"
        if entity in self.quarantined:
            return True
        if self.plan.edge_outage <= 0.0:
            return False
        gen = self._rng(round_index, "edge_outage", entity)
        if gen.random() < self.plan.edge_outage:
            if self._emit(round_index, "edge_outage", entity):
                self.obs.count("edge_outages_total")
            return True
        return False

    def client_steps(self, round_index: int, client_id: int, tau1: int) -> int:
        """Local steps the client completes this round.

        ``tau1`` means healthy, ``0 < steps < tau1`` a straggler's truncated
        update, and ``0`` a dropout (including stragglers converted by the
        round timeout, and quarantined clients).  The answer is stable across
        repeated queries within a round (one availability draw per client per
        round), so every aggregation block of the round sees the same fate.
        """
        if not self.enabled:
            return tau1
        self._round_scope(round_index)
        entity = f"client:{client_id}"
        if entity in self.quarantined:
            return 0
        gen = self._rng(round_index, "client_fate", entity)
        u = gen.random()
        if u < self.plan.client_dropout:
            if self._emit(round_index, "client_dropout", entity):
                self.obs.count("clients_dropped_total")
            return 0
        if u < self.plan.client_dropout + self.plan.client_straggle:
            steps = self.plan.straggler_steps(tau1)
            if steps < 1:
                if self._emit(round_index, "straggler_timeout", entity):
                    self.obs.count("stragglers_timed_out")
                    self.obs.count("clients_dropped_total")
                return 0
            if self._emit(round_index, "client_straggler", entity, steps=steps):
                self.obs.count("stragglers_total")
            return min(steps, tau1)
        return tau1

    def client_available(self, round_index: int, client_id: int) -> bool:
        """Can this client answer a (tiny) loss probe this round?

        Shares the availability draw with :meth:`client_steps`, so a client
        that dropped out of the round's model update is also silent for the
        round's loss estimation, while a straggler — slow but alive — still
        replies.  Quarantined clients never reply.
        """
        if not self.enabled:
            return True
        self._round_scope(round_index)
        entity = f"client:{client_id}"
        if entity in self.quarantined:
            return False
        gen = self._rng(round_index, "client_fate", entity)
        if gen.random() < self.plan.client_dropout:
            if self._emit(round_index, "client_dropout", entity):
                self.obs.count("clients_dropped_total")
            return False
        return True

    # -------------------------------------------------------------- messaging
    def receive(self, round_index: int, link: str, sender: str, *payloads,
                floats: float = 0.0, tracker=None, direction: str = "up",
                ref=None):
        """Deliver ``payloads`` (one logical upload) through the faulty link.

        Order of operations: Byzantine tampering (the sender *chooses* its
        payload — see :class:`~repro.defense.attacks.AttackPlan`), then
        message loss with the plan's :class:`RetryPolicy` (retransmissions are
        re-charged to ``tracker`` and counted in ``retries_total``), then
        corruption, then the receiver-side payload guard: a sender shipping
        NaN/Inf — or, with ``guard_zscore`` set, a finite array whose norm is
        anomalous against the round's same-link cohort — is quarantined for
        the rest of the run (``quarantined_senders``) and its upload
        discarded.

        ``ref`` is the broadcast model the upload answers; model-poisoning
        attacks tamper with the delta against it.

        Returns the tuple of delivered payloads, or ``None`` when the upload
        was lost after all retries or failed validation — the caller treats
        the sender as dropped for this aggregation and renormalizes.
        """
        if not self.enabled:
            return payloads
        self._round_scope(round_index)
        seq_key = (link, sender)
        seq = self._msg_seq.get(seq_key, 0)
        self._msg_seq[seq_key] = seq + 1
        payloads = self._attack(round_index, link, sender, payloads, ref)
        gen = self._rng(round_index, "msg", f"{link}:{sender}", seq)
        policy = self.plan.retry
        if self.plan.msg_loss > 0.0:
            delivered = False
            lost_attempts = 0
            for attempt in range(policy.max_retries + 1):
                if gen.random() >= self.plan.msg_loss:
                    delivered = True
                    break
                lost_attempts += 1
                if attempt < policy.max_retries:
                    # Retransmission: charged to the link so comm plots
                    # reflect it, plus deterministic (simulated) backoff.
                    if tracker is not None:
                        tracker.record(link, direction, count=1, floats=floats)
                    self.obs.count("retries_total")
                    wait = policy.backoff_s(attempt, seed=self.plan.seed,
                                            round_index=round_index,
                                            entity=f"{link}:{sender}")
                    self.backoff_s_total += wait
                    self.obs.count("retry_backoff_s_total", wait)
            if not delivered:
                self._emit(round_index, "msg_lost", sender, dedup=False,
                           link=link)
                self.obs.count("messages_lost_total")
                return None
            if lost_attempts:
                self._emit(round_index, "retry_success", sender, dedup=False,
                           link=link, retries=lost_attempts)
        if self.plan.msg_corrupt > 0.0 and gen.random() < self.plan.msg_corrupt:
            self._emit(round_index, "msg_corrupt", sender, dedup=False,
                       link=link)
            self.obs.count("messages_corrupted_total")
            payloads = tuple(None if p is None else _corrupt(p)
                             for p in payloads)
        if not all(_finite(p) for p in payloads if p is not None):
            self.quarantine(round_index, sender, link=link)
            return None
        if self.plan.guard_zscore > 0.0 and not self._norms_ok(
                round_index, link, sender, payloads):
            return None
        return payloads

    # ---------------------------------------------------------- byzantine tier
    def _attack(self, round_index: int, link: str, sender: str, payloads,
                ref):
        """Replace a Byzantine client's payloads with its chosen attack.

        Only ``client:<id>`` senders can be Byzantine (edge/interior servers
        are trusted infrastructure in this threat model); honest senders and
        pre-``start_round`` rounds pass through untouched.  Attack draws use
        their own seeded streams, so the plan's *fault* decisions are
        unchanged by the presence of an adversary.
        """
        plan = self.attacks
        if plan is None or not sender.startswith("client:"):
            return payloads
        client_id = int(sender.split(":", 1)[1])
        if not plan.active(round_index, client_id):
            return payloads
        out = []
        tampered = False
        for p in payloads:
            if p is None:
                out.append(p)
            elif isinstance(p, np.ndarray):
                if plan.attack in ("sign_flip", "gauss", "scale"):
                    out.append(plan.tamper_model(round_index, client_id, p,
                                                 ref))
                    tampered = True
                else:
                    out.append(p)
            else:
                poisoned = plan.tamper_loss(round_index, client_id, float(p))
                tampered = tampered or poisoned != float(p)
                out.append(poisoned)
        if tampered:
            self.obs.event("attack", round=round_index, attack=plan.attack,
                           entity=sender, link=link)
            self.obs.count("byzantine_attacks_total")
        return tuple(out)

    def _norms_ok(self, round_index: int, link: str, sender: str,
                  payloads) -> bool:
        """The finite-but-anomalous guard: norm z-score vs. the round's cohort.

        Keeps a per-link list of array-upload norms for the current round; a
        new upload whose norm deviates from the cohort median by more than
        ``guard_zscore`` robust standard deviations (MAD-scaled) quarantines
        its sender.  Scalar payloads are never judged (loss magnitudes are
        the *minimax signal*, policed separately by the loss clip).
        """
        norms = [float(np.linalg.norm(p)) for p in payloads
                 if isinstance(p, np.ndarray)]
        if not norms:
            return True
        cohort = self._norm_cohort.setdefault(link, [])
        if len(cohort) >= GUARD_MIN_COHORT:
            arr = np.asarray(cohort)
            center = float(np.median(arr))
            # MAD scaled to the normal-consistent sigma; floor keeps tiny
            # homogeneous cohorts from flagging numerical noise.
            sigma = 1.4826 * float(np.median(np.abs(arr - center)))
            sigma = max(sigma, 1e-9 * max(abs(center), 1.0))
            worst = max(abs(n - center) for n in norms) / sigma
            if worst > self.plan.guard_zscore:
                self.quarantine(round_index, sender, link=link,
                                reason="norm_zscore",
                                zscore=round(worst, 2))
                self.obs.count("norm_guard_rejections_total")
                return False
        cohort.extend(norms)
        return True

    def suspect(self, round_index: int, sender: str, *, action: str,
                aggregator: str, **fields) -> None:
        """Record a defense-layer flag (rejected/clipped upload, capped loss).

        Works even on a disabled injector — robust aggregation can run
        without any fault plan — and never draws randomness.  Feeds the
        per-sender suspicion ledger, a ``defense`` trace event, and the
        ``byzantine_filtered_total`` counter (the "filtered" side of the
        trace-report attack ledger).
        """
        self.suspicion[sender] = self.suspicion.get(sender, 0) + 1
        self.obs.event("defense", round=round_index, entity=sender,
                       action=action, aggregator=aggregator, **fields)
        self.obs.count("byzantine_filtered_total")

    def quarantine(self, round_index: int, sender: str, **fields) -> None:
        """Ban a sender (non-finite or anomalous payload) for the rest of the run."""
        if sender not in self.quarantined:
            self.quarantined.add(sender)
            self._emit(round_index, "quarantine", sender, dedup=False, **fields)
            self.obs.count("quarantined_senders")

    # ------------------------------------------------------------ degradation
    def stale_loss(self, round_index: int, entity: str, value: float) -> None:
        """Record that the cloud fell back to a cached loss for ``entity``."""
        self._emit(round_index, "stale_loss_fallback", entity, dedup=False,
                   value=value)
        self.obs.count("stale_loss_fallbacks_total")

    def degraded_round(self, round_index: int, what: str) -> None:
        """Record a round where a whole aggregation had zero survivors."""
        self._emit(round_index, "degraded_round", what, dedup=False)
        self.obs.count("rounds_degraded")

    def checkpoint_fallback(self, round_index: int, what: str) -> None:
        """Record a round where the Phase-2 probe model fell back to ``w``."""
        self._emit(round_index, "checkpoint_fallback", what, dedup=False)
        self.obs.count("checkpoint_fallbacks_total")

    # ------------------------------------------------------------ persistence
    def state_dict(self) -> dict:
        """Serializable run-scoped state (the decisions themselves are pure)."""
        return {"quarantined": sorted(self.quarantined),
                "backoff_s_total": self.backoff_s_total,
                "suspicion": dict(self.suspicion)}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (checkpoint resume).

        Every key is read with a default, so a stale checkpoint written
        before the Byzantine tier existed (no ``suspicion`` ledger) resumes
        cleanly.
        """
        self.quarantined = set(state.get("quarantined", ()))
        self.backoff_s_total = float(state.get("backoff_s_total", 0.0))
        self.suspicion = {str(k): int(v)
                          for k, v in state.get("suspicion", {}).items()}


def _corrupt(payload):
    """NaN-poison a payload (array: every 8th entry; scalar: entirely)."""
    if isinstance(payload, np.ndarray):
        out = payload.copy()
        out[:: max(1, out.size // 8)] = np.nan
        return out
    return float("nan")


def _finite(payload) -> bool:
    if isinstance(payload, np.ndarray):
        return bool(np.all(np.isfinite(payload)))
    return bool(np.isfinite(payload))


def resolve_injector(faults, *, obs=None) -> FaultInjector:
    """Coerce ``faults`` (``None`` | :class:`FaultPlan` | injector) into an
    injector bound to ``obs``."""
    if isinstance(faults, FaultInjector):
        return faults
    if faults is None:
        faults = FaultPlan.none()
    if not isinstance(faults, FaultPlan):
        raise TypeError(f"faults must be a FaultPlan or FaultInjector, "
                        f"got {type(faults).__name__}")
    return FaultInjector(faults, obs=obs)
