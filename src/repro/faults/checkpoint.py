"""Experiment checkpoint files: periodic snapshots that make killed runs resumable.

A checkpoint captures everything a :class:`~repro.core.base.FederatedAlgorithm`
needs to continue *bit-identically*: the round counter, the model ``w`` and the
mixing weights ``λ`` (``p``/``q``), every RNG state (the cloud sampler, each
client's minibatch stream, auxiliary streams like the compression RNG), the
communication-tracker totals, the evaluation history so far, and the fault
layer's quarantine set.  Files are JSON via :mod:`repro.utils.serialization`
(NumPy arrays and ``np.random.Generator`` states round-trip exactly), so a
checkpoint is portable and diffable like every other artifact in this repo.

Durability and integrity
------------------------
Writes are crash-safe end to end: the payload lands in a sibling temp file
that is flushed and ``fsync``\\ ed *before* the atomic rename (a kill between
write and rename can otherwise persist an empty or partial file the rename
idiom was supposed to prevent), and the directory entry is fsynced after, so
the rename itself survives a power cut.  The previous checkpoint generation is
rotated to ``<name>.prev`` rather than overwritten — the fallback target when
the current generation turns out damaged.

Every file embeds a CRC-32 over the canonical payload bytes
(:func:`~repro.utils.serialization.canonical_bytes`) under ``__checksum__``;
:func:`load_checkpoint_file` recomputes and compares it, so torn, truncated,
*and* bit-flipped files — including flips that still parse as valid JSON — are
detected instead of silently restored.  Files written before the checksum
existed load unchanged (the envelope is additive).

The format is versioned; :func:`load_checkpoint_file` refuses files written by
an incompatible layout or for a different algorithm with a clear error instead
of mis-restoring state.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from repro.chaos.hooks import ChaosCrash, fire as chaos_fire
from repro.utils.serialization import canonical_bytes, from_jsonable, to_jsonable

__all__ = ["CHECKPOINT_FORMAT", "CHECKSUM_KEY", "save_checkpoint_file",
           "load_checkpoint_file", "previous_checkpoint_path",
           "CheckpointError"]

#: Bump when the checkpoint payload layout changes incompatibly.
CHECKPOINT_FORMAT = 1

#: Integrity envelope key; sorts after every payload key an algorithm writes.
CHECKSUM_KEY = "__checksum__"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupted, or incompatible."""


def previous_checkpoint_path(path: str | Path) -> Path:
    """Where :func:`save_checkpoint_file` rotates the prior generation."""
    path = Path(path)
    return path.with_name(path.name + ".prev")


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (the rename) to disk; best-effort off-POSIX."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def save_checkpoint_file(path: str | Path, state: dict, *,
                         keep_previous: bool = True) -> Path:
    """Write an algorithm ``state_dict`` durably and atomically to ``path``.

    The payload (with its CRC-32 envelope) is written to a sibling temp file,
    fsynced, renamed into place, and the directory entry fsynced — so neither
    a kill mid-write nor one mid-rename can destroy the previous good
    checkpoint, and a kill *after* the write cannot leave the rename only in
    the page cache.  With ``keep_previous`` (the default) the prior file is
    rotated to :func:`previous_checkpoint_path` first, preserving one older
    generation as the recovery target for post-rename corruption.
    """
    path = Path(path)
    payload = to_jsonable({"format": CHECKPOINT_FORMAT, **state})
    crc = zlib.crc32(canonical_bytes(payload))
    text = json.dumps({**payload, CHECKSUM_KEY: {"alg": "crc32", "value": crc}},
                      indent=2, sort_keys=True)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as fh:
        fh.write(text)
        fh.flush()
        torn = chaos_fire("torn_write")
        if torn is not None:
            # Simulated kill mid-write: persist only a prefix of the payload
            # and die.  ``path`` still holds the previous good generation.
            cut = max(1, min(len(text) - 1, int(torn["frac"] * len(text))))
            fh.truncate(cut)
            os.fsync(fh.fileno())
            raise ChaosCrash(
                f"chaos torn_write occurrence {torn['occurrence']}: "
                f"checkpoint write to {tmp} torn at byte {cut}/{len(text)}")
        os.fsync(fh.fileno())
    if keep_previous and path.exists():
        path.replace(previous_checkpoint_path(path))
    tmp.replace(path)
    _fsync_dir(path.parent)
    crash = chaos_fire("crash_after_save")
    if crash is not None:
        raise ChaosCrash(
            f"chaos crash_after_save occurrence {crash['occurrence']}: "
            f"killed right after durably writing {path}")
    return path


def load_checkpoint_file(path: str | Path, *,
                         expect_algorithm: str | None = None,
                         verify: bool = True) -> dict:
    """Read and validate a checkpoint written by :func:`save_checkpoint_file`.

    Verification recomputes the CRC-32 over the canonical payload bytes and
    compares it with the embedded envelope; a mismatch (bit rot, a torn write
    that still parses) raises :class:`CheckpointError`.  Legacy files without
    an envelope are accepted — they predate the checksum.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint file at {path}")
    try:
        raw = json.loads(path.read_text())
    except (ValueError, UnicodeDecodeError) as exc:
        # ValueError covers JSONDecodeError; bit rot can also break the
        # UTF-8 encoding itself, which surfaces before the parser runs.
        raise CheckpointError(
            f"corrupted checkpoint {path}: not valid JSON "
            f"(truncated, torn, or bit-flipped?): {exc}") from exc
    if not isinstance(raw, dict) or "format" not in raw:
        raise CheckpointError(
            f"{path} is not a checkpoint file (no 'format' field)")
    checksum = raw.pop(CHECKSUM_KEY, None)
    if verify and checksum is not None:
        expected = int(checksum.get("value", -1))
        actual = zlib.crc32(canonical_bytes(raw))
        if actual != expected:
            raise CheckpointError(
                f"corrupted checkpoint {path}: crc32 mismatch "
                f"(stored {expected}, recomputed {actual}) — the file was "
                f"bit-flipped or torn after writing")
    state = from_jsonable(raw)
    if state["format"] != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path} uses checkpoint format {state['format']}, "
            f"this build reads format {CHECKPOINT_FORMAT}")
    if expect_algorithm is not None and state.get("algorithm") != expect_algorithm:
        raise CheckpointError(
            f"{path} was written by algorithm {state.get('algorithm')!r}, "
            f"cannot resume a {expect_algorithm!r} run from it")
    return state
