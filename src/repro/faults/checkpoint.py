"""Experiment checkpoint files: periodic snapshots that make killed runs resumable.

A checkpoint captures everything a :class:`~repro.core.base.FederatedAlgorithm`
needs to continue *bit-identically*: the round counter, the model ``w`` and the
mixing weights ``λ`` (``p``/``q``), every RNG state (the cloud sampler, each
client's minibatch stream, auxiliary streams like the compression RNG), the
communication-tracker totals, the evaluation history so far, and the fault
layer's quarantine set.  Files are JSON via :mod:`repro.utils.serialization`
(NumPy arrays and ``np.random.Generator`` states round-trip exactly), so a
checkpoint is portable and diffable like every other artifact in this repo.

The format is versioned; :func:`load_checkpoint_file` refuses files written by
an incompatible layout or for a different algorithm with a clear error instead
of mis-restoring state.
"""

from __future__ import annotations

from pathlib import Path

from repro.utils.serialization import load_json, save_json

__all__ = ["CHECKPOINT_FORMAT", "save_checkpoint_file", "load_checkpoint_file",
           "CheckpointError"]

#: Bump when the checkpoint payload layout changes incompatibly.
CHECKPOINT_FORMAT = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupted, or incompatible."""


def save_checkpoint_file(path: str | Path, state: dict) -> Path:
    """Write an algorithm ``state_dict`` atomically to ``path``.

    The payload is written to a sibling temp file first and renamed into
    place, so a kill mid-write never destroys the previous good checkpoint.
    """
    path = Path(path)
    payload = {"format": CHECKPOINT_FORMAT, **state}
    tmp = path.with_name(path.name + ".tmp")
    save_json(tmp, payload)
    tmp.replace(path)
    return path


def load_checkpoint_file(path: str | Path, *,
                         expect_algorithm: str | None = None) -> dict:
    """Read and validate a checkpoint written by :func:`save_checkpoint_file`."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint file at {path}")
    try:
        state = load_json(path)
    except ValueError as exc:
        raise CheckpointError(f"corrupted checkpoint {path}: {exc}") from exc
    if not isinstance(state, dict) or "format" not in state:
        raise CheckpointError(
            f"{path} is not a checkpoint file (no 'format' field)")
    if state["format"] != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path} uses checkpoint format {state['format']}, "
            f"this build reads format {CHECKPOINT_FORMAT}")
    if expect_algorithm is not None and state.get("algorithm") != expect_algorithm:
        raise CheckpointError(
            f"{path} was written by algorithm {state.get('algorithm')!r}, "
            f"cannot resume a {expect_algorithm!r} run from it")
    return state
