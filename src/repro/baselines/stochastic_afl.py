"""Stochastic-AFL (Mohri et al., ICML '19) — two-layer agnostic federated learning.

Solves the minimax problem (2) over per-client weights ``q`` with *single-step*
local updates: each round the cloud samples ``m`` clients by ``q``, each takes one
SGD step from the global model, and the cloud averages; it then samples a fresh
uniform subset, collects loss estimates at the new model, and takes a projected
ascent step on ``q``.  It is the ``τ1 = τ2 = 1`` communication-heavy extreme that
HierMinimax generalizes (see the remark after Theorem 1).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import FederatedAlgorithm
from repro.data.dataset import FederatedDataset
from repro.defense.policy import robust_combine
from repro.exec import ClientWork, run_local_steps
from repro.nn.models import ModelFactory
from repro.ops.projections import Projection, identity_projection, project_simplex
from repro.sim.cloud import CloudServer
from repro.topology.sampling import sample_by_weight, sample_uniform_subset
from repro.utils.validation import check_fraction, check_positive_float, check_positive_int

__all__ = ["StochasticAFL"]


class StochasticAFL(FederatedAlgorithm):
    """Stochastic Agnostic Federated Learning over a flat client-cloud topology.

    Parameters
    ----------
    eta_q:
        Weight (ascent) learning rate.
    m_clients:
        Clients sampled per phase; defaults to full participation.
    projection_q:
        Projection onto the weight constraint set (default: probability simplex).
    """

    name = "stochastic_afl"
    is_minimax = True
    uses_hierarchy = False

    def __init__(self, dataset: FederatedDataset, model_factory: ModelFactory, *,
                 eta_q: float = 1e-3, m_clients: int | None = None,
                 projection_q: Projection | None = None,
                 batch_size: int = 1, eta_w: float = 1e-3, seed: int = 0,
                 projection_w: Projection = identity_projection,
                 logger=None, obs=None, faults=None, backend=None,
                 defense=None, timing=None, churn=None,
                 population=None) -> None:
        super().__init__(dataset, model_factory, batch_size=batch_size, eta_w=eta_w,
                         seed=seed, projection_w=projection_w, logger=logger,
                         obs=obs, faults=faults, backend=backend,
                         defense=defense, timing=timing, churn=churn,
                         population=population)
        self.eta_q = check_positive_float(eta_q, "eta_q")
        n = self.dataset.num_clients
        self.m_clients = n if m_clients is None else check_positive_int(
            m_clients, "m_clients")
        check_fraction(self.m_clients, n, "m_clients")
        self.clients = self._build_clients()
        # Flat topology: client arrivals/departures only (no edges to fail).
        self.membership.bind_flat(self.clients)
        # The "cloud" here aggregates over clients; reuse CloudServer with N slots.
        self.cloud = CloudServer(
            n, weight_projection=projection_q if projection_q is not None
            else project_simplex)
        self.q: np.ndarray = self.cloud.initial_weights()
        self._last_losses: dict[int, float] = {}

    @property
    def slots_per_round(self) -> int:
        """Single-step local updates: one slot per round."""
        return 1

    def current_weights(self) -> np.ndarray:
        """The per-client mixing weights ``q^(k)``."""
        return self.q

    # ---------------------------------------------------------- checkpointing
    def _extra_state(self) -> dict:
        return {"q": self.q,
                "last_losses": {str(k): v
                                for k, v in self._last_losses.items()}}

    def _restore_extra(self, extra: dict) -> None:
        self.q = np.asarray(extra["q"], dtype=np.float64)
        self._last_losses = {int(k): float(v)
                             for k, v in extra.get("last_losses", {}).items()}

    def run_round(self, round_index: int) -> None:
        """One AFL round: q-sampled single-step model update, then q ascent."""
        d = self.w.size
        obs = self.obs
        faults = self.faults
        injecting = faults.enabled
        # Model update phase.
        sampled = sample_by_weight(self.q, self.m_clients, self.rng)
        with obs.span("phase1_model_update", round=round_index,
                      sampled_clients=len(sampled)):
            self.tracker.record("client_cloud", "down",
                                count=len(np.unique(sampled)), floats=d)
            acc = np.zeros(d)
            n_contrib = 0
            cloud_agg = self._cloud_agg
            entries: list[tuple[str, float, np.ndarray]] = []
            # With-replacement sampling: duplicates chain in the dispatcher.
            work: list[ClientWork] = []
            membership = self.membership
            for i in sampled:
                client = self.clients[int(i)]
                if membership.enabled and not membership.client_active(
                        client.client_id):
                    continue
                # Single-step rounds: a straggler that cannot finish its one
                # step within the round is a dropout.
                steps = 1 if not injecting else faults.client_steps(
                    round_index, client.client_id, 1)
                if steps < 1:
                    continue
                work.append(ClientWork(client, 1))
            results = run_local_steps(
                self.backend, self.engine, self.w, work, lr=self.eta_w,
                projection=self.projection_w, obs=obs) if work else []
            timing = self.timing
            if timing.enabled:
                # Single-step rounds still pay the full round trip per client.
                with timing.parallel():
                    for item in work:
                        cid = item.client.client_id
                        with timing.branch():
                            timing.transfer("client_cloud", cid, d)
                            timing.compute(cid, 1)
                            timing.transfer("client_cloud", cid, d)
            for item, result in zip(work, results):
                client, w_end = item.client, result.w_end
                self.tracker.record("client_cloud", "up", count=1, floats=d)
                if injecting:
                    delivered = faults.receive(
                        round_index, "client_cloud",
                        f"client:{client.client_id}", w_end, floats=d,
                        tracker=self.tracker, ref=self.w)
                    if delivered is None:
                        continue
                    (w_end,) = delivered
                if cloud_agg is not None:
                    entries.append((f"client:{client.client_id}", 1.0, w_end))
                    continue
                acc += w_end
                n_contrib += 1
            self.tracker.sync_cycle("client_cloud")
            if cloud_agg is not None:
                # Robust aggregation replaces the sampled-client mean.
                combined = robust_combine(cloud_agg, entries, ref=self.w,
                                          faults=faults,
                                          round_index=round_index,
                                          link="client_cloud")
                if combined is not None:
                    self.w = combined
                else:
                    faults.degraded_round(round_index, "phase1_model_update")
            elif n_contrib == len(sampled):
                self.w = acc / self.m_clients
            elif n_contrib > 0:
                self.w = acc / n_contrib
            else:
                faults.degraded_round(round_index, "phase1_model_update")

        # Weight update phase: loss estimation at the fresh global model.
        with obs.span("phase2_weight_update", round=round_index):
            probed = sample_uniform_subset(len(self.clients), self.m_clients,
                                           self.rng)
            self.tracker.record("client_cloud", "down", count=len(probed),
                                floats=d)
            losses: dict[int, float] = {}
            timing = self.timing
            with timing.parallel():
                for i in probed:
                    cid = int(i)
                    est: float | None = None
                    with timing.branch():
                        if (membership.client_active(cid)
                                and (not injecting
                                     or faults.client_available(round_index,
                                                                cid))):
                            if timing.enabled:
                                timing.transfer("client_cloud", cid, d)
                                timing.probe(cid)
                                timing.transfer("client_cloud", cid, 1)
                            est = self.clients[cid].estimate_loss(self.engine,
                                                                  self.w)
                            self.tracker.record("client_cloud", "up", count=1,
                                                floats=1)
                            if injecting:
                                delivered = faults.receive(
                                    round_index, "client_cloud",
                                    f"client:{cid}", est,
                                    floats=1.0, tracker=self.tracker)
                                est = None if delivered is None else delivered[0]
                    if est is None:
                        stale = self._last_losses.get(cid)
                        if stale is not None:
                            faults.stale_loss(round_index, f"client:{cid}",
                                              stale)
                            losses[cid] = stale
                        continue
                    losses[cid] = est
            self.tracker.sync_cycle("client_cloud")
            losses = self._clip_losses(round_index, losses, "client")
            if losses:
                self._last_losses.update(losses)
                obs.gauge("worst_client_loss", max(losses.values()))
                v = self.cloud.build_loss_vector(losses)
                self.q = self.cloud.update_weights(self.q, v, eta_p=self.eta_q)
            else:
                faults.degraded_round(round_index, "phase2_weight_update")
