"""HierFAVG (Liu et al., ICC '20) — hierarchical FedAvg.

Uses the same three-layer client-edge-cloud schedule as HierMinimax (``τ1`` local
steps per client-edge aggregation, ``τ2`` aggregations per cloud round) but solves
the *minimization* problem (1): edges are sampled uniformly, there is no weight
vector and no Phase 2.  It is the ablation isolating the value of minimax fairness
from the value of the hierarchy in the paper's comparisons (Figs. 3–4, Table 2).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import EDGE_UNAVAILABLE, FederatedAlgorithm
from repro.data.dataset import FederatedDataset
from repro.defense.policy import robust_combine
from repro.nn.models import ModelFactory
from repro.ops.projections import Projection, identity_projection
from repro.topology.sampling import sample_uniform_subset
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["HierFAVG"]


class HierFAVG(FederatedAlgorithm):
    """Hierarchical Federated Averaging (minimization objective).

    Parameters
    ----------
    tau1, tau2:
        Local steps per aggregation block and blocks per cloud round
        (the paper's comparison uses 2 and 2).
    m_edges:
        Edge servers sampled (uniformly) per round; defaults to full participation.
    weight_by_data:
        ``True`` (default, faithful to Liu et al. and to Eq. (1) with ``q_n``
        proportional to data size): client-edge and edge-cloud aggregations are
        weighted by sample counts.  ``False`` uses plain means at both levels.
    """

    name = "hierfavg"
    is_minimax = False
    uses_hierarchy = True

    def __init__(self, dataset: FederatedDataset, model_factory: ModelFactory, *,
                 tau1: int = 2, tau2: int = 2, m_edges: int | None = None,
                 weight_by_data: bool = True,
                 batch_size: int = 1, eta_w: float = 1e-3, seed: int = 0,
                 projection_w: Projection = identity_projection,
                 logger=None, obs=None, faults=None, backend=None,
                 defense=None, timing=None, churn=None,
                 population=None) -> None:
        super().__init__(dataset, model_factory, batch_size=batch_size, eta_w=eta_w,
                         seed=seed, projection_w=projection_w, logger=logger,
                         obs=obs, faults=faults, backend=backend,
                         defense=defense, timing=timing, churn=churn,
                         population=population)
        self.tau1 = check_positive_int(tau1, "tau1")
        self.tau2 = check_positive_int(tau2, "tau2")
        n_e = self.dataset.num_edges
        self.m_edges = n_e if m_edges is None else check_positive_int(m_edges, "m_edges")
        check_fraction(self.m_edges, n_e, "m_edges")
        self.weight_by_data = bool(weight_by_data)
        self.edges = self._build_edges()
        self.membership.bind(self.edges)

    @property
    def slots_per_round(self) -> int:
        """``τ1·τ2`` local steps per cloud round."""
        return self.tau1 * self.tau2

    def run_round(self, round_index: int) -> None:
        """One HierFAVG round: uniform edge sample, hierarchical update, average."""
        d = self.w.size
        obs = self.obs
        faults = self.faults
        injecting = faults.enabled
        sampled = sample_uniform_subset(self.dataset.num_edges, self.m_edges, self.rng)
        with obs.span("phase1_model_update", round=round_index,
                      sampled_edges=len(sampled)):
            self.tracker.record("edge_cloud", "down", count=len(sampled),
                                floats=d)
            acc = np.zeros(d)
            total_weight = 0.0
            cloud_agg = self._cloud_agg
            entries: list[tuple[str, float, np.ndarray]] = []
            timing = self.timing
            # Sampled edges work concurrently: the round's simulated duration
            # is the slowest edge's (broadcast + blocks + upload) chain.
            with timing.parallel():
                for e in sampled:
                    edge = self.edges[int(e)]
                    with timing.branch():
                        if injecting and faults.edge_dark(round_index,
                                                          edge.edge_id):
                            continue
                        roster = self._edge_roster(edge.edge_id)
                        if roster is EDGE_UNAVAILABLE:
                            continue
                        if timing.enabled:
                            timing.transfer("edge_cloud", edge.edge_id, d)
                        w_e, _ = edge.model_update(
                            self.engine, self.w, tau1=self.tau1, tau2=self.tau2,
                            lr=self.eta_w, projection=self.projection_w,
                            checkpoint=None,
                            tracker=self.tracker,
                            weight_by_data=self.weight_by_data,
                            obs=obs, faults=faults, round_index=round_index,
                            backend=self.backend, defense=self._edge_agg,
                            timing=timing, roster=roster)
                        self.tracker.record("edge_cloud", "up", count=1,
                                            floats=d)
                        if timing.enabled:
                            timing.transfer("edge_cloud", edge.edge_id, d)
                        if injecting:
                            delivered = faults.receive(
                                round_index, "edge_cloud",
                                f"edge:{edge.edge_id}", w_e,
                                floats=d, tracker=self.tracker, ref=self.w)
                            if delivered is None:
                                continue
                            (w_e,) = delivered
                        weight = (float(edge.num_samples)
                                  if self.weight_by_data else 1.0)
                        if cloud_agg is not None:
                            entries.append((f"edge:{edge.edge_id}", weight,
                                            w_e))
                            continue
                        acc += weight * w_e
                        total_weight += weight
            self.tracker.sync_cycle("edge_cloud")
            if cloud_agg is not None:
                # Robust aggregation replaces the weighted edge mean.
                combined = robust_combine(cloud_agg, entries, ref=self.w,
                                          faults=faults,
                                          round_index=round_index,
                                          link="edge_cloud")
                if combined is not None:
                    self.w = combined
                else:
                    faults.degraded_round(round_index, "model_update")
            elif total_weight > 0.0:
                # Survivor-weighted average (dark edges leave the denominator).
                self.w = acc / total_weight
            else:
                faults.degraded_round(round_index, "model_update")
