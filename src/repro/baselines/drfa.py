"""DRFA (Deng, Kamani & Mahdavi, NeurIPS '20) — distributionally robust FedAvg.

The strongest two-layer minimax baseline: like Stochastic-AFL it optimizes
per-client weights ``q``, but clients run ``τ`` local SGD steps per round, and the
weight ascent uses a loss estimate at a *random checkpoint* — the average of the
clients' models snapshotted at a uniformly drawn step ``t' ∈ [τ]`` — with the step
scaled by ``τ``, keeping the ascent direction unbiased for the round's iterates.

HierMinimax with ``τ2 = 1`` reduces to this update pattern (remarks after
Theorems 1–2), which the test suite verifies.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import FederatedAlgorithm
from repro.data.dataset import FederatedDataset
from repro.defense.policy import robust_combine
from repro.exec import ClientWork, run_local_steps
from repro.nn.models import ModelFactory
from repro.ops.projections import Projection, identity_projection, project_simplex
from repro.sim.cloud import CloudServer
from repro.topology.sampling import sample_by_weight, sample_uniform_subset
from repro.utils.validation import check_fraction, check_positive_float, check_positive_int

__all__ = ["DRFA"]


class DRFA(FederatedAlgorithm):
    """Distributionally Robust Federated Averaging over a flat topology.

    Parameters
    ----------
    eta_q:
        Weight (ascent) learning rate.
    tau1:
        Local SGD steps per round (the paper's comparison uses 2).
    m_clients:
        Clients sampled per phase; defaults to full participation.
    projection_q:
        Projection onto the weight constraint set (default: probability simplex).
    """

    name = "drfa"
    is_minimax = True
    uses_hierarchy = False

    def __init__(self, dataset: FederatedDataset, model_factory: ModelFactory, *,
                 eta_q: float = 1e-3, tau1: int = 2, m_clients: int | None = None,
                 projection_q: Projection | None = None,
                 batch_size: int = 1, eta_w: float = 1e-3, seed: int = 0,
                 projection_w: Projection = identity_projection,
                 logger=None, obs=None, faults=None, backend=None,
                 defense=None, timing=None, churn=None,
                 population=None) -> None:
        super().__init__(dataset, model_factory, batch_size=batch_size, eta_w=eta_w,
                         seed=seed, projection_w=projection_w, logger=logger,
                         obs=obs, faults=faults, backend=backend,
                         defense=defense, timing=timing, churn=churn,
                         population=population)
        self.eta_q = check_positive_float(eta_q, "eta_q")
        self.tau1 = check_positive_int(tau1, "tau1")
        n = self.dataset.num_clients
        self.m_clients = n if m_clients is None else check_positive_int(
            m_clients, "m_clients")
        check_fraction(self.m_clients, n, "m_clients")
        self.clients = self._build_clients()
        # Flat topology: client arrivals/departures only (no edges to fail).
        self.membership.bind_flat(self.clients)
        self.cloud = CloudServer(
            n, weight_projection=projection_q if projection_q is not None
            else project_simplex)
        self.q: np.ndarray = self.cloud.initial_weights()
        self._last_losses: dict[int, float] = {}

    @property
    def slots_per_round(self) -> int:
        """``τ1`` local steps per round."""
        return self.tau1

    def current_weights(self) -> np.ndarray:
        """The per-client mixing weights ``q^(k)``."""
        return self.q

    # ---------------------------------------------------------- checkpointing
    def _extra_state(self) -> dict:
        return {"q": self.q,
                "last_losses": {str(k): v
                                for k, v in self._last_losses.items()}}

    def _restore_extra(self, extra: dict) -> None:
        self.q = np.asarray(extra["q"], dtype=np.float64)
        self._last_losses = {int(k): float(v)
                             for k, v in extra.get("last_losses", {}).items()}

    def run_round(self, round_index: int) -> None:
        """One DRFA round: τ1 local steps with a random checkpoint, then q ascent."""
        d = self.w.size
        obs = self.obs
        faults = self.faults
        injecting = faults.enabled
        sampled = sample_by_weight(self.q, self.m_clients, self.rng)
        # Checkpoint step t' uniform in {1, ..., tau1}.
        t_prime = int(self.rng.integers(1, self.tau1 + 1))
        with obs.span("phase1_model_update", round=round_index,
                      sampled_clients=len(sampled), t_prime=t_prime):
            self.tracker.record("client_cloud", "down",
                                count=len(np.unique(sampled)), floats=d + 1)
            acc = np.zeros(d)
            acc_ckpt = np.zeros(d)
            n_contrib = 0
            n_ckpt = 0
            cloud_agg = self._cloud_agg
            entries: list[tuple[str, float, np.ndarray]] = []
            ckpt_entries: list[tuple[str, float, np.ndarray]] = []
            # Sampling is with replacement: the same client may appear twice;
            # the dispatcher chains duplicate occurrences so its minibatch
            # stream advances exactly as this loop used to advance it.
            work: list[ClientWork] = []
            membership = self.membership
            for i in sampled:
                client = self.clients[int(i)]
                if membership.enabled and not membership.client_active(
                        client.client_id):
                    continue
                steps = self.tau1 if not injecting else faults.client_steps(
                    round_index, client.client_id, self.tau1)
                if steps < 1:
                    continue
                work.append(ClientWork(
                    client, steps,
                    t_prime if t_prime <= steps else None))
            results = run_local_steps(
                self.backend, self.engine, self.w, work, lr=self.eta_w,
                projection=self.projection_w, obs=obs) if work else []
            timing = self.timing
            if timing.enabled:
                # Sampled clients run concurrently; the checkpoint snapshot
                # rides along with the round-final upload.
                with timing.parallel():
                    for item in work:
                        cid = item.client.client_id
                        scale = (faults.plan.straggler_slowdown
                                 if injecting and item.steps < self.tau1
                                 else 1.0)
                        with timing.branch():
                            timing.transfer("client_cloud", cid, d + 1)
                            timing.compute(cid, item.steps, scale=scale)
                            timing.transfer(
                                "client_cloud", cid,
                                (2 if item.checkpoint_after is not None
                                 else 1) * d)
            for item, result in zip(work, results):
                client = item.client
                takes_ckpt = item.checkpoint_after is not None
                w_end, w_ckpt = result.w_end, result.w_checkpoint
                self.tracker.record("client_cloud", "up", count=1,
                                    floats=(2 if takes_ckpt else 1) * d)
                if injecting:
                    delivered = faults.receive(
                        round_index, "client_cloud",
                        f"client:{client.client_id}", w_end, w_ckpt,
                        floats=(2 if takes_ckpt else 1) * d,
                        tracker=self.tracker, ref=self.w)
                    if delivered is None:
                        continue
                    w_end, w_ckpt = delivered
                if cloud_agg is not None:
                    entries.append((f"client:{client.client_id}", 1.0, w_end))
                    if w_ckpt is not None:
                        ckpt_entries.append(
                            (f"client:{client.client_id}", 1.0, w_ckpt))
                    continue
                acc += w_end
                n_contrib += 1
                if w_ckpt is not None:
                    acc_ckpt += w_ckpt
                    n_ckpt += 1
            self.tracker.sync_cycle("client_cloud")
            if cloud_agg is not None:
                # Robust aggregation replaces the sampled-client mean for both
                # the round model and the random-checkpoint model.
                w_ref = self.w
                combined = robust_combine(cloud_agg, entries, ref=w_ref,
                                          faults=faults,
                                          round_index=round_index,
                                          link="client_cloud")
                if combined is not None:
                    self.w = combined
                else:
                    faults.degraded_round(round_index, "phase1_model_update")
                ckpt_combined = robust_combine(cloud_agg, ckpt_entries,
                                               ref=w_ref, faults=faults,
                                               round_index=round_index,
                                               link="client_cloud")
                if ckpt_combined is not None:
                    w_checkpoint = ckpt_combined
                else:
                    faults.checkpoint_fallback(round_index,
                                               "phase1_model_update")
                    w_checkpoint = self.w
            else:
                if n_contrib == len(sampled):
                    self.w = acc / self.m_clients
                elif n_contrib > 0:
                    self.w = acc / n_contrib
                else:
                    faults.degraded_round(round_index, "phase1_model_update")
                if n_ckpt == len(sampled):
                    w_checkpoint = acc_ckpt / self.m_clients
                elif n_ckpt > 0:
                    w_checkpoint = acc_ckpt / n_ckpt
                else:
                    faults.checkpoint_fallback(round_index,
                                               "phase1_model_update")
                    w_checkpoint = self.w

        # Weight ascent phase at the checkpoint model, scaled by tau1.
        with obs.span("phase2_weight_update", round=round_index):
            probed = sample_uniform_subset(len(self.clients), self.m_clients,
                                           self.rng)
            self.tracker.record("client_cloud", "down", count=len(probed),
                                floats=d)
            losses: dict[int, float] = {}
            timing = self.timing
            with timing.parallel():
                for i in probed:
                    cid = int(i)
                    client = self.clients[cid]
                    est: float | None = None
                    with timing.branch():
                        if (membership.client_active(cid)
                                and (not injecting
                                     or faults.client_available(round_index,
                                                                cid))):
                            if timing.enabled:
                                timing.transfer("client_cloud", cid, d)
                                timing.probe(cid)
                                timing.transfer("client_cloud", cid, 1)
                            est = client.estimate_loss(self.engine,
                                                       w_checkpoint)
                            self.tracker.record("client_cloud", "up", count=1,
                                                floats=1)
                            if injecting:
                                delivered = faults.receive(
                                    round_index, "client_cloud",
                                    f"client:{cid}", est,
                                    floats=1.0, tracker=self.tracker)
                                est = None if delivered is None else delivered[0]
                    if est is None:
                        stale = self._last_losses.get(cid)
                        if stale is not None:
                            faults.stale_loss(round_index, f"client:{cid}",
                                              stale)
                            losses[cid] = stale
                        continue
                    losses[cid] = est
            self.tracker.sync_cycle("client_cloud")
            losses = self._clip_losses(round_index, losses, "client")
            if losses:
                self._last_losses.update(losses)
                obs.gauge("worst_client_loss", max(losses.values()))
                v = self.cloud.build_loss_vector(losses)
                self.q = self.cloud.update_weights(self.q, v, eta_p=self.eta_q,
                                                   tau1=self.tau1)
            else:
                faults.degraded_round(round_index, "phase2_weight_update")
