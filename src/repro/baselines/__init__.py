"""Baseline algorithms: FedAvg, Stochastic-AFL, DRFA, and HierFAVG."""

from repro.baselines.drfa import DRFA
from repro.baselines.fedavg import FedAvg
from repro.baselines.hierfavg import HierFAVG
from repro.baselines.registry import ALGORITHMS, make_algorithm
from repro.baselines.stochastic_afl import StochasticAFL

__all__ = [
    "DRFA",
    "FedAvg",
    "HierFAVG",
    "ALGORITHMS",
    "make_algorithm",
    "StochasticAFL",
]
