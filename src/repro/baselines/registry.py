"""Algorithm registry: build any of the five methods by name.

The experiment harness and benches refer to algorithms by the names used in the
paper's figures; :func:`make_algorithm` instantiates them with a uniform keyword
interface, forwarding only the parameters each algorithm accepts.
"""

from __future__ import annotations

from typing import Any, Type

from repro.baselines.drfa import DRFA
from repro.baselines.fedavg import FedAvg
from repro.baselines.hierfavg import HierFAVG
from repro.baselines.stochastic_afl import StochasticAFL
from repro.core.base import FederatedAlgorithm
from repro.core.hierminimax import HierMinimax
from repro.core.semiasync import SemiAsyncHierMinimax

__all__ = ["ALGORITHMS", "make_algorithm"]

ALGORITHMS: dict[str, Type[FederatedAlgorithm]] = {
    "fedavg": FedAvg,
    "stochastic_afl": StochasticAFL,
    "drfa": DRFA,
    "hierfavg": HierFAVG,
    "hierminimax": HierMinimax,
    "semiasync_hierminimax": SemiAsyncHierMinimax,
}

# Which construction keywords each algorithm understands beyond the common set.
_HIERMINIMAX_KEYS = frozenset({"eta_p", "tau1", "tau2", "m_edges",
                               "projection_p", "use_checkpoint", "compressor"})
_EXTRA_KEYS: dict[str, frozenset[str]] = {
    "fedavg": frozenset({"tau1", "m_clients", "weight_by_data"}),
    "stochastic_afl": frozenset({"eta_q", "m_clients", "projection_q"}),
    "drfa": frozenset({"eta_q", "tau1", "m_clients", "projection_q"}),
    "hierfavg": frozenset({"tau1", "tau2", "m_edges", "weight_by_data"}),
    "hierminimax": _HIERMINIMAX_KEYS,
    "semiasync_hierminimax": _HIERMINIMAX_KEYS | {"staleness"},
}
_COMMON_KEYS = frozenset(
    {"batch_size", "eta_w", "seed", "projection_w", "logger", "obs", "faults",
     "backend", "defense", "timing", "churn", "population"})

# Minimax weight learning rate aliases: the paper's η_p maps onto the two-layer
# baselines' η_q so one experiment config drives all methods.
_ETA_ALIASES: dict[str, str] = {
    "stochastic_afl": "eta_q",
    "drfa": "eta_q",
    "hierminimax": "eta_p",
    "semiasync_hierminimax": "eta_p",
}


def make_algorithm(name: str, dataset, model_factory, **kwargs: Any,
                   ) -> FederatedAlgorithm:
    """Instantiate algorithm ``name`` with only the keywords it understands.

    ``eta_p`` is transparently renamed to ``eta_q`` for the two-layer minimax
    baselines.  ``m_edges`` supplied to a two-layer method is converted to the
    equivalent client count (``m_edges × N0``) so the participation *fraction*
    matches across architectures, as in the paper's comparisons.

    ``dataset`` may also be a :class:`~repro.population.PopulationSpec` (or a
    pre-built population): shape queries then run against its lazy dataset
    view and each call builds a fresh virtual population, so clients are
    derived on demand instead of materialized (see :mod:`repro.population`).
    """
    if name not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {name!r}; options: {sorted(ALGORITHMS)}")
    cls = ALGORITHMS[name]
    kwargs = dict(kwargs)

    shape = dataset
    if getattr(dataset, "is_population_spec", False):
        # Shape queries (clients_per_edge and friends) live on the lazy view;
        # the spec itself flows through to the constructor, where each
        # algorithm resolves its own fresh VirtualPopulation.
        from repro.population import VirtualPopulation

        shape = VirtualPopulation(dataset).dataset
    elif getattr(dataset, "is_population", False):
        shape = dataset.dataset

    # eta alias: accept eta_p for every minimax method.
    if "eta_p" in kwargs and _ETA_ALIASES.get(name) == "eta_q":
        kwargs["eta_q"] = kwargs.pop("eta_p")

    # participation alias: m_edges -> m_clients for flat methods.
    if "m_edges" in kwargs and name in ("fedavg", "stochastic_afl", "drfa"):
        m_edges = kwargs.pop("m_edges")
        if m_edges is not None and "m_clients" not in kwargs:
            counts = shape.clients_per_edge()
            n0 = counts[0] if len(set(counts)) == 1 else max(
                1, shape.num_clients // shape.num_edges)
            kwargs["m_clients"] = min(shape.num_clients, int(m_edges) * int(n0))

    allowed = _COMMON_KEYS | _EXTRA_KEYS[name]
    filtered = {k: v for k, v in kwargs.items() if k in allowed}
    # Cross-algorithm experiment configs legitimately carry parameters some
    # methods do not use (eta_p for minimization methods, tau1/tau2 for
    # single-step or two-layer ones); drop those silently, raise on typos.
    ignorable = {"eta_p", "eta_q", "tau1", "tau2", "m_edges", "m_clients",
                 "projection_p", "projection_q", "weight_by_data", "staleness"}
    unknown = set(kwargs) - allowed - ignorable
    if unknown:
        raise TypeError(f"{name} does not accept parameters {sorted(unknown)}")
    return cls(dataset, model_factory, **filtered)
