"""FedAvg (McMahan et al., AISTATS '17) — the standard two-layer FL baseline.

Solves the minimization problem (1) with ``q_n`` proportional to client data sizes:
each round the cloud samples ``m`` clients uniformly, broadcasts the global model,
each sampled client runs ``τ1`` local SGD steps, and the cloud averages the returns
weighted by local dataset size.  No edge servers, no mixing-weight updates — the
fairness-blind control of the paper's figures.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import FederatedAlgorithm
from repro.data.dataset import FederatedDataset
from repro.defense.policy import robust_combine
from repro.exec import ClientWork, run_local_steps
from repro.nn.models import ModelFactory
from repro.ops.projections import Projection, identity_projection
from repro.topology.sampling import sample_uniform_subset
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["FedAvg"]


class FedAvg(FederatedAlgorithm):
    """Federated Averaging over a flat client-cloud topology.

    Parameters
    ----------
    tau1:
        Local SGD steps per round (the paper's comparison uses 2).
    m_clients:
        Clients sampled per round; defaults to full participation.
    weight_by_data:
        Aggregate proportionally to client dataset sizes (the q_n of Eq. (1));
        ``False`` uses a plain mean.
    """

    name = "fedavg"
    is_minimax = False
    uses_hierarchy = False

    def __init__(self, dataset: FederatedDataset, model_factory: ModelFactory, *,
                 tau1: int = 2, m_clients: int | None = None,
                 weight_by_data: bool = True,
                 batch_size: int = 1, eta_w: float = 1e-3, seed: int = 0,
                 projection_w: Projection = identity_projection,
                 logger=None, obs=None, faults=None, backend=None,
                 defense=None, timing=None, churn=None,
                 population=None) -> None:
        super().__init__(dataset, model_factory, batch_size=batch_size, eta_w=eta_w,
                         seed=seed, projection_w=projection_w, logger=logger,
                         obs=obs, faults=faults, backend=backend,
                         defense=defense, timing=timing, churn=churn,
                         population=population)
        self.tau1 = check_positive_int(tau1, "tau1")
        n = self.dataset.num_clients
        self.m_clients = n if m_clients is None else check_positive_int(
            m_clients, "m_clients")
        check_fraction(self.m_clients, n, "m_clients")
        self.weight_by_data = bool(weight_by_data)
        self.clients = self._build_clients()
        # Flat topology: client arrivals/departures only (no edges to fail).
        self.membership.bind_flat(self.clients)

    @property
    def slots_per_round(self) -> int:
        return self.tau1

    def run_round(self, round_index: int) -> None:
        """One FedAvg round: uniform sample, τ1 local steps, weighted average."""
        d = self.w.size
        obs = self.obs
        faults = self.faults
        injecting = faults.enabled
        sampled = sample_uniform_subset(len(self.clients), self.m_clients, self.rng)
        with obs.span("phase1_model_update", round=round_index,
                      sampled_clients=len(sampled)):
            self.tracker.record("client_cloud", "down", count=len(sampled),
                                floats=d)
            acc = np.zeros(d)
            total_weight = 0.0
            cloud_agg = self._cloud_agg
            entries: list[tuple[str, float, np.ndarray]] = []
            work: list[ClientWork] = []
            membership = self.membership
            for i in sampled:
                client = self.clients[int(i)]
                if membership.enabled and not membership.client_active(
                        client.client_id):
                    continue
                steps = self.tau1 if not injecting else faults.client_steps(
                    round_index, client.client_id, self.tau1)
                if steps < 1:
                    continue
                work.append(ClientWork(client, steps))
            results = run_local_steps(
                self.backend, self.engine, self.w, work, lr=self.eta_w,
                projection=self.projection_w, obs=obs) if work else []
            timing = self.timing
            if timing.enabled:
                # Sampled clients work concurrently on the flat client-cloud
                # link; the round costs the slowest (down + steps + up) chain.
                with timing.parallel():
                    for item in work:
                        cid = item.client.client_id
                        scale = (faults.plan.straggler_slowdown
                                 if injecting and item.steps < self.tau1
                                 else 1.0)
                        with timing.branch():
                            timing.transfer("client_cloud", cid, d)
                            timing.compute(cid, item.steps, scale=scale)
                            timing.transfer("client_cloud", cid, d)
            for item, result in zip(work, results):
                client, w_end = item.client, result.w_end
                self.tracker.record("client_cloud", "up", count=1, floats=d)
                if injecting:
                    delivered = faults.receive(
                        round_index, "client_cloud",
                        f"client:{client.client_id}", w_end, floats=d,
                        tracker=self.tracker, ref=self.w)
                    if delivered is None:
                        continue
                    (w_end,) = delivered
                weight = float(client.num_samples) if self.weight_by_data else 1.0
                if cloud_agg is not None:
                    entries.append((f"client:{client.client_id}", weight, w_end))
                    continue
                acc += weight * w_end
                total_weight += weight
            self.tracker.sync_cycle("client_cloud")
            if cloud_agg is not None:
                # Robust aggregation replaces the weighted client mean.
                combined = robust_combine(cloud_agg, entries, ref=self.w,
                                          faults=faults,
                                          round_index=round_index,
                                          link="client_cloud")
                if combined is not None:
                    self.w = combined
                else:
                    faults.degraded_round(round_index, "model_update")
            elif total_weight > 0.0:
                # Survivor-weighted average: dropped clients simply leave the
                # denominator, which is the weighted-mean renormalization.
                self.w = acc / total_weight
            else:
                faults.degraded_round(round_index, "model_update")
