"""Upload compression: QSGD quantization and top-k sparsification extensions."""

from repro.compression.base import Compressor, IdentityCompressor
from repro.compression.quantization import QSGDQuantizer
from repro.compression.sparsification import TopKSparsifier

__all__ = ["Compressor", "IdentityCompressor", "QSGDQuantizer", "TopKSparsifier"]
