"""Top-k sparsification with optional error feedback.

A biased but very aggressive compressor: keep the ``k`` largest-magnitude
coordinates of the update and drop the rest.  With *error feedback* (Karimireddy
et al., 2019) the dropped residual is added to the next update from the same
sender, which restores convergence for biased compressors; senders are
distinguished by an integer key.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["TopKSparsifier"]


class TopKSparsifier:
    """Keep the top ``fraction`` of coordinates by magnitude.

    Parameters
    ----------
    fraction:
        Fraction of coordinates transmitted, in (0, 1].
    error_feedback:
        Accumulate the dropped residual per sender and reinject it into that
        sender's next update.  Callers must pass a stable ``sender`` key to
        :meth:`compress_from` for feedback to attach correctly.
    """

    def __init__(self, fraction: float = 0.1, *, error_feedback: bool = True) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)
        self.error_feedback = bool(error_feedback)
        self._residuals: dict[int, np.ndarray] = {}

    def compress(self, delta: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Sparsify ``delta`` without sender attribution (no error feedback)."""
        return self._topk(np.asarray(delta, dtype=np.float64))

    def compress_from(self, sender: int, delta: np.ndarray,
                      rng: np.random.Generator) -> np.ndarray:
        """Sparsify ``delta`` from ``sender``, applying that sender's residual."""
        delta = np.asarray(delta, dtype=np.float64)
        if self.error_feedback:
            residual = self._residuals.get(sender)
            if residual is not None:
                delta = delta + residual
        kept = self._topk(delta)
        if self.error_feedback:
            self._residuals[sender] = delta - kept
        return kept

    def _topk(self, delta: np.ndarray) -> np.ndarray:
        d = delta.size
        k = max(1, int(math.ceil(self.fraction * d)))
        if k >= d:
            return delta.copy()
        out = np.zeros_like(delta)
        idx = np.argpartition(np.abs(delta), d - k)[d - k:]
        out[idx] = delta[idx]
        return out

    def payload_floats(self, dim: int) -> float:
        """k (value + 32-bit index) pairs, in float64 equivalents."""
        k = max(1, int(math.ceil(self.fraction * dim)))
        return k * 1.5  # 64-bit value + 32-bit index per kept coordinate

    def reset(self) -> None:
        """Drop all accumulated residuals (between runs)."""
        self._residuals.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TopKSparsifier(fraction={self.fraction}, "
                f"error_feedback={self.error_feedback})")
