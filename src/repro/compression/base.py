"""Upload-compression interface for communication-efficient variants.

The paper's related work extends HierFAVG with model quantization
(Hier-Local-QSGD, ref. [22]); this package provides the same capability for
HierMinimax as an optional extension.  A :class:`Compressor` maps a model
*update* (the difference between an uploaded model and the reference model the
receiver already holds) to a compressed-then-decompressed surrogate, and reports
the payload size of the encoded form in float64-equivalents so the
communication tracker stays meaningful.

Compression is applied to deltas, not raw parameters: deltas shrink as training
converges, which is what makes aggressive quantization viable.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["Compressor", "IdentityCompressor"]


@runtime_checkable
class Compressor(Protocol):
    """Protocol implemented by all upload compressors."""

    def compress(self, delta: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the receiver-side reconstruction of ``delta``."""
        ...

    def payload_floats(self, dim: int) -> float:
        """Encoded payload size for a ``dim``-vector, in float64 equivalents."""
        ...


class IdentityCompressor:
    """No-op compressor (full-precision uploads)."""

    def compress(self, delta: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return ``delta`` unchanged."""
        return delta

    def payload_floats(self, dim: int) -> float:
        """A full float64 per coordinate."""
        return float(dim)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "IdentityCompressor()"
