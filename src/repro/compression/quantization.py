"""QSGD-style stochastic quantization (Alistarh et al.; Hier-Local-QSGD's choice).

``QSGDQuantizer(levels=s)`` maps a vector ``v`` to

    q(v)_i = ||v||₂ · sign(v_i) · ζ_i / s,

where ``ζ_i ∈ {⌊s·|v_i|/||v||⌋, ⌈s·|v_i|/||v||⌉}`` is randomized so that
``E[q(v)] = v`` (unbiasedness — the property the convergence analyses of
quantized FL rest on).  The encoded form is one float norm plus
``log2(2s+1)`` bits per coordinate; :meth:`payload_floats` reports that size in
float64 equivalents.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["QSGDQuantizer"]


class QSGDQuantizer:
    """Unbiased stochastic quantizer with ``levels`` quantization levels.

    Parameters
    ----------
    levels:
        Number of positive quantization levels ``s`` (>= 1).  ``s = 1`` is
        ternary sign quantization; larger ``s`` is finer.
    """

    def __init__(self, levels: int = 16) -> None:
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        self.levels = int(levels)

    def compress(self, delta: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Quantize-dequantize ``delta`` (unbiased; preserves the zero vector)."""
        delta = np.asarray(delta, dtype=np.float64)
        norm = float(np.linalg.norm(delta))
        if norm == 0.0:
            return np.zeros_like(delta)
        s = self.levels
        scaled = np.abs(delta) * (s / norm)          # in [0, s]
        floor = np.floor(scaled)
        prob_up = scaled - floor                      # P(round up)
        zeta = floor + (rng.random(delta.shape) < prob_up)
        return np.sign(delta) * zeta * (norm / s)

    def payload_floats(self, dim: int) -> float:
        """One norm float + ``ceil(log2(2s+1))`` bits per coordinate, in floats."""
        bits_per_coord = math.ceil(math.log2(2 * self.levels + 1))
        return 1.0 + dim * bits_per_coord / 64.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QSGDQuantizer(levels={self.levels})"
