"""General multi-layer hub-and-spoke trees.

The paper presents the three-layer client-edge-cloud system as "a representative
example" of multi-layer hub-and-spoke topologies (§3) and notes the approach
generalizes.  :class:`HierarchyTree` is that generalization: a rooted tree whose
root is the cloud, whose leaves are clients, and whose interior levels are
aggregation servers.  Levels are numbered from 0 (cloud) to ``depth`` (clients).

Trees are typically built from per-level branching factors
(:meth:`HierarchyTree.regular`); arbitrary shapes can be assembled from explicit
children lists.  The tree knows how to map its leaves onto the flat client
ordering of a :class:`~repro.data.FederatedDataset` whose "edge areas" are the
level-1 subtrees.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["HierarchyTree"]


class HierarchyTree:
    """A rooted aggregation tree: cloud (level 0) → servers → clients (leaves).

    Parameters
    ----------
    children:
        ``children[level][i]`` lists the child indices (at ``level + 1``) of node
        ``i`` at ``level``.  ``children`` has one entry per non-leaf level; nodes
        at each level are indexed ``0..n_level-1`` and every node at level
        ``l + 1`` must have exactly one parent at level ``l``.
    """

    def __init__(self, children: Sequence[Sequence[Sequence[int]]]) -> None:
        if not children:
            raise ValueError("a hierarchy needs at least one aggregation level")
        self._children: list[list[list[int]]] = [
            [list(c) for c in level] for level in children]
        # Validate: level sizes chain correctly and every child has one parent.
        if len(self._children[0]) != 1:
            raise ValueError("level 0 must contain exactly the cloud node")
        for level, nodes in enumerate(self._children):
            seen: set[int] = set()
            for node, kids in enumerate(nodes):
                if not kids:
                    raise ValueError(
                        f"node {node} at level {level} has no children")
                for k in kids:
                    if k in seen:
                        raise ValueError(
                            f"node {k} at level {level + 1} has two parents")
                    seen.add(k)
            next_size = (len(self._children[level + 1])
                         if level + 1 < len(self._children)
                         else self.num_leaves_at(level + 1))
            if seen != set(range(next_size)):
                raise ValueError(
                    f"children of level {level} must cover 0..{next_size - 1} "
                    f"exactly; got {sorted(seen)}")

    # ------------------------------------------------------------------ shape
    @classmethod
    def regular(cls, branching: Sequence[int]) -> "HierarchyTree":
        """A regular tree from per-level branching factors.

        ``branching = [b1, …, bL]`` gives the cloud ``b1`` children, each of
        those ``b2`` children, and so on; leaves (clients) number
        ``b1·b2·…·bL``.  ``branching = [N_E, N0]`` reproduces the paper's
        three-layer layout.
        """
        branching = [int(b) for b in branching]
        if not branching or any(b < 1 for b in branching):
            raise ValueError(f"branching factors must be >= 1, got {branching}")
        children: list[list[list[int]]] = []
        width = 1
        for b in branching:
            level = [list(range(i * b, (i + 1) * b)) for i in range(width)]
            children.append(level)
            width *= b
        return cls(children)

    def num_leaves_at(self, level: int) -> int:
        """Number of nodes at ``level`` (the leaf count when ``level == depth``)."""
        if level == 0:
            return 1
        count = 0
        for kids in self._children[level - 1]:
            count += len(kids)
        return count

    @property
    def depth(self) -> int:
        """Number of links on a root-to-leaf path (2 for client-edge-cloud)."""
        return len(self._children)

    @property
    def num_clients(self) -> int:
        """Leaf count."""
        return self.num_leaves_at(self.depth)

    @property
    def num_top_areas(self) -> int:
        """Level-1 subtree count — the ``N_E`` of the minimax weight vector."""
        return len(self._children[0][0])

    def children_of(self, level: int, node: int) -> list[int]:
        """Child indices (at ``level + 1``) of ``node`` at ``level``."""
        if not 0 <= level < self.depth:
            raise IndexError(f"level {level} out of range [0, {self.depth})")
        nodes = self._children[level]
        if not 0 <= node < len(nodes):
            raise IndexError(
                f"node {node} out of range [0, {len(nodes)}) at level {level}")
        return list(nodes[node])

    def leaves_under(self, level: int, node: int) -> np.ndarray:
        """Global leaf (client) indices in the subtree rooted at (level, node)."""
        if level == self.depth:
            return np.array([node], dtype=np.intp)
        out: list[np.ndarray] = []
        for child in self.children_of(level, node):
            out.append(self.leaves_under(level + 1, child))
        return np.concatenate(out)

    def level_sizes(self) -> list[int]:
        """Node counts per level, root to leaves."""
        return [self.num_leaves_at(level) for level in range(self.depth + 1)]

    def link_names(self) -> list[str]:
        """Tracker link names, top to bottom: ``level_1`` … ``level_depth``."""
        return [f"level_{i}" for i in range(1, self.depth + 1)]

    def validate_dataset(self, dataset) -> None:
        """Check that a federated dataset's clients map cleanly onto the leaves.

        Clients are assigned to leaves in flat (edge-major) order, so (a) the
        leaf count must equal the client count, and (b) every level-1 subtree
        boundary must coincide with a dataset edge-area boundary — no data
        distribution may straddle two top-level areas, or the minimax weights
        would mix distributions.  Deeper trees may group several dataset areas
        under one top-level subtree (e.g. regions holding multiple edge areas).
        """
        if self.num_clients != dataset.num_clients:
            raise ValueError(
                f"tree has {self.num_clients} leaves but the dataset has "
                f"{dataset.num_clients} clients")
        area_bounds = set(np.cumsum(dataset.clients_per_edge()).tolist())
        offset = 0
        for top in self.children_of(0, 0):
            offset += self.leaves_under(1, top).size
            if offset not in area_bounds:
                raise ValueError(
                    f"level-1 subtree boundary at client {offset} splits a "
                    f"dataset edge area (area boundaries: {sorted(area_bounds)})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HierarchyTree(levels={self.level_sizes()})"
