"""HierMinimax generalized to arbitrary-depth hierarchies.

The paper formulates the algorithm for the three-layer client-edge-cloud network
and observes that both the system model ("multi-layer hub-and-spoke-type network
topology", §3) and the method generalize.  :class:`MultiLevelHierMinimax` is that
generalization:

* the network is a :class:`~repro.multilayer.tree.HierarchyTree` of any depth
  ``L``; level 0 is the cloud, level ``L`` the clients;
* each level ``l ∈ {1, …, L}`` has its own period ``τ_l`` — a node at level
  ``l-1`` performs ``τ_l`` aggregations of its children per invocation, and the
  leaves run ``τ_L`` local SGD steps per invocation, so one cloud round spans
  ``Π_l τ_l`` training slots (for ``L = 2`` this is the paper's ``τ1·τ2``);
* the checkpoint index generalizes from ``(c1, c2) ∈ [τ1]×[τ2]`` to a
  mixed-radix digit vector ``(c_1, …, c_L) ∈ [τ_1]×…×[τ_L]`` sampled uniformly,
  each subtree snapshotting during its parent's ``c``-th iteration — preserving
  the uniform-over-slots property behind the unbiased weight gradient;
* minimax weights ``p`` live on the level-1 subtrees (the generalization of edge
  areas), sampled/updated exactly as in Algorithm 1.

With ``depth = 2`` this class executes the same schedule as
:class:`~repro.core.hierminimax.HierMinimax` (verified by the test suite).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.base import FederatedAlgorithm
from repro.data.dataset import FederatedDataset
from repro.defense.policy import clip_loss_reports, robust_combine
from repro.exec import ClientWork, run_local_steps
from repro.multilayer.tree import HierarchyTree
from repro.nn.models import ModelFactory
from repro.ops.projections import Projection, identity_projection, project_simplex
from repro.sim.cloud import CloudServer
from repro.topology.comm import CommunicationTracker
from repro.topology.sampling import sample_by_weight, sample_uniform_subset
from repro.utils.validation import check_fraction, check_positive_float, check_positive_int

__all__ = ["MultiLevelHierMinimax"]


class MultiLevelHierMinimax(FederatedAlgorithm):
    """Minimax-fair optimization over an L-level aggregation tree.

    Parameters
    ----------
    dataset:
        Federated data; its edge areas must match the tree's level-1 subtrees
        (``tree.validate_dataset``).
    tree:
        The aggregation hierarchy; default: the paper's 3-layer tree inferred
        from the dataset layout (``regular([N_E, N0])``).
    taus:
        Per-level periods, top first: ``taus[l-1]`` is the number of iterations a
        node at level ``l`` performs per invocation — aggregation blocks for
        interior servers, local SGD steps for the leaf clients.  For the paper's
        three-layer system this is ``(τ2, τ1)``.  Default: all 2 (the paper's
        experimental setting).
    eta_p, m_top, projection_p:
        Weight-ascent rate, sampled level-1 subtrees per phase, and the
        projection onto ``P`` — as in :class:`~repro.core.HierMinimax`.
    """

    name = "multilevel_hierminimax"
    is_minimax = True
    uses_hierarchy = True

    def __init__(self, dataset: FederatedDataset, model_factory: ModelFactory, *,
                 tree: HierarchyTree | None = None,
                 taus: tuple[int, ...] | None = None,
                 eta_p: float = 1e-3, m_top: int | None = None,
                 projection_p: Projection | None = None,
                 batch_size: int = 1, eta_w: float = 1e-3, seed: int = 0,
                 projection_w: Projection = identity_projection,
                 logger=None, obs=None, faults=None, backend=None,
                 defense=None, timing=None, churn=None,
                 population=None) -> None:
        super().__init__(dataset, model_factory, batch_size=batch_size,
                         eta_w=eta_w, seed=seed, projection_w=projection_w,
                         logger=logger, obs=obs, faults=faults, backend=backend,
                         defense=defense, timing=timing, churn=churn,
                         population=population)
        if tree is None:
            counts = self.dataset.clients_per_edge()
            if len(set(counts)) != 1:
                raise ValueError("default tree requires a uniform dataset layout; "
                                 "pass an explicit HierarchyTree otherwise")
            tree = HierarchyTree.regular([self.dataset.num_edges, counts[0]])
        tree.validate_dataset(self.dataset)
        self.tree = tree
        depth = tree.depth
        if taus is None:
            taus = tuple([2] * depth)
        if len(taus) != depth:
            raise ValueError(f"need one tau per level: {depth} levels, "
                             f"got {len(taus)} taus")
        self.taus = tuple(check_positive_int(t, f"taus[{i}]")
                          for i, t in enumerate(taus))
        self.eta_p = check_positive_float(eta_p, "eta_p")
        n_top = tree.num_top_areas
        self.m_top = n_top if m_top is None else check_positive_int(m_top, "m_top")
        check_fraction(self.m_top, n_top, "m_top")
        self.clients = self._build_clients()
        self.cloud = CloudServer(
            n_top, weight_projection=projection_p if projection_p is not None
            else project_simplex)
        self.p: np.ndarray = self.cloud.initial_weights()
        # Replace the base tracker with one that knows the per-level links.
        self.tracker = CommunicationTracker(extra_links=tuple(tree.link_names()))
        self._top_nodes = tree.children_of(0, 0)
        # Level-1 subtrees are structural (a client's leaf position is fixed by
        # the tree), so churn runs in flat mode: arrivals/departures plus
        # crash/partition episodes on the top areas, without re-homing.
        self.membership.bind_flat(self.clients, num_edges=tree.num_top_areas)
        self._last_losses: dict[int, float] = {}

    # ---------------------------------------------------------- checkpointing
    def _extra_state(self) -> dict:
        return {"p": self.p,
                "last_losses": {str(k): v
                                for k, v in self._last_losses.items()}}

    def _restore_extra(self, extra: dict) -> None:
        self.p = np.asarray(extra["p"], dtype=np.float64)
        self._last_losses = {int(k): float(v)
                             for k, v in extra.get("last_losses", {}).items()}

    @property
    def slots_per_round(self) -> int:
        """``Π_l τ_l`` local steps per cloud round."""
        return math.prod(self.taus)

    def current_weights(self) -> np.ndarray:
        """The level-1 subtree weights ``p^(k)``."""
        return self.p

    # -------------------------------------------------------------- recursion
    def _decode_checkpoint(self, slot: int) -> tuple[int, ...]:
        """Mixed-radix digits ``(c_1, …, c_L)`` of a flat slot, leaf fastest."""
        digits = [0] * len(self.taus)
        for level in range(len(self.taus) - 1, -1, -1):
            digits[level] = slot % self.taus[level]
            slot //= self.taus[level]
        return tuple(digits)

    def _subtree_update(self, level: int, node: int, w_start: np.ndarray,
                        ckpt_digits: tuple[int, ...] | None, round_index: int,
                        ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Recursive ModelUpdate of the subtree rooted at (level, node).

        Returns the subtree's final model and its checkpoint aggregate (``None``
        when this invocation is outside the checkpoint path).  A dropped-out
        leaf returns ``(None, None)``; interior nodes average over surviving
        children, so a whole-subtree failure surfaces as an unchanged model.
        """
        depth = self.tree.depth
        obs = self.obs
        faults = self.faults
        injecting = faults.enabled
        if level == depth:
            # Leaf: taus[-1] local SGD steps; snapshot after (leaf digit + 1).
            steps_full = self.taus[depth - 1]
            client = self.clients[node]
            membership = self.membership
            if membership.enabled and not membership.client_active(
                    client.client_id):
                return None, None
            steps = steps_full if not injecting else faults.client_steps(
                round_index, client.client_id, steps_full)
            if steps < 1:
                return None, None
            c_leaf = None if ckpt_digits is None else ckpt_digits[depth - 1] + 1
            takes_ckpt = c_leaf is not None and c_leaf <= steps
            with obs.span("client_local_steps", client=node, steps=steps):
                out = client.local_sgd(
                    self.engine, w_start, steps=steps, lr=self.eta_w,
                    projection=self.projection_w,
                    checkpoint_after=c_leaf if takes_ckpt else None)
            obs.count("sgd_steps_total", steps)
            return out
        kids = self.tree.children_of(level, node)
        link = f"level_{level + 1}"
        d = w_start.size
        tau_here = self.taus[level - 1]  # iterations a level-`level` node performs
        c_here = None if ckpt_digits is None else ckpt_digits[level - 1]
        # Interior nodes are the generalization of the edge tier: the policy's
        # edge-slot aggregator applies at every level below the cloud.
        node_agg = self._edge_agg
        w = np.array(w_start, dtype=np.float64, copy=True)
        w_ckpt: np.ndarray | None = None
        for t in range(tau_here):
            on_ckpt_path = c_here is not None and t == c_here
            with obs.span("edge_block", level=level, node=node, block=t):
                self.tracker.record(link, "down", count=len(kids), floats=d)
                acc = np.zeros(d)
                ckpt_acc = np.zeros(d) if on_ckpt_path else None
                n_live = 0
                n_ckpt = 0
                ckpt_faulted = False
                entries: list[tuple[str, float, np.ndarray]] = []
                ckpt_entries: list[tuple[str, float, np.ndarray]] = []
                timing = self.timing
                if level + 1 == depth:
                    # Children are the leaf clients: run the whole sibling
                    # group as one dispatch on the execution backend.
                    child_results = self._leaf_batch(
                        kids, w, ckpt_digits if on_ckpt_path else None,
                        round_index)
                else:
                    # Sibling subtrees work concurrently: the block costs the
                    # slowest child's (down + subtree + up) chain, and nested
                    # parallel groups fold to a max-of-max — each level's
                    # barrier in one expression.
                    child_results = []
                    with timing.parallel():
                        for k in kids:
                            with timing.branch():
                                if timing.enabled:
                                    timing.transfer(link, k, d)
                                w_k, w_kc = self._subtree_update(
                                    level + 1, k, w,
                                    ckpt_digits if on_ckpt_path else None,
                                    round_index)
                                if timing.enabled and w_k is not None:
                                    timing.transfer(
                                        link, k,
                                        d * (2 if on_ckpt_path
                                             and w_kc is not None else 1))
                                child_results.append((k, w_k, w_kc))
                for k, w_k, w_kc in child_results:
                    if w_k is None:
                        ckpt_faulted = ckpt_faulted or on_ckpt_path
                        continue
                    uploads = 2 if on_ckpt_path and w_kc is not None else 1
                    self.tracker.record(link, "up", count=1, floats=d * uploads)
                    sender = (f"client:{k}" if level + 1 == depth
                              else f"node:{level + 1}:{k}")
                    if injecting:
                        delivered = faults.receive(
                            round_index, link, sender, w_k, w_kc,
                            floats=d * uploads, tracker=self.tracker, ref=w)
                        if delivered is None:
                            ckpt_faulted = ckpt_faulted or on_ckpt_path
                            continue
                        w_k, w_kc = delivered
                    if node_agg is not None:
                        entries.append((sender, 1.0, w_k))
                        if ckpt_acc is not None:
                            if w_kc is not None:
                                ckpt_entries.append((sender, 1.0, w_kc))
                            else:
                                ckpt_faulted = True
                        continue
                    acc += w_k
                    n_live += 1
                    if ckpt_acc is not None:
                        if w_kc is not None:
                            ckpt_acc += w_kc
                            n_ckpt += 1
                        else:
                            ckpt_faulted = True
                self.tracker.sync_cycle(link)
                if node_agg is not None:
                    # Robust aggregation over this node's delivered children.
                    combined = robust_combine(node_agg, entries, ref=w,
                                              faults=faults,
                                              round_index=round_index,
                                              link=link)
                    ckpt_combined = (None if ckpt_acc is None else
                                     robust_combine(node_agg, ckpt_entries,
                                                    ref=w, faults=faults,
                                                    round_index=round_index,
                                                    link=link))
                    if combined is not None:
                        w = combined
                    else:
                        faults.degraded_round(
                            round_index, f"node:{level}:{node}:block:{t}")
                    if ckpt_acc is not None:
                        if ckpt_combined is not None:
                            w_ckpt = ckpt_combined
                        else:
                            faults.checkpoint_fallback(
                                round_index, f"node:{level}:{node}:block:{t}")
                            w_ckpt = w.copy()
                    continue
                if n_live == len(kids):
                    w = acc / len(kids)
                elif n_live > 0:
                    # Renormalize over surviving children.
                    w = acc / n_live
                else:
                    faults.degraded_round(
                        round_index, f"node:{level}:{node}:block:{t}")
                if ckpt_acc is not None:
                    if n_ckpt == len(kids):
                        w_ckpt = ckpt_acc / len(kids)
                    elif n_ckpt > 0:
                        w_ckpt = ckpt_acc / n_ckpt
                    else:
                        faults.checkpoint_fallback(
                            round_index, f"node:{level}:{node}:block:{t}")
                        w_ckpt = w.copy()
        return w, w_ckpt

    def _leaf_batch(self, kids, w_start: np.ndarray,
                    ckpt_digits: tuple[int, ...] | None, round_index: int,
                    ) -> list[tuple[int, np.ndarray | None, np.ndarray | None]]:
        """One dispatch covering a whole sibling group of leaf clients.

        Mirrors the leaf branch of :meth:`_subtree_update` exactly — same
        fault-decided step budgets, same checkpoint rule, same client order —
        but hands the SGD loops to the execution backend in one batch.
        Returns ``(k, w_end, w_checkpoint)`` per child, ``(k, None, None)``
        for dropped-out leaves.
        """
        depth = self.tree.depth
        faults = self.faults
        injecting = faults.enabled
        steps_full = self.taus[depth - 1]
        c_leaf = None if ckpt_digits is None else ckpt_digits[depth - 1] + 1
        work: list[ClientWork] = []
        members: list[int] = []
        outcomes: dict[int, tuple[np.ndarray | None, np.ndarray | None]] = {}
        membership = self.membership
        for k in kids:
            client = self.clients[k]
            if membership.enabled and not membership.client_active(
                    client.client_id):
                outcomes[k] = (None, None)
                continue
            steps = steps_full if not injecting else faults.client_steps(
                round_index, client.client_id, steps_full)
            if steps < 1:
                outcomes[k] = (None, None)
                continue
            takes_ckpt = c_leaf is not None and c_leaf <= steps
            work.append(ClientWork(client, steps,
                                   c_leaf if takes_ckpt else None))
            members.append(k)
        results = run_local_steps(
            self.backend, self.engine, w_start, work, lr=self.eta_w,
            projection=self.projection_w, obs=self.obs) if work else []
        timing = self.timing
        if timing.enabled:
            # The sibling group runs concurrently on the leaf link.
            link = f"level_{depth}"
            d = w_start.size
            with timing.parallel():
                for item in work:
                    cid = item.client.client_id
                    scale = (faults.plan.straggler_slowdown
                             if injecting and item.steps < steps_full else 1.0)
                    with timing.branch():
                        timing.transfer(link, cid, d)
                        timing.compute(cid, item.steps, scale=scale)
                        timing.transfer(
                            link, cid,
                            d * (2 if item.checkpoint_after is not None
                                 else 1))
        for k, result in zip(members, results):
            outcomes[k] = (result.w_end, result.w_checkpoint)
        return [(k, *outcomes[k]) for k in kids]

    def _subtree_loss(self, level: int, node: int, w: np.ndarray,
                      round_index: int) -> float | None:
        """Recursive LossEstimation: mean of minibatch losses over leaf clients.

        Returns ``None`` when no leaf of the subtree replied (fault runs only).
        """
        depth = self.tree.depth
        faults = self.faults
        injecting = faults.enabled
        timing = self.timing
        if level == depth:
            client = self.clients[node]
            membership = self.membership
            if membership.enabled and not membership.client_active(
                    client.client_id):
                return None
            if injecting and not faults.client_available(round_index,
                                                         client.client_id):
                return None
            if timing.enabled:
                timing.probe(client.client_id)
            return client.estimate_loss(self.engine, w)
        kids = self.tree.children_of(level, node)
        link = f"level_{level + 1}"
        d = w.size
        self.tracker.record(link, "down", count=len(kids), floats=d)
        # With a loss clip installed, every interior node damps its children's
        # cohort before averaging — one inflated leaf cannot poison the whole
        # subtree's score on its way up.
        reports: dict[str, float] | None = ({} if self._loss_clip is not None
                                            else None)
        total = 0.0
        replied = 0
        with timing.parallel():
            for k in kids:
                with timing.branch():
                    if timing.enabled:
                        timing.transfer(link, k, d)
                    sub = self._subtree_loss(level + 1, k, w, round_index)
                    if sub is None:
                        continue
                    if timing.enabled:
                        timing.transfer(link, k, 1)
                    self.tracker.record(link, "up", count=1, floats=1)
                    sender = (f"client:{k}" if level + 1 == depth
                              else f"node:{level + 1}:{k}")
                    if injecting:
                        delivered = faults.receive(
                            round_index, link, sender, sub,
                            floats=1.0, tracker=self.tracker)
                        if delivered is None:
                            continue
                        (sub,) = delivered
                    if reports is not None:
                        reports[sender] = float(sub)
                    total += sub
                    replied += 1
        self.tracker.sync_cycle(link)
        if replied == 0:
            return None
        if reports is not None:
            clipped, ids, cap = clip_loss_reports(reports, self._loss_clip)
            if ids:
                for sender in ids:
                    faults.suspect(round_index, sender, action="loss_clipped",
                                   aggregator="loss_clip", cap=round(cap, 6))
                return sum(clipped.values()) / replied
        return total / replied

    # ------------------------------------------------------------------ round
    def run_round(self, round_index: int) -> None:
        """One generalized Algorithm-1 round over the tree."""
        d = self.w.size
        obs = self.obs
        faults = self.faults
        injecting = faults.enabled
        # Phase 1: sample level-1 subtrees by p; sample the checkpoint digits.
        sampled = sample_by_weight(self.p, self.m_top, self.rng)
        slot = int(self.rng.integers(0, self.slots_per_round))
        ckpt_digits = self._decode_checkpoint(slot)
        with obs.span("phase1_model_update", round=round_index,
                      sampled_areas=len(sampled), checkpoint_slot=slot):
            self.tracker.record("level_1", "down", count=len(np.unique(sampled)),
                                floats=d + len(self.taus))
            acc_w = np.zeros(d)
            acc_ckpt = np.zeros(d)
            n_contrib = 0
            n_ckpt = 0
            cloud_agg = self._cloud_agg
            entries: list[tuple[str, float, np.ndarray]] = []
            ckpt_entries: list[tuple[str, float, np.ndarray]] = []
            timing = self.timing
            # Sampled areas work concurrently; nested levels fold to max-of-max.
            with timing.parallel():
                for a in sampled:
                    aid = int(a)
                    top = self._top_nodes[aid]
                    with timing.branch():
                        # Top areas are the generalization of edge servers: an
                        # edge outage blacks out the whole level-1 subtree for
                        # the round, whether faulted or churned away.
                        if injecting and faults.edge_dark(round_index, aid):
                            continue
                        if (self.membership.enabled
                                and not self.membership.edge_available(aid)):
                            continue
                        if timing.enabled:
                            timing.transfer("level_1", aid,
                                            d + len(self.taus))
                        # The cloud itself performs exactly one "iteration" per
                        # round, so the level-1 digit is consumed by sampling:
                        # the subtree is always on the checkpoint path at the
                        # top.
                        w_a, w_ac = self._subtree_update(1, top, self.w,
                                                         ckpt_digits,
                                                         round_index)
                        if w_a is None:
                            continue
                        self.tracker.record("level_1", "up", count=1,
                                            floats=2 * d)
                        if timing.enabled:
                            timing.transfer("level_1", aid, 2 * d)
                        if injecting:
                            delivered = faults.receive(
                                round_index, "level_1", f"area:{aid}", w_a,
                                w_ac,
                                floats=2 * d, tracker=self.tracker, ref=self.w)
                            if delivered is None:
                                continue
                            w_a, w_ac = delivered
                        if cloud_agg is not None:
                            entries.append((f"area:{aid}", 1.0, w_a))
                            if w_ac is not None:
                                ckpt_entries.append((f"area:{aid}", 1.0, w_ac))
                            continue
                        acc_w += w_a
                        n_contrib += 1
                        if w_ac is not None:
                            acc_ckpt += w_ac
                            n_ckpt += 1
            self.tracker.sync_cycle("level_1")
            if cloud_agg is not None:
                # Robust aggregation replaces the sampled-subtree mean.
                w_ref = self.w
                combined = robust_combine(cloud_agg, entries, ref=w_ref,
                                          faults=faults,
                                          round_index=round_index,
                                          link="level_1")
                if combined is not None:
                    self.w = combined
                else:
                    faults.degraded_round(round_index, "phase1_model_update")
                ckpt_combined = robust_combine(cloud_agg, ckpt_entries,
                                               ref=w_ref, faults=faults,
                                               round_index=round_index,
                                               link="level_1")
                if ckpt_combined is not None:
                    w_checkpoint = ckpt_combined
                else:
                    faults.checkpoint_fallback(round_index,
                                               "phase1_model_update")
                    w_checkpoint = self.w
            else:
                if n_contrib == len(sampled):
                    self.w = acc_w / self.m_top
                elif n_contrib > 0:
                    self.w = acc_w / n_contrib
                else:
                    faults.degraded_round(round_index, "phase1_model_update")
                if n_ckpt == len(sampled):
                    w_checkpoint = acc_ckpt / self.m_top
                elif n_ckpt > 0:
                    w_checkpoint = acc_ckpt / n_ckpt
                else:
                    faults.checkpoint_fallback(round_index,
                                               "phase1_model_update")
                    w_checkpoint = self.w

        # Phase 2: uniform re-sample; recursive loss estimation; ascent on p.
        with obs.span("phase2_weight_update", round=round_index):
            probed = sample_uniform_subset(len(self._top_nodes), self.m_top,
                                           self.rng)
            self.tracker.record("level_1", "down", count=len(probed), floats=d)
            losses: dict[int, float] = {}
            timing = self.timing
            with timing.parallel():
                for a in probed:
                    aid = int(a)
                    est: float | None = None
                    with timing.branch():
                        if (not (injecting and faults.edge_dark(round_index,
                                                                aid))
                                and (not self.membership.enabled
                                     or self.membership.edge_available(aid))):
                            if timing.enabled:
                                timing.transfer("level_1", aid, d)
                            est = self._subtree_loss(1, self._top_nodes[aid],
                                                     w_checkpoint, round_index)
                            if est is not None:
                                self.tracker.record("level_1", "up", count=1,
                                                    floats=1)
                                if timing.enabled:
                                    timing.transfer("level_1", aid, 1)
                                if injecting:
                                    delivered = faults.receive(
                                        round_index, "level_1", f"area:{aid}",
                                        est,
                                        floats=1.0, tracker=self.tracker)
                                    est = (None if delivered is None
                                           else delivered[0])
                    if est is None:
                        stale = self._last_losses.get(aid)
                        if stale is not None:
                            faults.stale_loss(round_index, f"area:{aid}",
                                              stale)
                            losses[aid] = stale
                        continue
                    losses[aid] = est
            self.tracker.sync_cycle("level_1")
            losses = self._clip_losses(round_index, losses, "area")
            if losses:
                self._last_losses.update(losses)
                obs.gauge("worst_edge_loss", max(losses.values()))
                v = self.cloud.build_loss_vector(losses)
                # Ascent step scaled by the Π_l τ_l slots each update stands in for.
                self.p = self.cloud.update_weights(self.p, v, eta_p=self.eta_p,
                                                   tau1=self.slots_per_round,
                                                   tau2=1)
            else:
                faults.degraded_round(round_index, "phase2_weight_update")
