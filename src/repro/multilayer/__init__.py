"""Multi-layer generalization: arbitrary-depth aggregation trees (§3's general
hub-and-spoke topology) and HierMinimax over them."""

from repro.multilayer.algorithm import MultiLevelHierMinimax
from repro.multilayer.tree import HierarchyTree

__all__ = ["HierarchyTree", "MultiLevelHierMinimax"]
