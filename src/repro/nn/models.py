"""Model factories matching the paper's experimental setups.

* :func:`logistic_regression` — multinomial logistic regression (the convex model of
  §6.1 and Table 2; for 784 features and 10 classes it has the paper's 7850
  parameters).
* :func:`mlp` — fully-connected ReLU network; ``mlp(784, (300, 100), 10)`` is the
  §6.2 non-convex model with the paper's 266,610 parameters.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import Linear, ReLU
from repro.nn.losses import Loss
from repro.nn.network import NeuralNetwork

__all__ = ["logistic_regression", "mlp", "ModelFactory", "make_model_factory"]


def logistic_regression(input_dim: int, num_classes: int, *,
                        rng: np.random.Generator | int | None = 0,
                        l2: float = 0.0,
                        loss: Loss | None = None) -> NeuralNetwork:
    """Multinomial logistic regression: one linear layer + softmax cross-entropy.

    With cross-entropy this model's loss is convex in the parameters, which is the
    regime of Theorem 1.
    """
    return NeuralNetwork(
        [Linear(input_dim, num_classes, weight_init="xavier")],
        input_dim=input_dim, rng=rng, l2=l2, loss=loss)


def mlp(input_dim: int, hidden: Sequence[int], num_classes: int, *,
        rng: np.random.Generator | int | None = 0,
        l2: float = 0.0,
        loss: Loss | None = None) -> NeuralNetwork:
    """Fully-connected ReLU network (non-convex regime of Theorem 2).

    ``hidden`` lists the hidden-layer widths, e.g. ``(300, 100)`` per §6.2.
    """
    hidden = tuple(int(h) for h in hidden)
    if any(h < 1 for h in hidden):
        raise ValueError(f"hidden widths must be >= 1, got {hidden}")
    layers: list = []
    prev = input_dim
    for width in hidden:
        layers.append(Linear(prev, width, weight_init="kaiming"))
        layers.append(ReLU())
        prev = width
    layers.append(Linear(prev, num_classes, weight_init="xavier"))
    return NeuralNetwork(layers, input_dim=input_dim, rng=rng, l2=l2, loss=loss)


class ModelFactory:
    """Callable that builds a fresh model with a given RNG.

    Algorithms receive a factory rather than a model so each run (and each baseline
    in a comparison) starts from an identically-distributed initialization.
    """

    def __init__(self, builder, describe: str) -> None:
        self._builder = builder
        self.describe = describe

    def __call__(self, rng: np.random.Generator | int | None = 0) -> NeuralNetwork:
        """Build a model initialized from ``rng``."""
        return self._builder(rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelFactory({self.describe})"


def make_model_factory(kind: str, input_dim: int, num_classes: int, *,
                       hidden: Sequence[int] = (300, 100),
                       l2: float = 0.0) -> ModelFactory:
    """Create a :class:`ModelFactory` by name.

    Parameters
    ----------
    kind:
        ``"logistic"`` or ``"mlp"``.
    input_dim, num_classes:
        Data dimensions.
    hidden:
        Hidden widths for ``"mlp"`` (ignored otherwise).
    l2:
        L2 regularization coefficient.
    """
    if kind == "logistic":
        return ModelFactory(
            lambda rng: logistic_regression(input_dim, num_classes, rng=rng, l2=l2),
            f"logistic({input_dim}->{num_classes}, l2={l2})")
    if kind == "mlp":
        hidden = tuple(hidden)
        return ModelFactory(
            lambda rng: mlp(input_dim, hidden, num_classes, rng=rng, l2=l2),
            f"mlp({input_dim}->{hidden}->{num_classes}, l2={l2})")
    raise ValueError(f"unknown model kind {kind!r}; expected 'logistic' or 'mlp'")
