"""Stochastic gradient descent with optional domain projection.

Implements the client update rule of Eq. (4):

    w <- Π_W( w - η ∇f(w; ξ) )

as an in-place operation on the model's flat parameter buffer.  The projection
defaults to the identity (``W = R^d``, as in the paper's experiments) but any
:data:`repro.ops.Projection` — e.g. an L2 ball for the bounded-domain theory — can
be supplied.
"""

from __future__ import annotations

import numpy as np

from repro.nn.network import NeuralNetwork
from repro.ops.projections import Projection, identity_projection

__all__ = ["SGD", "sgd_step"]


def sgd_step(model: NeuralNetwork, X: np.ndarray, y: np.ndarray, lr: float,
             projection: Projection = identity_projection) -> float:
    """One projected-SGD step of Eq. (4) on ``model``; returns the minibatch loss."""
    if lr <= 0:
        raise ValueError(f"learning rate must be positive, got {lr}")
    loss, grad = model.loss_and_gradient(X, y)
    params = model.params_view()
    params -= lr * grad
    if projection is not identity_projection:
        params[:] = projection(params)
    return loss


class SGD:
    """Stateful SGD optimizer bound to one model.

    Supports optional momentum and per-step learning-rate schedules; HierMinimax and
    the baselines use the plain ``momentum=0`` configuration from §6 but the
    extensions are exercised by the ablation benches.

    Parameters
    ----------
    model:
        The model whose flat buffer is updated in place.
    lr:
        Base learning rate ``η_w``.
    projection:
        Euclidean projection ``Π_W`` applied after every step.
    momentum:
        Classical momentum coefficient in [0, 1); 0 (default) recovers Eq. (4).
    """

    def __init__(self, model: NeuralNetwork, lr: float, *,
                 projection: Projection = identity_projection,
                 momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.model = model
        self.lr = float(lr)
        self.projection = projection
        self.momentum = float(momentum)
        self._velocity: np.ndarray | None = (
            np.zeros(model.num_parameters) if momentum > 0 else None)
        self.steps_taken = 0

    def step(self, X: np.ndarray, y: np.ndarray, *, lr: float | None = None) -> float:
        """Take one (projected, optionally momentum) SGD step; return the loss."""
        eta = self.lr if lr is None else float(lr)
        if eta <= 0:
            raise ValueError(f"learning rate must be positive, got {eta}")
        loss, grad = self.model.loss_and_gradient(X, y)
        params = self.model.params_view()
        if self._velocity is not None:
            self._velocity *= self.momentum
            self._velocity -= eta * grad
            params += self._velocity
        else:
            params -= eta * grad
        if self.projection is not identity_projection:
            params[:] = self.projection(params)
        self.steps_taken += 1
        return loss

    def reset_state(self) -> None:
        """Clear momentum state (used when a client reloads a broadcast model)."""
        if self._velocity is not None:
            self._velocity.fill(0.0)
