"""Composable layers with hand-derived backward passes.

Design
------
A :class:`Layer` declares parameter *specs* (name, shape, initializer).  It does not
allocate its own storage: :class:`repro.nn.network.NeuralNetwork` owns one contiguous
flat buffer for all parameters and one for all gradients, and *binds* reshaped views
of those buffers into each layer.  Consequences:

* ``get/set`` of the full parameter vector is a single contiguous copy — the
  operation federated averaging performs millions of times — with no per-layer
  Python overhead;
* in-place SGD (``buf -= lr * gbuf``) updates every layer simultaneously through the
  views (guides: "use views, and not copies", "in place operations").

``forward`` caches exactly the activations its ``backward`` needs; ``backward``
consumes the upstream gradient, accumulates parameter gradients in place (``+=``)
and returns the downstream gradient.  Gradients accumulate so that minibatch or
multi-head losses compose; callers zero the flat gradient buffer between steps.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.init import kaiming_uniform_, xavier_uniform_, zeros_

__all__ = ["ParamSpec", "Layer", "Linear", "ReLU", "Tanh", "Identity"]

Initializer = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class ParamSpec:
    """Description of one learnable tensor: its name, shape and initializer."""

    __slots__ = ("name", "shape", "init")

    def __init__(self, name: str, shape: tuple[int, ...], init: Initializer) -> None:
        self.name = name
        self.shape = shape
        self.init = init

    @property
    def size(self) -> int:
        """Number of scalars in the tensor."""
        out = 1
        for s in self.shape:
            out *= s
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParamSpec({self.name!r}, shape={self.shape})"


class Layer:
    """Base class: stateless shape-in/shape-out transform with optional parameters."""

    #: Vocabulary tag of the cross-client batched kernel
    #: (:class:`repro.exec.vectorized.VectorizedBackend`).  ``None`` (the
    #: default) marks the layer ineligible — engines containing it take the
    #: serial fallback.  Subclasses whose forward/backward can be replayed
    #: with one leading client axis declare their kind ("linear", "relu",
    #: "tanh", "identity"); a third-party layer must opt in explicitly, so an
    #: unknown backward can never be silently vectorized wrong.
    vector_kind: str | None = None

    def param_specs(self) -> Sequence[ParamSpec]:
        """Parameter tensors this layer needs (empty for activations)."""
        return ()

    def bind(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        """Receive views into the network-owned parameter/gradient buffers."""

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        """Compute the layer output; cache activations iff ``train`` is True."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop: accumulate parameter grads in place, return input grad."""
        raise NotImplementedError

    def output_dim(self, input_dim: int) -> int:
        """Output feature dimension given the input feature dimension."""
        return input_dim


class Linear(Layer):
    """Affine map ``y = x W + b`` with ``W`` of shape (in_features, out_features).

    Parameters
    ----------
    in_features, out_features:
        Feature dimensions.
    weight_init:
        ``"kaiming"`` (default, for ReLU nets), ``"xavier"`` (for the linear /
        logistic-regression case), or a custom initializer callable.
    bias:
        Whether to learn an additive bias (the paper's models always do).
    """

    vector_kind = "linear"

    def __init__(self, in_features: int, out_features: int, *,
                 weight_init: str | Initializer = "kaiming", bias: bool = True) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError(
                f"Linear dims must be >= 1, got ({in_features}, {out_features})")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.use_bias = bool(bias)
        if callable(weight_init):
            self._w_init: Initializer = weight_init
        elif weight_init == "kaiming":
            self._w_init = kaiming_uniform_
        elif weight_init == "xavier":
            self._w_init = xavier_uniform_
        else:
            raise ValueError(f"unknown weight_init {weight_init!r}")
        self.W: np.ndarray | None = None
        self.b: np.ndarray | None = None
        self.gW: np.ndarray | None = None
        self.gb: np.ndarray | None = None
        self._x: np.ndarray | None = None

    def param_specs(self) -> Sequence[ParamSpec]:
        """Weight (and optional bias) tensor specs."""
        specs = [ParamSpec("W", (self.in_features, self.out_features), self._w_init)]
        if self.use_bias:
            specs.append(ParamSpec("b", (self.out_features,), zeros_))
        return specs

    def bind(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        """Attach the network-owned parameter/gradient views."""
        self.W = params["W"]
        self.gW = grads["W"]
        if self.use_bias:
            self.b = params["b"]
            self.gb = grads["b"]

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        """Affine forward pass ``x @ W + b`` (caches ``x`` in train mode)."""
        if self.W is None:
            raise RuntimeError("Linear layer used before bind(); build it via NeuralNetwork")
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear({self.in_features}->{self.out_features}) got input {x.shape}")
        self._x = x if train else None
        out = x @ self.W
        if self.use_bias:
            out += self.b
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate ``gW``/``gb`` and return the input gradient."""
        if self._x is None:
            raise RuntimeError("backward() called before a train-mode forward()")
        self.gW += self._x.T @ grad_out
        if self.use_bias:
            self.gb += grad_out.sum(axis=0)
        return grad_out @ self.W.T

    def output_dim(self, input_dim: int) -> int:
        """Validate the input dim and return ``out_features``."""
        if input_dim != self.in_features:
            raise ValueError(
                f"Linear expects input dim {self.in_features}, got {input_dim}")
        return self.out_features


class ReLU(Layer):
    """Rectified linear activation; the non-convex experiments' nonlinearity."""

    vector_kind = "relu"

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        """Elementwise ``max(x, 0)`` (caches the positive mask in train mode)."""
        out = np.maximum(x, 0.0)
        self._mask = x > 0.0 if train else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Gate the upstream gradient by the cached positive mask."""
        if self._mask is None:
            raise RuntimeError("backward() called before a train-mode forward()")
        return grad_out * self._mask


class Tanh(Layer):
    """Hyperbolic-tangent activation (used by gradient-check tests and examples)."""

    vector_kind = "tanh"

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        """Elementwise ``tanh`` (caches the output in train mode)."""
        out = np.tanh(x)
        self._out = out if train else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Chain through ``1 - tanh²`` using the cached output."""
        if self._out is None:
            raise RuntimeError("backward() called before a train-mode forward()")
        return grad_out * (1.0 - self._out * self._out)


class Identity(Layer):
    """No-op layer; handy as a placeholder in model factories."""

    vector_kind = "identity"

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        """Return ``x`` unchanged."""
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Return the upstream gradient unchanged."""
        return grad_out
