"""Loss functions with fused forward/backward.

Both experiments in the paper use cross-entropy; :class:`SoftmaxCrossEntropy` fuses
the softmax with the loss so the backward pass is the numerically exact
``(softmax(z) - onehot(y)) / B`` instead of chaining two Jacobians.  An MSE loss is
included for gradient-check and regression-style tests.
"""

from __future__ import annotations

import numpy as np

from repro.ops.numerics import log_softmax, one_hot, softmax

__all__ = ["Loss", "SoftmaxCrossEntropy", "MeanSquaredError"]


class Loss:
    """Interface: ``forward`` returns the scalar mean loss, ``backward`` d(loss)/d(logits)."""

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Scalar mean loss of ``logits`` against ``targets``."""
        raise NotImplementedError

    def backward(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the mean loss with respect to ``logits``."""
        raise NotImplementedError


class SoftmaxCrossEntropy(Loss):
    """Mean cross-entropy between softmax(logits) and integer class targets."""

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Mean negative log-likelihood of the targets under softmax(logits)."""
        logits = np.asarray(logits, dtype=np.float64)
        targets = np.asarray(targets)
        _check_classification_shapes(logits, targets)
        logp = log_softmax(logits, axis=1)
        return float(-logp[np.arange(targets.shape[0]), targets].mean())

    def backward(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """The fused gradient ``(softmax(logits) - onehot(targets)) / batch``."""
        logits = np.asarray(logits, dtype=np.float64)
        targets = np.asarray(targets)
        _check_classification_shapes(logits, targets)
        batch = targets.shape[0]
        grad = softmax(logits, axis=1)
        grad[np.arange(batch), targets] -= 1.0
        grad /= batch
        return grad

    def forward_per_sample(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Per-sample losses (used by loss-estimation in Phase 2 diagnostics)."""
        logits = np.asarray(logits, dtype=np.float64)
        targets = np.asarray(targets)
        _check_classification_shapes(logits, targets)
        logp = log_softmax(logits, axis=1)
        return -logp[np.arange(targets.shape[0]), targets]


class MeanSquaredError(Loss):
    """Mean of squared residuals, ``mean((logits - targets)**2)`` over all entries."""

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Mean of squared residuals over all entries."""
        logits = np.asarray(logits, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if logits.shape != targets.shape:
            raise ValueError(f"MSE shape mismatch: {logits.shape} vs {targets.shape}")
        diff = logits - targets
        return float(np.mean(diff * diff))

    def backward(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient ``2(logits - targets)/size``."""
        logits = np.asarray(logits, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if logits.shape != targets.shape:
            raise ValueError(f"MSE shape mismatch: {logits.shape} vs {targets.shape}")
        return (2.0 / logits.size) * (logits - targets)


def _check_classification_shapes(logits: np.ndarray, targets: np.ndarray) -> None:
    if logits.ndim != 2:
        raise ValueError(f"logits must be (batch, classes), got {logits.shape}")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ValueError(
            f"targets must be (batch,) matching logits {logits.shape}, got {targets.shape}")
    if targets.size and (targets.min() < 0 or targets.max() >= logits.shape[1]):
        raise ValueError(
            f"targets out of range for {logits.shape[1]} classes: "
            f"[{targets.min()}, {targets.max()}]")


# re-export for convenience of loss implementations relying on one_hot
_ = one_hot
