"""NumPy neural-network substrate with hand-derived backprop.

Replaces the paper's PyTorch dependency (see DESIGN.md §1): flat-buffer models,
layers, losses, SGD with projection, and finite-difference gradient checking.
"""

from repro.nn.gradcheck import gradient_check, max_relative_error, numerical_gradient
from repro.nn.init import fan_in_out, kaiming_uniform_, normal_, xavier_uniform_, zeros_
from repro.nn.layers import Identity, Layer, Linear, ParamSpec, ReLU, Tanh
from repro.nn.losses import Loss, MeanSquaredError, SoftmaxCrossEntropy
from repro.nn.models import ModelFactory, logistic_regression, make_model_factory, mlp
from repro.nn.network import NeuralNetwork
from repro.nn.optim import SGD, sgd_step

__all__ = [
    "gradient_check",
    "max_relative_error",
    "numerical_gradient",
    "fan_in_out",
    "kaiming_uniform_",
    "normal_",
    "xavier_uniform_",
    "zeros_",
    "Identity",
    "Layer",
    "Linear",
    "ParamSpec",
    "ReLU",
    "Tanh",
    "Loss",
    "MeanSquaredError",
    "SoftmaxCrossEntropy",
    "ModelFactory",
    "logistic_regression",
    "make_model_factory",
    "mlp",
    "NeuralNetwork",
    "SGD",
    "sgd_step",
]
