"""Parameter initializers.

Each initializer fills a preallocated array in place from an explicit
:class:`numpy.random.Generator`, so that model initialization participates in the
library-wide deterministic seeding scheme (see :mod:`repro.utils.rng`).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["zeros_", "normal_", "xavier_uniform_", "kaiming_uniform_", "fan_in_out"]


def fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Return (fan_in, fan_out) for a weight tensor shape.

    For a 2-D weight of shape (in_features, out_features) these are the two axes;
    shapes of other ranks use the product of trailing dims as receptive-field size.
    """
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a 0-d shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = 1
    for s in shape[2:]:
        receptive *= s
    return shape[0] * receptive, shape[1] * receptive


def zeros_(array: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
    """Fill ``array`` with zeros (bias default)."""
    array[...] = 0.0
    return array


def normal_(array: np.ndarray, rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Fill ``array`` i.i.d. from N(0, std^2)."""
    if std < 0:
        raise ValueError(f"std must be nonnegative, got {std}")
    array[...] = rng.normal(0.0, std, size=array.shape)
    return array


def xavier_uniform_(array: np.ndarray, rng: np.random.Generator, gain: float = 1.0,
                    ) -> np.ndarray:
    """Glorot/Xavier uniform init: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out)).

    Suited to the logistic-regression output layer and tanh networks.
    """
    fan_in, fan_out = fan_in_out(array.shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    array[...] = rng.uniform(-bound, bound, size=array.shape)
    return array


def kaiming_uniform_(array: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform init for ReLU networks: U(-a, a), a = sqrt(6 / fan_in)."""
    fan_in, _ = fan_in_out(array.shape)
    bound = math.sqrt(6.0 / fan_in)
    array[...] = rng.uniform(-bound, bound, size=array.shape)
    return array
