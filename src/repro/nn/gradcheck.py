"""Finite-difference gradient verification.

The NN substrate's backward passes are hand-derived; :func:`gradient_check` compares
them against central finite differences so the test suite can certify every layer
and loss combination.  Used only in tests/benchmarks, never in training loops.
"""

from __future__ import annotations

import numpy as np

from repro.nn.network import NeuralNetwork

__all__ = ["numerical_gradient", "gradient_check", "max_relative_error"]


def numerical_gradient(model: NeuralNetwork, X: np.ndarray, y: np.ndarray,
                       *, eps: float = 1e-6,
                       indices: np.ndarray | None = None) -> np.ndarray:
    """Central-difference gradient of the model loss w.r.t. its flat parameters.

    Parameters
    ----------
    indices:
        Optional subset of parameter indices to probe (all by default).  Probing a
        random subset keeps checks fast on large models.

    Returns
    -------
    numpy.ndarray
        Dense gradient vector; entries outside ``indices`` are zero.
    """
    w0 = model.get_params()
    grad = np.zeros_like(w0)
    probe = np.arange(w0.size) if indices is None else np.asarray(indices, dtype=np.intp)
    for i in probe:
        w = w0.copy()
        w[i] = w0[i] + eps
        model.set_params(w)
        loss_plus = model.loss(X, y)
        w[i] = w0[i] - eps
        model.set_params(w)
        loss_minus = model.loss(X, y)
        grad[i] = (loss_plus - loss_minus) / (2.0 * eps)
    model.set_params(w0)
    return grad


def max_relative_error(a: np.ndarray, b: np.ndarray, *, floor: float = 1e-8) -> float:
    """``max |a-b| / max(|a|, |b|, floor)`` — scale-free gradient discrepancy."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    denom = np.maximum(np.maximum(np.abs(a), np.abs(b)), floor)
    return float(np.max(np.abs(a - b) / denom))


def gradient_check(model: NeuralNetwork, X: np.ndarray, y: np.ndarray, *,
                   eps: float = 1e-6, tol: float = 1e-5,
                   num_probes: int | None = None,
                   rng: np.random.Generator | None = None) -> float:
    """Assert analytic and numerical gradients agree; return the max relative error.

    Raises ``AssertionError`` when the discrepancy exceeds ``tol``.
    """
    _, analytic = model.loss_and_gradient(np.asarray(X, dtype=np.float64), y)
    if num_probes is not None and num_probes < model.num_parameters:
        gen = rng if rng is not None else np.random.default_rng(0)
        indices = gen.choice(model.num_parameters, size=num_probes, replace=False)
    else:
        indices = None
    numeric = numerical_gradient(model, X, y, eps=eps, indices=indices)
    if indices is not None:
        analytic_masked = np.zeros_like(analytic)
        analytic_masked[indices] = analytic[indices]
        analytic = analytic_masked
    err = max_relative_error(analytic, numeric)
    if err > tol:
        raise AssertionError(
            f"gradient check failed: max relative error {err:.3e} > tol {tol:.3e}")
    return err
