"""The :class:`NeuralNetwork` container: flat-buffer models for federated training.

A ``NeuralNetwork`` stitches a list of layers and a loss into a trainable model whose
entire parameter state is one contiguous ``float64`` vector.  That vector *is* the
``w`` of the paper: clients run SGD on it, edge servers average it, the cloud
broadcasts it.  The flat representation makes those operations single BLAS-level
calls with no Python-per-layer overhead.

Key operations
--------------
``get_params() / set_params(w)``
    Copy-out / copy-in of the flat parameter vector.
``loss_and_gradient(X, y)``
    One fused forward+backward over a minibatch; returns (scalar loss, flat grad).
``loss(X, y) / accuracy(X, y) / predict(X)``
    Evaluation-mode passes (no caching).
``clone()``
    Structurally identical model with its own buffers (same parameter values).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import Layer, ParamSpec
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.utils.rng import as_generator

__all__ = ["NeuralNetwork"]


class NeuralNetwork:
    """A feed-forward model over a single flat parameter buffer.

    Parameters
    ----------
    layers:
        Ordered layer list (each used exactly once; layers own forward caches).
    loss:
        Loss object; defaults to :class:`SoftmaxCrossEntropy`.
    input_dim:
        Feature dimension of inputs; used for shape validation.
    rng:
        Generator (or seed) for parameter initialization.
    l2:
        Optional L2 regularization coefficient added to loss and gradient
        (``l2/2 * ||w||^2``); 0 disables.
    """

    def __init__(self, layers: Sequence[Layer], *, input_dim: int,
                 loss: Loss | None = None,
                 rng: np.random.Generator | int | None = 0,
                 l2: float = 0.0) -> None:
        if not layers:
            raise ValueError("NeuralNetwork needs at least one layer")
        if input_dim < 1:
            raise ValueError(f"input_dim must be >= 1, got {input_dim}")
        if l2 < 0:
            raise ValueError(f"l2 must be nonnegative, got {l2}")
        self.layers: list[Layer] = list(layers)
        self.loss_fn: Loss = loss if loss is not None else SoftmaxCrossEntropy()
        self.input_dim = int(input_dim)
        self.l2 = float(l2)

        # Validate the shape pipeline and compute output dim.
        dim = self.input_dim
        for layer in self.layers:
            dim = layer.output_dim(dim)
        self.output_dim = dim

        # Allocate the flat parameter and gradient buffers and bind views.
        self._specs: list[tuple[Layer, ParamSpec, slice]] = []
        offset = 0
        for layer in self.layers:
            for spec in layer.param_specs():
                self._specs.append((layer, spec, slice(offset, offset + spec.size)))
                offset += spec.size
        self._params = np.zeros(offset, dtype=np.float64)
        self._grads = np.zeros(offset, dtype=np.float64)
        for layer in self.layers:
            views: dict[str, np.ndarray] = {}
            gviews: dict[str, np.ndarray] = {}
            for owner, spec, sl in self._specs:
                if owner is layer:
                    views[spec.name] = self._params[sl].reshape(spec.shape)
                    gviews[spec.name] = self._grads[sl].reshape(spec.shape)
            layer.bind(views, gviews)
        self.initialize(rng)

    # ------------------------------------------------------------------ params
    @property
    def num_parameters(self) -> int:
        """Total scalar parameter count (the paper's ``d``)."""
        return self._params.size

    def initialize(self, rng: np.random.Generator | int | None = 0) -> None:
        """(Re)initialize every parameter tensor from its layer's initializer."""
        gen = as_generator(rng)
        for layer, spec, sl in self._specs:
            spec.init(self._params[sl].reshape(spec.shape), gen)

    def get_params(self) -> np.ndarray:
        """Return a *copy* of the flat parameter vector (safe to mutate/ship)."""
        return self._params.copy()

    def set_params(self, w: np.ndarray) -> None:
        """Load a flat parameter vector into the model (copied in place)."""
        w = np.asarray(w, dtype=np.float64)
        if w.shape != self._params.shape:
            raise ValueError(
                f"parameter vector has shape {w.shape}, model expects {self._params.shape}")
        self._params[:] = w

    def params_view(self) -> np.ndarray:
        """The live flat parameter buffer (mutations take effect immediately).

        Exposed for in-place optimizers; most callers want :meth:`get_params`.
        """
        return self._params

    def grads_view(self) -> np.ndarray:
        """The live flat gradient buffer (filled by :meth:`loss_and_gradient`)."""
        return self._grads

    def zero_grad(self) -> None:
        """Reset the flat gradient buffer to zero (in place)."""
        self._grads.fill(0.0)

    # ------------------------------------------------------------------ passes
    def forward(self, X: np.ndarray, *, train: bool = False) -> np.ndarray:
        """Run the layer pipeline on a (batch, input_dim) matrix; return logits."""
        X = self._check_input(X)
        out = X
        for layer in self.layers:
            out = layer.forward(out, train=train)
        return out

    def loss(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean loss of the current parameters on (X, y), evaluation mode."""
        value = self.loss_fn.forward(self.forward(X, train=False), y)
        if self.l2:
            value += 0.5 * self.l2 * float(self._params @ self._params)
        return value

    def loss_and_gradient(self, X: np.ndarray, y: np.ndarray) -> tuple[float, np.ndarray]:
        """Fused forward+backward; returns (loss, flat gradient copy).

        The gradient of the mean minibatch loss — the stochastic gradient
        ``∇f_n(w; ξ)`` of Eq. (4) — plus the L2 term when configured.
        """
        logits = self.forward(X, train=True)
        value = self.loss_fn.forward(logits, y)
        self.zero_grad()
        grad = self.loss_fn.backward(logits, y)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        flat = self._grads.copy()
        if self.l2:
            value += 0.5 * self.l2 * float(self._params @ self._params)
            flat += self.l2 * self._params
        return value, flat

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Argmax class prediction for each row of ``X``."""
        return np.argmax(self.forward(X, train=False), axis=1)

    def accuracy_and_loss(self, X: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """Fused evaluation sweep: (accuracy, mean loss) from ONE forward pass.

        ``accuracy(X, y)`` followed by ``loss(X, y)`` runs the layer pipeline
        twice on the same test matrix; evaluation rounds sweep every edge's
        test set, so the second pass is pure waste.  The forward pass is
        deterministic, so both statistics computed from the single shared
        logits matrix are bit-identical to the two-pass results — a contract
        the metrics tests assert byte-for-byte.
        """
        y = np.asarray(y)
        if y.shape[0] == 0:
            raise ValueError("cannot compute accuracy on an empty batch")
        logits = self.forward(X, train=False)
        acc = float(np.mean(np.argmax(logits, axis=1) == y))
        value = self.loss_fn.forward(logits, y)
        if self.l2:
            value += 0.5 * self.l2 * float(self._params @ self._params)
        return acc, value

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        """Fraction of rows classified correctly."""
        y = np.asarray(y)
        if y.shape[0] == 0:
            raise ValueError("cannot compute accuracy on an empty batch")
        return float(np.mean(self.predict(X) == y))

    # ------------------------------------------------------------------ misc
    def _rebind_views(self) -> None:
        """Re-attach every layer's parameter/gradient views to the flat buffers.

        ``copy.deepcopy`` and ``pickle`` copy each ndarray independently, so a
        copied layer's ``W`` would otherwise be a *detached* array rather than a
        view into the copied ``_params`` — ``set_params`` on the copy would then
        silently stop reaching the layers.  Every copy path below calls this.
        """
        for layer in self.layers:
            views: dict[str, np.ndarray] = {}
            gviews: dict[str, np.ndarray] = {}
            for owner, spec, sl in self._specs:
                if owner is layer:
                    views[spec.name] = self._params[sl].reshape(spec.shape)
                    gviews[spec.name] = self._grads[sl].reshape(spec.shape)
            layer.bind(views, gviews)

    def __getstate__(self) -> dict:
        return dict(self.__dict__)

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._rebind_views()

    def __deepcopy__(self, memo: dict) -> "NeuralNetwork":
        import copy

        cls = self.__class__
        twin = cls.__new__(cls)
        memo[id(self)] = twin
        for key, value in self.__dict__.items():
            setattr(twin, key, copy.deepcopy(value, memo))
        twin._rebind_views()
        return twin

    def clone(self) -> "NeuralNetwork":
        """Deep copy: identical architecture + parameter values, fresh buffers."""
        import copy

        twin = copy.deepcopy(self)
        return twin

    def _check_input(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.input_dim:
            raise ValueError(
                f"input must be (batch, {self.input_dim}), got shape {X.shape}")
        return X

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = "->".join(type(layer).__name__ for layer in self.layers)
        return (f"NeuralNetwork({names}, input_dim={self.input_dim}, "
                f"params={self.num_parameters})")
