"""Declarative churn model for the client–edge–cloud simulation.

A :class:`ChurnPlan` is a frozen, seeded description of *who comes and goes*
during a run — client arrivals and departures, edge-server crash/recover
episodes, and network partitions that sever an edge–cloud link and later
heal.  The plan itself never draws random numbers; the
:class:`~repro.membership.manager.MembershipManager` turns it into per-round
transitions whose every draw is a *pure function* of
``(plan.seed, round, entity)``, which is what makes churny runs reproducible
and checkpoint/resume across a failover boundary exact.

``ChurnPlan.none()`` (or simply not passing a plan) disables every membership
path: algorithms take the exact same code paths and produce bit-identical
outputs to a build without the membership layer.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.utils.validation import check_probability

__all__ = ["ChurnPlan"]

#: ``rehome`` spellings accepted by :meth:`ChurnPlan.parse`.
_BOOL_VALUES = {"1": True, "true": True, "yes": True, "on": True,
                "0": False, "false": False, "no": False, "off": False}


@dataclass(frozen=True)
class ChurnPlan:
    """Seeded description of the membership dynamics of one run.

    Rates are per-round probabilities in ``[0, 1]``; mean times are in cloud
    rounds and drive geometric (memoryless) episode lengths, so an entity's
    up/down trajectory is a two-state Markov chain whose transition draws are
    pure functions of ``(seed, round, entity)``.

    Parameters
    ----------
    arrive:
        Per-round probability that an *absent* client (re)joins the system.
        A joining client is warm-synced: the current model is shipped down
        its ``client_edge`` link before it can participate.
    depart:
        Per-round probability that an active client leaves.  Departed clients
        keep their data shard and RNG streams and may return later.
    start_absent:
        Fraction of clients (in expectation, per-client draw) absent when the
        run starts — the population the arrival process draws from.
    edge_mttf:
        Mean rounds between crashes of an up edge server (mean time to
        failure); ``0`` disables edge crash episodes.  A crashed edge is dark
        to the cloud *and* loses its clients: with ``rehome`` enabled the
        :class:`~repro.membership.manager.MembershipManager` re-homes them to
        surviving edges, otherwise they sit idle until the edge recovers.
    edge_mttr:
        Mean rounds a crashed edge stays down (mean time to recovery).
    link_mttf:
        Mean rounds between partitions of an edge–cloud link; ``0`` disables
        partition episodes.  A partitioned edge is dark to the cloud but
        *keeps* its clients (they are unreachable, not orphaned); on heal the
        diverged edge state is reconciled against the cloud.
    link_mttr:
        Mean rounds a partition lasts.
    heartbeat_timeout_s:
        The failure-detection budget: simulated seconds of missed heartbeats
        before the cloud declares an edge crashed/partitioned.  Charged to
        the virtual clock on every detection.
    rehome:
        ``True`` (default) re-homes the clients of a crashed edge to
        surviving edges (deterministic least-load policy, see the manager);
        ``False`` is the no-failover comparison arm — orphans idle until
        their edge recovers.
    seed:
        Root seed of the membership process — independent of the algorithm
        seed and the fault seed, so the same training run can be replayed
        under different churn draws.
    """

    arrive: float = 0.0
    depart: float = 0.0
    start_absent: float = 0.0
    edge_mttf: float = 0.0
    edge_mttr: float = 2.0
    link_mttf: float = 0.0
    link_mttr: float = 2.0
    heartbeat_timeout_s: float = 0.5
    rehome: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("arrive", "depart", "start_absent"):
            check_probability(getattr(self, name), name)
        for name in ("edge_mttf", "link_mttf"):
            value = getattr(self, name)
            if value != 0.0 and value < 1.0:
                raise ValueError(
                    f"{name} must be 0 (disabled) or >= 1 round, got {value}")
        for name in ("edge_mttr", "link_mttr"):
            if getattr(self, name) < 1.0:
                raise ValueError(
                    f"{name} must be >= 1 round, got {getattr(self, name)}")
        if self.heartbeat_timeout_s < 0:
            raise ValueError(f"heartbeat_timeout_s must be >= 0, "
                             f"got {self.heartbeat_timeout_s}")
        if not isinstance(self.rehome, bool):
            raise ValueError(f"rehome must be a bool, got {self.rehome!r}")

    # ------------------------------------------------------------- inspection
    @property
    def is_null(self) -> bool:
        """True when no membership event can ever fire.

        ``rehome`` / ``heartbeat_timeout_s`` alone do not activate the plan:
        they parameterize reactions to events that cannot happen.
        """
        return (self.arrive == 0.0 and self.depart == 0.0
                and self.start_absent == 0.0 and self.edge_mttf == 0.0
                and self.link_mttf == 0.0)

    # ------------------------------------------------------------ construction
    @classmethod
    def none(cls) -> "ChurnPlan":
        """The static-topology plan: every algorithm output is bit-identical
        to a run with no ``churn=`` argument at all."""
        return cls()

    @classmethod
    def parse(cls, spec: str) -> "ChurnPlan":
        """Build a plan from a CLI spec like
        ``"arrive=0.05,depart=0.02,edge_mttf=40,edge_mttr=5,seed=3"``.

        Keys are the :class:`ChurnPlan` field names; ``rehome`` accepts
        ``1/0/true/false/yes/no/on/off``.  An empty spec is the null plan.
        """
        kwargs: dict = {}
        known = {f.name for f in fields(cls)}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"churn spec entry {part!r} is not key=value")
            key, _, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key not in known:
                raise ValueError(f"unknown churn spec key {key!r}; "
                                 f"options: {sorted(known)}")
            if key == "seed":
                kwargs[key] = int(raw)
            elif key == "rehome":
                try:
                    kwargs[key] = _BOOL_VALUES[raw.lower()]
                except KeyError:
                    raise ValueError(
                        f"rehome must be one of {sorted(_BOOL_VALUES)}, "
                        f"got {raw!r}") from None
            else:
                kwargs[key] = float(raw)
        return cls(**kwargs)
