"""repro.membership — dynamic membership and the self-healing hierarchy.

Two cooperating parts (see DESIGN.md §"Membership & self-healing"):

* :mod:`repro.membership.plan` — the declarative, seeded :class:`ChurnPlan`
  (client arrivals/departures, edge crash/recover episodes with MTTF/MTTR,
  edge–cloud partitions that later heal);
* :mod:`repro.membership.manager` — the :class:`MembershipManager` that turns
  a plan into per-round transitions that are pure functions of
  ``(seed, round, entity)``, plus the self-healing machinery: heartbeat
  failure detection on a timeout budget, deterministic least-load re-homing
  of orphaned clients, edge-state handoff on failover, and reconciliation on
  partition heal — every reaction charged to the communication tracker and
  the :mod:`repro.simtime` cost model, and ledgered as ``membership`` trace
  events.

Every algorithm accepts a ``churn=`` keyword (``None`` → the static
topology, the exact pre-existing code paths); the live topology is captured
in checkpoints so resume mid-failover is bit-identical.
"""

from repro.membership.manager import (
    MembershipManager,
    NULL_MEMBERSHIP,
    NullMembership,
    resolve_membership,
)
from repro.membership.plan import ChurnPlan

__all__ = [
    "ChurnPlan",
    "MembershipManager",
    "NullMembership",
    "NULL_MEMBERSHIP",
    "resolve_membership",
]
