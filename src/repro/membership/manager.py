"""Seeded membership dynamics and the self-healing hierarchy.

The :class:`MembershipManager` turns a
:class:`~repro.membership.plan.ChurnPlan` into concrete per-round membership
transitions.  Every draw is a pure function of
``(plan.seed, round, kind, entity)`` via dedicated
:class:`numpy.random.SeedSequence` streams (the same idiom as the fault
injector), so

* the same plan + seed reproduce the same arrivals, departures, crashes and
  partitions regardless of which algorithm (or how much observability) is
  running,
* transitions never touch the *algorithm's* RNG streams — a null plan is
  bit-identical to no plan at all, and
* a run killed and resumed from a checkpoint replays the remaining rounds'
  churn exactly, because the live topology (active set, home map, edge/link
  episode states) is checkpointed alongside the model.

Self-healing lives here too: heartbeat-style failure detection on the plan's
timeout budget (charged to the virtual clock), deterministic least-load
re-homing of a crashed edge's orphaned clients, edge-state handoff on
failover, and state reconciliation when a partition heals — each charged to
the communication tracker and the :mod:`repro.simtime` cost model so failover
has a bytes and simulated-time price.

Every transition emits a ``membership`` trace event (``joined`` / ``left`` /
``re-homed`` / ``edge_crash`` / ``edge_recover`` / ``partition`` / ``heal`` /
``reconcile``) carrying the post-transition active population, so the
trace-report ledger can be balance-checked: ``joined − left`` must equal the
net population delta.
"""

from __future__ import annotations

import numpy as np

from repro.membership.plan import ChurnPlan
from repro.obs import NULL_TRACER
from repro.utils.rng import stable_key

__all__ = ["MembershipManager", "NullMembership", "NULL_MEMBERSHIP",
           "resolve_membership"]

#: Floats carried by one heartbeat probe (the detection traffic).
HEARTBEAT_FLOATS = 1.0
#: Non-model floats in an edge-state handoff: the cached loss estimate plus
#: the (summarized) quarantine set that travels with the anchor model.
HANDOFF_EXTRA_FLOATS = 2.0


class NullMembership:
    """Shared no-op: the static topology.  Every query is the identity."""

    enabled = False
    plan = ChurnPlan.none()

    def bind(self, edges) -> None:
        """No-op: a static topology has nothing to bind."""

    def bind_flat(self, clients, num_edges: int = 0) -> None:
        """No-op: a static topology has nothing to bind."""

    def begin_round(self, round_index: int, *, tracker=None, timing=None,
                    dim: int = 0) -> None:
        """No-op: no churn transitions ever happen."""

    def edge_available(self, edge_id: int) -> bool:
        """Every edge is always up."""
        return True

    def client_active(self, client_id: int) -> bool:
        """Every client is always active."""
        return True

    def roster(self, edge_id: int):
        """``None``: algorithms take their static (bit-identical) path."""
        return None

    def state_dict(self) -> dict:
        """Empty: nothing to checkpoint."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """No-op: nothing to restore."""


#: The module-level shared instance (never mutated).
NULL_MEMBERSHIP = NullMembership()


class _LazyActorMap:
    """``client_id -> actor`` mapping that resolves through a population.

    Stands in for the eager ``_actors`` dict when the manager is bound to a
    virtual topology: holding real actor references for every client would
    materialize the population, so lookups defer to the population's
    ``client(cid)`` (which returns the live cohort member or materializes it
    on the spot).
    """

    __slots__ = ("_resolve",)

    def __init__(self, resolve) -> None:
        self._resolve = resolve

    def __getitem__(self, client_id: int):
        return self._resolve(client_id)


class MembershipManager:
    """Per-run membership oracle plus the self-healing bookkeeping.

    Parameters
    ----------
    plan:
        The declarative churn configuration.  ``ChurnPlan.none()`` yields a
        disabled manager whose every query is a constant-time no-op.
    obs:
        Optional :class:`~repro.obs.Tracer` receiving ``membership`` events
        and the membership metric counters; defaults to the shared no-op
        tracer.

    An algorithm binds its topology once at construction — :meth:`bind` with
    its edge servers (hierarchical algorithms: rosters and re-homing apply),
    or :meth:`bind_flat` with its flat client list (two-layer baselines:
    client churn only; the multi-layer generalization also passes its
    top-area count so crash/partition episodes darken whole subtrees,
    without cross-subtree re-homing).
    """

    enabled: bool

    def __init__(self, plan: ChurnPlan, *, obs=None) -> None:
        self.plan = plan
        self.obs = obs if obs is not None else NULL_TRACER
        self.enabled = not plan.is_null
        self._bound = False
        self._rehoming = False        # rosters exist (hierarchical binding)
        self._num_edges = 0
        self._actors: dict[int, object] = {}
        self._client_ids: tuple[int, ...] = ()
        self._initial_home: dict[int, int] = {}
        # ---- the live topology (checkpointed; see state_dict) -------------
        self.active: set[int] = set()
        self.home: dict[int, int] = {}
        self.edge_up: dict[int, bool] = {}
        self.partitioned: set[int] = set()

    # ------------------------------------------------------------ rng plumbing
    def _rng(self, round_index: int, kind: str,
             entity: str) -> np.random.Generator:
        """A generator that is a pure function of its arguments and the seed."""
        ss = np.random.SeedSequence(
            entropy=self.plan.seed,
            spawn_key=(stable_key("membership:" + kind), round_index,
                       stable_key(entity)))
        return np.random.default_rng(ss)

    def _emit(self, round_index: int, action: str, entity: str,
              **fields) -> None:
        self.obs.event("membership", round=round_index, action=action,
                       entity=entity, active=len(self.active), **fields)

    # ---------------------------------------------------------------- binding
    def bind(self, edges) -> None:
        """Bind a hierarchical topology: rosters, homes, and re-homing apply.

        Virtual edge servers (anything exposing ``client_ids()`` +
        ``resolve_client``) bind *lazily*: the manager keeps ids and homes
        only, and actors are materialized through the population exactly when
        a roster is assembled.  Membership state is O(population ids) either
        way — ids, not clients — which is the documented cost of composing
        churn with a virtual population.
        """
        if not self.enabled:
            return
        self._num_edges = len(edges)
        if edges and hasattr(edges[0], "client_ids"):
            self._actors = _LazyActorMap(edges[0].resolve_client)
            self._initial_home = {cid: edge.edge_id
                                  for edge in edges for cid in edge.client_ids()}
        else:
            self._actors = {client.client_id: client
                            for edge in edges for client in edge.clients}
            self._initial_home = {client.client_id: edge.edge_id
                                  for edge in edges for client in edge.clients}
        self._rehoming = True
        self._init_population(sorted(self._initial_home))

    def bind_flat(self, clients, num_edges: int = 0) -> None:
        """Bind a flat topology: client churn only (no rosters to move).

        ``num_edges > 0`` additionally arms crash/partition episodes for the
        caller's ``num_edges`` top-level areas — they go dark and recover,
        but their clients are never re-homed across subtrees (the data
        assignment is structural there; documented limitation).

        A virtual client roster (exposing ``client_ids()``) binds by id
        without materializing a single client.
        """
        if not self.enabled:
            return
        self._num_edges = int(num_edges)
        self._actors = {}
        self._initial_home = {}
        self._rehoming = False
        if hasattr(clients, "client_ids"):
            self._init_population(sorted(clients.client_ids()))
        else:
            self._init_population(sorted(c.client_id for c in clients))

    def _init_population(self, client_ids) -> None:
        self._client_ids = tuple(client_ids)
        self.home = dict(self._initial_home)
        self.edge_up = {eid: True for eid in range(self._num_edges)}
        self.partitioned = set()
        self.active = set(self._client_ids)
        if self.plan.start_absent > 0.0:
            for cid in self._client_ids:
                gen = self._rng(0, "start_absent", f"client:{cid}")
                if gen.random() < self.plan.start_absent:
                    self.active.discard(cid)
        self._bound = True
        # The ledger's opening balance: the initial active population.
        self._emit(-1, "population", "run", total=len(self._client_ids))

    # --------------------------------------------------------------- queries
    def edge_available(self, edge_id: int) -> bool:
        """Is this edge (or top-level area) reachable from the cloud?"""
        if not self.enabled:
            return True
        return (self.edge_up.get(edge_id, True)
                and edge_id not in self.partitioned)

    def client_active(self, client_id: int) -> bool:
        """Is this client currently a member of the federation?"""
        return not self.enabled or client_id in self.active

    def roster(self, edge_id: int):
        """The edge's *current* client actors, or ``None`` when membership is
        disabled (or flat-bound) — callers fall back to the construction-time
        roster, byte-identically."""
        if not self.enabled or not self._rehoming:
            return None
        return [self._actors[cid] for cid in self._client_ids
                if cid in self.active and self.home.get(cid) == edge_id]

    # ------------------------------------------------------------- transitions
    def begin_round(self, round_index: int, *, tracker=None, timing=None,
                    dim: int = 0) -> None:
        """Advance all membership processes to ``round_index``.

        Called once per cloud round, before the algorithm's round body, inside
        the round's virtual-clock scope: detection waits and handoff/sync
        transfers land on the round's simulated timeline and in the round's
        communication delta.  Transition order is fixed (edge episodes, then
        link episodes, then client churn; entities in id order) so the event
        stream and every downstream draw are deterministic.
        """
        if not self.enabled:
            return
        if not self._bound:
            raise RuntimeError("MembershipManager.begin_round before bind(); "
                               "the algorithm must bind its topology first")
        plan = self.plan
        if plan.edge_mttf > 0.0 and self._num_edges:
            self._edge_episodes(round_index, tracker, timing, dim)
        if plan.link_mttf > 0.0 and self._num_edges:
            self._link_episodes(round_index, tracker, timing, dim)
        if plan.arrive > 0.0 or plan.depart > 0.0:
            self._client_churn(round_index, tracker, timing, dim)

    def _detect(self, round_index: int, entity: str, tracker, timing) -> None:
        """Heartbeat failure detection: the cloud notices a dead edge/link
        only after the plan's timeout budget of missed heartbeats."""
        if timing is not None and timing.enabled and \
                self.plan.heartbeat_timeout_s > 0.0:
            timing.advance(self.plan.heartbeat_timeout_s, f"detect:{entity}")
        if tracker is not None:
            # The heartbeat probe that went unanswered.
            tracker.record("edge_cloud", "up", count=1,
                           floats=HEARTBEAT_FLOATS)
        self.obs.count("membership_detections_total")

    def _edge_episodes(self, round_index: int, tracker, timing,
                       dim: int) -> None:
        p_fail = 1.0 / self.plan.edge_mttf
        p_heal = 1.0 / self.plan.edge_mttr
        for eid in range(self._num_edges):
            entity = f"edge:{eid}"
            gen = self._rng(round_index, "edge_episode", entity)
            u = gen.random()
            if self.edge_up[eid]:
                if u < p_fail:
                    self.edge_up[eid] = False
                    self._detect(round_index, entity, tracker, timing)
                    self._emit(round_index, "edge_crash", entity)
                    self.obs.count("membership_edge_crashes_total")
                    if self.plan.rehome and self._rehoming:
                        self._rehome_orphans(round_index, eid, tracker,
                                             timing, dim)
            elif u < p_heal:
                self.edge_up[eid] = True
                self._emit(round_index, "edge_recover", entity)
                self.obs.count("membership_recovered_total")
                # The cloud re-syncs the anchor model to the reborn edge.
                if tracker is not None:
                    tracker.record("edge_cloud", "down", count=1, floats=dim)
                if timing is not None and timing.enabled:
                    timing.transfer("edge_cloud", eid, dim)

    def _rehome_orphans(self, round_index: int, dead_eid: int, tracker,
                        timing, dim: int) -> None:
        """Move every client homed at the crashed edge to a surviving one.

        Target selection is deterministic: least current load (clients homed
        there, active or not), then shortest ring distance from the dead
        edge, then lowest edge id.  Active orphans are charged a warm model
        sync on their new ``client_edge`` link; each distinct target edge is
        charged the state handoff (the dead edge's anchor model, cached loss
        estimate, and quarantine summary, replayed down from the cloud).
        """
        survivors = [e for e in range(self._num_edges)
                     if e != dead_eid and self.edge_up[e]
                     and e not in self.partitioned]
        orphans = [cid for cid in self._client_ids
                   if self.home.get(cid) == dead_eid]
        if not survivors or not orphans:
            return
        load = {e: 0 for e in survivors}
        for cid, eid in self.home.items():
            if eid in load:
                load[eid] += 1
        n = self._num_edges

        def ring(e: int) -> int:
            return min((e - dead_eid) % n, (dead_eid - e) % n)

        handoff_targets: set[int] = set()
        for cid in orphans:
            target = min(survivors, key=lambda e: (load[e], ring(e), e))
            load[target] += 1
            self.home[cid] = target
            handoff_targets.add(target)
            if cid in self.active:
                self._emit(round_index, "re-homed", f"client:{cid}",
                           src=dead_eid, dst=target)
                self.obs.count("membership_rehomed_total")
                # Warm sync: the new edge ships the current model down.
                if tracker is not None:
                    tracker.record("client_edge", "down", count=1, floats=dim)
                if timing is not None and timing.enabled:
                    timing.transfer("client_edge", cid, dim)
        for target in sorted(handoff_targets):
            # Edge-state handoff: anchor model + loss estimate + quarantine
            # summary, shipped to each adopting edge.
            if tracker is not None:
                tracker.record("edge_cloud", "down", count=1,
                               floats=dim + HANDOFF_EXTRA_FLOATS)
            if timing is not None and timing.enabled:
                timing.transfer("edge_cloud", target,
                                dim + HANDOFF_EXTRA_FLOATS)
            self.obs.count("membership_handoffs_total")

    def _link_episodes(self, round_index: int, tracker, timing,
                       dim: int) -> None:
        p_cut = 1.0 / self.plan.link_mttf
        p_heal = 1.0 / self.plan.link_mttr
        for eid in range(self._num_edges):
            entity = f"link:{eid}"
            gen = self._rng(round_index, "link_episode", entity)
            u = gen.random()
            if eid not in self.partitioned:
                if u < p_cut:
                    self.partitioned.add(eid)
                    self._detect(round_index, entity, tracker, timing)
                    self._emit(round_index, "partition", entity, edge=eid)
                    self.obs.count("membership_partitions_total")
            elif u < p_heal:
                self.partitioned.discard(eid)
                self._emit(round_index, "heal", entity, edge=eid)
                self.obs.count("membership_heals_total")
                # Reconcile the diverged edge: anchor re-sync down, the
                # edge's cached loss estimate back up.
                if tracker is not None:
                    tracker.record("edge_cloud", "down", count=1, floats=dim)
                    tracker.record("edge_cloud", "up", count=1, floats=1.0)
                if timing is not None and timing.enabled:
                    timing.transfer("edge_cloud", eid, dim + 1)
                self._emit(round_index, "reconcile", f"edge:{eid}",
                           floats=dim + 1)

    def _client_churn(self, round_index: int, tracker, timing,
                      dim: int) -> None:
        plan = self.plan
        for cid in self._client_ids:
            entity = f"client:{cid}"
            gen = self._rng(round_index, "client_churn", entity)
            u = gen.random()
            if cid in self.active:
                if plan.depart > 0.0 and u < plan.depart:
                    self.active.discard(cid)
                    self._emit(round_index, "left", entity,
                               edge=self.home.get(cid))
                    self.obs.count("membership_left_total")
            elif plan.arrive > 0.0 and u < plan.arrive:
                self.active.add(cid)
                # A returning client whose home crashed meanwhile is adopted
                # immediately (when re-homing is on and a survivor exists).
                eid = self.home.get(cid)
                if (self._rehoming and plan.rehome and eid is not None
                        and not self.edge_available(eid)):
                    survivors = [e for e in range(self._num_edges)
                                 if self.edge_available(e)]
                    if survivors:
                        loads = {e: 0 for e in survivors}
                        for oid in self.active:
                            h = self.home.get(oid)
                            if h in loads and oid != cid:
                                loads[h] += 1
                        eid = min(survivors,
                                  key=lambda e: (loads[e], e))
                        self.home[cid] = eid
                self._emit(round_index, "joined", entity, edge=eid)
                self.obs.count("membership_joined_total")
                # Warm join: the current model is shipped down before the
                # client can participate.
                if tracker is not None:
                    tracker.record("client_edge", "down", count=1, floats=dim)
                if timing is not None and timing.enabled:
                    timing.transfer("client_edge", cid, dim)

    # ------------------------------------------------------------ persistence
    def state_dict(self) -> dict:
        """The live topology (the transition draws themselves are pure)."""
        if not self.enabled:
            return {}
        return {"active": sorted(self.active),
                "home": {str(cid): int(eid)
                         for cid, eid in sorted(self.home.items())},
                "edge_up": {str(eid): bool(up)
                            for eid, up in sorted(self.edge_up.items())},
                "partitioned": sorted(self.partitioned)}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (checkpoint resume).

        An empty dict (a checkpoint written before the membership layer
        existed, or by a run without churn) keeps the bind-time topology, so
        stale checkpoints resume cleanly.
        """
        if not state or not self.enabled:
            return
        self.active = {int(c) for c in state.get("active", ())}
        self.home = {int(c): int(e)
                     for c, e in state.get("home", {}).items()}
        self.edge_up = {int(e): bool(up)
                        for e, up in state.get("edge_up", {}).items()}
        self.partitioned = {int(e) for e in state.get("partitioned", ())}


def resolve_membership(churn, *, obs=None):
    """Coerce ``churn`` (``None`` | spec string | :class:`ChurnPlan` |
    manager) into a membership manager bound to ``obs``.

    ``None`` and null plans resolve to the shared :data:`NULL_MEMBERSHIP`,
    keeping the static-topology path free of per-run allocations."""
    if isinstance(churn, (MembershipManager, NullMembership)):
        return churn
    if churn is None:
        return NULL_MEMBERSHIP
    if isinstance(churn, str):
        churn = ChurnPlan.parse(churn)
    if not isinstance(churn, ChurnPlan):
        raise TypeError(f"churn must be a ChurnPlan, spec string, or "
                        f"MembershipManager, got {type(churn).__name__}")
    if churn.is_null:
        return NULL_MEMBERSHIP
    return MembershipManager(churn, obs=obs)
