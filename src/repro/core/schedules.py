"""The communication-convergence tradeoff schedules of §5.

Theorems 1 and 2 show that choosing ``τ1·τ2 ∈ Θ(T^α)`` for a tunable ``α ∈ [0, 1)``
yields ``Θ(T^{1-α})`` edge-cloud communication complexity with convergence rates

* convex:     ``O(1 / T^{(1-α)/2})`` with ``η_p = Θ(1/T^{(1+α)/2})`` and
  ``η_w = Θ(1/T^{1-2α})`` for ``α ∈ (0, ¼)``, else ``η_w = Θ(1/T^{1/2})``;
* non-convex: ``O(1 / T^{(1-α)/4})`` with ``η_p = Θ(1/T^{(1+3α)/4})`` and
  ``η_w = Θ(1/T^{(3+α)/4})``.

:func:`tradeoff_schedule` materializes a concrete configuration
(``τ1``, ``τ2``, ``η_w``, ``η_p``, rounds ``K``) from ``(T, α)``, and the
``*_rate``/``*_complexity`` helpers expose the asymptotic orders used by the
Table 1 generator in :mod:`repro.theory.table1`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "TradeoffSchedule",
    "tradeoff_schedule",
    "communication_complexity_order",
    "convergence_rate_order",
    "split_tau_product",
]


@dataclass(frozen=True)
class TradeoffSchedule:
    """A concrete operating point on the §5 tradeoff curve.

    Attributes
    ----------
    alpha:
        The tradeoff exponent in [0, 1).
    T:
        Total training slots.
    tau1, tau2:
        The local/aggregation period split with ``τ1·τ2 ≈ T^α``.
    rounds:
        Cloud rounds ``K = T / (τ1·τ2)`` (rounded up, >= 1).
    eta_w, eta_p:
        Learning rates from the theorem remarks (up to the constants ``c_w``,
        ``c_p`` supplied at construction).
    convex:
        Which regime the rates follow.
    """

    alpha: float
    T: int
    tau1: int
    tau2: int
    rounds: int
    eta_w: float
    eta_p: float
    convex: bool

    @property
    def edge_cloud_rounds(self) -> int:
        """Order-``T^{1-α}`` edge-cloud communications (2 cycles per cloud round)."""
        return 2 * self.rounds

    @property
    def predicted_rate(self) -> float:
        """The theoretical convergence-rate order evaluated at ``T``."""
        return convergence_rate_order(self.T, self.alpha, convex=self.convex)


def split_tau_product(product: int) -> tuple[int, int]:
    """Split ``τ1·τ2 = product`` into near-balanced factors ``(τ1, τ2)``.

    Uses the divisor of ``product`` closest to its square root as ``τ2``; exact
    factorization keeps ``K·τ1·τ2 = T`` bookkeeping clean.
    """
    if product < 1:
        raise ValueError(f"tau product must be >= 1, got {product}")
    best = 1
    for cand in range(1, int(math.isqrt(product)) + 1):
        if product % cand == 0:
            best = cand
    return product // best, best


def tradeoff_schedule(T: int, alpha: float, *, convex: bool = True,
                      c_w: float = 1.0, c_p: float = 1.0) -> TradeoffSchedule:
    """Build the §5 operating point for horizon ``T`` and exponent ``α``.

    Parameters
    ----------
    T:
        Total training slots (must be >= 1).
    alpha:
        Tradeoff exponent in [0, 1).
    convex:
        Select the Theorem 1 (convex) or Theorem 2 (non-convex) rates.
    c_w, c_p:
        Learning-rate constants in front of the theoretical orders.
    """
    if T < 1:
        raise ValueError(f"T must be >= 1, got {T}")
    if not 0.0 <= alpha < 1.0:
        raise ValueError(f"alpha must be in [0, 1), got {alpha}")
    if c_w <= 0 or c_p <= 0:
        raise ValueError("learning-rate constants must be positive")
    product = max(1, int(round(T ** alpha)))
    tau1, tau2 = split_tau_product(product)
    rounds = max(1, math.ceil(T / (tau1 * tau2)))
    if convex:
        eta_p = c_p / T ** ((1.0 + alpha) / 2.0)
        if 0.0 < alpha < 0.25:
            eta_w = c_w / T ** (1.0 - 2.0 * alpha)
        else:
            eta_w = c_w / T ** 0.5
    else:
        eta_p = c_p / T ** ((1.0 + 3.0 * alpha) / 4.0)
        eta_w = c_w / T ** ((3.0 + alpha) / 4.0)
    return TradeoffSchedule(alpha=alpha, T=T, tau1=tau1, tau2=tau2, rounds=rounds,
                            eta_w=eta_w, eta_p=eta_p, convex=convex)


def communication_complexity_order(T: int, alpha: float) -> float:
    """The ``Θ(T^{1-α})`` edge-cloud communication complexity, evaluated at ``T``."""
    if T < 1:
        raise ValueError(f"T must be >= 1, got {T}")
    if not 0.0 <= alpha < 1.0:
        raise ValueError(f"alpha must be in [0, 1), got {alpha}")
    return T ** (1.0 - alpha)


def convergence_rate_order(T: int, alpha: float, *, convex: bool) -> float:
    """The Theorem 1/2 convergence-rate order ``O(1/T^{(1-α)/2 or /4})`` at ``T``."""
    if T < 1:
        raise ValueError(f"T must be >= 1, got {T}")
    if not 0.0 <= alpha < 1.0:
        raise ValueError(f"alpha must be in [0, 1), got {alpha}")
    exponent = (1.0 - alpha) / (2.0 if convex else 4.0)
    return 1.0 / T ** exponent
