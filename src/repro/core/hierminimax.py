"""HierMinimax — Algorithm 1 of the paper.

Hierarchical distributed minimax optimization over the client-edge-cloud network:

* **Phase 1 (model update).**  The cloud samples ``m_E`` edge servers i.i.d. from
  the current edge weights ``p^(k)`` and a checkpoint index ``(c1, c2)`` uniformly
  from ``[τ1]×[τ2]``, then broadcasts ``w^(k)`` and ``(c1, c2)``.  Each sampled edge
  runs ModelUpdate — ``τ2`` client-edge aggregation blocks of ``τ1`` local SGD steps
  (Eq. (4)) — and simultaneously aggregates the block-``c2``/step-``c1`` checkpoint
  snapshot.  The cloud averages the returned models (Eq. (5)) and checkpoint models
  (Eq. (6)).
* **Phase 2 (weight update).**  The cloud samples a fresh uniform subset of ``m_E``
  edges, broadcasts the checkpoint model, collects each sampled edge's minibatch
  loss estimate, builds the unbiased gradient estimate ``v`` (``v_e = N_E/m_E ·
  f_e`` on sampled coordinates), and takes the projected ascent step
  ``p^(k+1) = Π_P(p^(k) + η_p τ1 τ2 v)`` (Eq. (7)).

The checkpoint mechanism is what lets the weight vector be updated once per
``τ1·τ2`` model-update slots while keeping the ascent direction unbiased for the
*average* iterate of the round (Appendix A) — the asymmetric-synchronization device
that the convergence analysis of §5 hinges on.

Setting ``τ1 = τ2 = 1`` with full participation recovers Stochastic-AFL's update
pattern; ``τ2 = 1`` recovers DRFA's (Remarks after Theorems 1–2); both reductions
are verified by the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import EDGE_UNAVAILABLE, FederatedAlgorithm, \
    _restore_generator
from repro.data.dataset import FederatedDataset
from repro.defense.policy import robust_combine
from repro.nn.models import ModelFactory
from repro.ops.projections import Projection, identity_projection, project_simplex
from repro.sim.cloud import CloudServer
from repro.topology.sampling import (
    sample_by_weight,
    sample_checkpoint_slot,
    sample_uniform_subset,
)
from repro.utils.validation import check_fraction, check_positive_float, check_positive_int

__all__ = ["HierMinimax"]


class HierMinimax(FederatedAlgorithm):
    """The paper's algorithm: hierarchical distributed minimax optimization.

    Parameters
    ----------
    dataset, model_factory, batch_size, eta_w, seed, projection_w, logger:
        See :class:`~repro.core.base.FederatedAlgorithm`.
    eta_p:
        Weight learning rate ``η_p`` of Eq. (7).
    tau1:
        Local SGD steps per client-edge aggregation block.
    tau2:
        Client-edge aggregation blocks per cloud round.
    m_edges:
        Edge servers sampled per phase (``m_E``); defaults to full participation.
    projection_p:
        Projection onto the weight constraint set ``P``; defaults to the
        probability simplex ``Δ_{N_E-1}``.  Pass e.g. a
        :func:`~repro.ops.projections.project_capped_simplex` closure for the
        paper's general convex-constraint variant.
    use_checkpoint:
        Ablation switch.  ``True`` (the paper's algorithm) estimates Phase-2
        losses at the uniformly-sampled checkpoint model of Eq. (6) — the device
        that keeps the ascent direction unbiased for the round's iterates.
        ``False`` estimates them at the round-final global model ``w^(k+1)``
        instead (a biased but cheaper variant), exercised by
        ``benchmarks/bench_ablation_checkpoint.py``.
    compressor:
        Optional :class:`~repro.compression.Compressor` applied to all model
        uploads (client→edge and edge→cloud) as deltas against the receiver's
        reference model — the quantized extension in the spirit of
        Hier-Local-QSGD [22].  ``None`` (default) is the paper's full-precision
        algorithm.
    """

    name = "hierminimax"
    is_minimax = True
    uses_hierarchy = True

    def __init__(self, dataset: FederatedDataset, model_factory: ModelFactory, *,
                 eta_p: float = 1e-3, tau1: int = 2, tau2: int = 2,
                 m_edges: int | None = None,
                 projection_p: Projection | None = None,
                 use_checkpoint: bool = True,
                 compressor=None,
                 batch_size: int = 1, eta_w: float = 1e-3, seed: int = 0,
                 projection_w: Projection = identity_projection,
                 logger=None, obs=None, faults=None, backend=None,
                 defense=None, timing=None, churn=None,
                 population=None) -> None:
        super().__init__(dataset, model_factory, batch_size=batch_size, eta_w=eta_w,
                         seed=seed, projection_w=projection_w, logger=logger,
                         obs=obs, faults=faults, backend=backend,
                         defense=defense, timing=timing, churn=churn,
                         population=population)
        self.eta_p = check_positive_float(eta_p, "eta_p")
        self.tau1 = check_positive_int(tau1, "tau1")
        self.tau2 = check_positive_int(tau2, "tau2")
        n_e = self.dataset.num_edges
        self.m_edges = n_e if m_edges is None else check_positive_int(m_edges, "m_edges")
        check_fraction(self.m_edges, n_e, "m_edges")
        self.edges = self._build_edges()
        self.membership.bind(self.edges)
        self.cloud = CloudServer(
            n_e, weight_projection=projection_p if projection_p is not None
            else project_simplex)
        self.p: np.ndarray = self.cloud.initial_weights()
        self.use_checkpoint = bool(use_checkpoint)
        self.compressor = compressor
        self._comp_rng = self.rng_factory.stream("compression")
        self._dim = self.w.size
        # Last loss estimate seen per edge — Phase 2's stale fallback when an
        # edge is dark or its probe reply is lost.
        self._last_losses: dict[int, float] = {}

    @property
    def slots_per_round(self) -> int:
        """``τ1·τ2`` local steps per cloud round."""
        return self.tau1 * self.tau2

    def current_weights(self) -> np.ndarray:
        """The current edge weight vector ``p^(k)``."""
        return self.p

    # ---------------------------------------------------------- checkpointing
    def _extra_state(self) -> dict:
        return {"p": self.p, "comp_rng": self._comp_rng,
                "last_losses": {str(k): v
                                for k, v in self._last_losses.items()}}

    def _restore_extra(self, extra: dict) -> None:
        self.p = np.asarray(extra["p"], dtype=np.float64)
        _restore_generator(self._comp_rng, extra["comp_rng"])
        self._last_losses = {int(k): float(v)
                             for k, v in extra.get("last_losses", {}).items()}

    # ---------------------------------------------------------- phase-1 pieces
    def _edge_upload(self, round_index: int, eid: int,
                     checkpoint: tuple[int, int] | None,
                     upload_floats: float,
                     ) -> tuple[np.ndarray, np.ndarray | None] | None:
        """One sampled edge's Phase-1 leg: broadcast, ModelUpdate, upload.

        Returns the delivered ``(w_e, w_e_ckpt)`` pair, or ``None`` when the
        edge is dark or its upload was lost in transit.  Consumes the
        compression stream, tracker records, and fault draws in exactly the
        order the inline loop did, so extracting it changes no bit.  When a
        virtual clock is active the broadcast/compute/upload durations are
        charged to the innermost open timing scope — the synchronous round
        wraps each call in a ``branch()``; the semi-async variant wraps it in
        ``measure()`` to price the leg without blocking the round.
        """
        faults = self.faults
        timing = self.timing
        d = self._dim
        if faults.enabled and faults.edge_dark(round_index, eid):
            return None
        roster = self._edge_roster(eid)
        if roster is EDGE_UNAVAILABLE:
            return None
        if timing.enabled:
            # Cloud -> edge: w^(k) plus the (c1, c2) checkpoint slot.
            timing.transfer("edge_cloud", eid, d + 2)
        w_e, w_e_ckpt = self.edges[eid].model_update(
            self.engine, self.w, tau1=self.tau1, tau2=self.tau2,
            lr=self.eta_w, projection=self.projection_w,
            checkpoint=checkpoint, tracker=self.tracker,
            compressor=self.compressor, comp_rng=self._comp_rng,
            obs=self.obs, faults=faults, round_index=round_index,
            backend=self.backend, defense=self._edge_agg,
            timing=timing, roster=roster)
        if self.compressor is not None:
            # Edge transmits compressed deltas against the broadcast w^(k).
            w_e = self.w + self.compressor.compress(w_e - self.w,
                                                    self._comp_rng)
            if w_e_ckpt is not None:
                w_e_ckpt = self.w + self.compressor.compress(
                    w_e_ckpt - self.w, self._comp_rng)
        # Edge uploads its round-final model (and its checkpoint model).
        self.tracker.record("edge_cloud", "up", count=1,
                            floats=upload_floats)
        if timing.enabled:
            timing.transfer("edge_cloud", eid, upload_floats)
        if faults.enabled:
            delivered = faults.receive(
                round_index, "edge_cloud", f"edge:{eid}", w_e, w_e_ckpt,
                floats=upload_floats, tracker=self.tracker, ref=self.w)
            if delivered is None:
                return None
            w_e, w_e_ckpt = delivered
        return w_e, w_e_ckpt

    def _upload_floats(self) -> float:
        """Edge→cloud payload per Phase-1 upload (model + optional checkpoint)."""
        unit_floats = (float(self._dim) if self.compressor is None
                       else self.compressor.payload_floats(self._dim))
        return (2 if self.use_checkpoint else 1) * unit_floats

    # ------------------------------------------------------------------ round
    def run_round(self, round_index: int) -> None:
        """One training round: Phase 1 (model + checkpoint) then Phase 2 (weights)."""
        d = self._dim
        obs = self.obs
        faults = self.faults
        timing = self.timing
        # ---- Phase 1: sample edges by p, sample the checkpoint slot.
        sampled = sample_by_weight(self.p, self.m_edges, self.rng)
        c1, c2 = sample_checkpoint_slot(self.tau1, self.tau2, self.rng)
        checkpoint = (c1, c2) if self.use_checkpoint else None
        with obs.span("phase1_model_update", round=round_index,
                      sampled_edges=len(sampled), c1=c1, c2=c2):
            # Cloud broadcasts w^(k) and (c1, c2) to the sampled edges.
            self.tracker.record("edge_cloud", "down",
                                count=len(np.unique(sampled)), floats=d + 2)
            acc_w = np.zeros(d)
            acc_ckpt = np.zeros(d) if self.use_checkpoint else None
            upload_floats = self._upload_floats()
            n_contrib = 0
            n_ckpt = 0
            cloud_agg = self._cloud_agg
            entries: list[tuple[str, float, np.ndarray]] = []
            ckpt_entries: list[tuple[str, float, np.ndarray]] = []
            # Sampled edges work concurrently: the synchronous barrier means
            # Phase 1's simulated duration is the slowest edge's leg.
            with timing.parallel("phase1"):
                for e in sampled:
                    eid = int(e)
                    with timing.branch(f"edge:{eid}" if timing.record
                                       else None):
                        delivered = self._edge_upload(round_index, eid,
                                                      checkpoint,
                                                      upload_floats)
                    if delivered is None:
                        continue
                    w_e, w_e_ckpt = delivered
                    if cloud_agg is not None:
                        entries.append((f"edge:{eid}", 1.0, w_e))
                        if w_e_ckpt is not None:
                            ckpt_entries.append((f"edge:{eid}", 1.0, w_e_ckpt))
                        continue
                    acc_w += w_e
                    n_contrib += 1
                    if acc_ckpt is not None and w_e_ckpt is not None:
                        acc_ckpt += w_e_ckpt
                        n_ckpt += 1
            self.tracker.sync_cycle("edge_cloud")
            w_ref = self.w
            if cloud_agg is not None:
                # Robust Eq. (5)/(6): the installed aggregator replaces the
                # sampled-edge mean (suspicious uploads are down-weighted or
                # excluded and reported via the defense ledger).
                combined = robust_combine(cloud_agg, entries, ref=w_ref,
                                          faults=faults,
                                          round_index=round_index,
                                          link="edge_cloud")
                if combined is not None:
                    self.w = combined
                else:
                    faults.degraded_round(round_index, "phase1_model_update")
                w_checkpoint = self.w
                if self.use_checkpoint:
                    ckpt_combined = robust_combine(
                        cloud_agg, ckpt_entries, ref=w_ref, faults=faults,
                        round_index=round_index, link="edge_cloud")
                    if ckpt_combined is not None:
                        w_checkpoint = ckpt_combined
                    else:
                        faults.checkpoint_fallback(round_index,
                                                   "phase1_model_update")
            elif n_contrib == len(sampled):
                acc_w /= self.m_edges     # Eq. (5): global model
                self.w = acc_w
            elif n_contrib > 0:
                # Degraded Eq. (5): renormalize over the surviving edges.
                acc_w /= n_contrib
                self.w = acc_w
            else:
                # Every sampled edge dark/lost: the round makes no model step.
                faults.degraded_round(round_index, "phase1_model_update")
            if cloud_agg is not None:
                pass  # checkpoint handled on the robust path above
            elif acc_ckpt is not None and n_ckpt == len(sampled):
                acc_ckpt /= self.m_edges  # Eq. (6): checkpoint model
                w_checkpoint = acc_ckpt
            elif acc_ckpt is not None and n_ckpt > 0:
                acc_ckpt /= n_ckpt        # degraded Eq. (6)
                w_checkpoint = acc_ckpt
            else:
                # Ablation variant (or zero surviving checkpoints): probe
                # losses at the current global model instead.
                if self.use_checkpoint:
                    faults.checkpoint_fallback(round_index,
                                               "phase1_model_update")
                w_checkpoint = self.w

        # ---- Phase 2: uniform re-sample, loss estimation at the checkpoint model.
        self._phase2_weight_update(round_index, w_checkpoint)

    def _phase2_weight_update(self, round_index: int,
                              w_checkpoint: np.ndarray) -> None:
        """Phase 2 (Eq. (7)): probe a uniform edge subset, ascend the weights."""
        d = self._dim
        obs = self.obs
        faults = self.faults
        timing = self.timing
        injecting = faults.enabled
        with obs.span("phase2_weight_update", round=round_index):
            probed = sample_uniform_subset(self.dataset.num_edges, self.m_edges,
                                           self.rng)
            self.tracker.record("edge_cloud", "down", count=len(probed), floats=d)
            losses: dict[int, float] = {}
            # Probed edges answer concurrently; Phase 2 costs the slowest probe.
            with timing.parallel("phase2"):
                for e in probed:
                    eid = int(e)
                    est: float | None = None
                    roster = self._edge_roster(eid)
                    with timing.branch(f"edge:{eid}" if timing.record
                                       else None):
                        if roster is not EDGE_UNAVAILABLE and not (
                                injecting and faults.edge_dark(round_index,
                                                               eid)):
                            if timing.enabled:
                                timing.transfer("edge_cloud", eid, d)
                            est = self.edges[eid].estimate_loss(
                                self.engine, w_checkpoint, tracker=self.tracker,
                                faults=faults, round_index=round_index,
                                loss_clip=self._loss_clip, timing=timing,
                                roster=roster)
                            if est is not None:
                                self.tracker.record("edge_cloud", "up", count=1,
                                                    floats=1)
                                if timing.enabled:
                                    timing.transfer("edge_cloud", eid, 1)
                                if injecting:
                                    delivered = faults.receive(
                                        round_index, "edge_cloud",
                                        f"edge:{eid}", est,
                                        floats=1.0, tracker=self.tracker)
                                    est = (None if delivered is None
                                           else delivered[0])
                    if est is None:
                        # Dark edge or lost probe: fall back to the last loss
                        # the cloud saw for this edge, if any.
                        stale = self._last_losses.get(eid)
                        if stale is not None:
                            faults.stale_loss(round_index, f"edge:{eid}", stale)
                            losses[eid] = stale
                        continue
                    losses[eid] = est
            self.tracker.sync_cycle("edge_cloud")
            losses = self._clip_losses(round_index, losses, "edge")
            if losses:
                self._last_losses.update(losses)
                obs.gauge("worst_edge_loss", max(losses.values()))
                v = self.cloud.build_loss_vector(losses)
                self.p = self.cloud.update_weights(self.p, v, eta_p=self.eta_p,
                                                   tau1=self.tau1, tau2=self.tau2)
            else:
                # No loss information at all this round: keep p^(k) as is.
                faults.degraded_round(round_index, "phase2_weight_update")
