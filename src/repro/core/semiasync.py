"""Semi-asynchronous HierMinimax: bounded-staleness edge aggregation.

The synchronous Algorithm 1 pays a barrier every round: Phase 1's simulated
duration is the *max* over the sampled cohort, so one slow edge (a 10× device
or a congested backhaul) stretches every round.  This variant removes the
barrier while keeping the update arithmetic of Eq. (5)/(6):

* **Dispatch.**  Each round the cloud samples edges from ``p^(k)`` exactly as
  the synchronous algorithm does, but only dispatches to edges that are not
  still working on an earlier round's request.  A dispatched edge runs the
  unchanged ModelUpdate leg; its simulated completion time (broadcast +
  compute + upload, priced by the cost model) is recorded as an *in-flight*
  arrival instead of blocking the round.
* **Bounded-staleness collect.**  Results whose dispatch round is older than
  ``k − S`` (``S`` = ``staleness``) are *forced*: the cloud waits until the
  last of them lands.  Anything else that has arrived by that moment rides
  along.  When nothing is forced the cloud waits only for the first arrival —
  rounds overlap, and the slow edge delays merges at most once per its own
  completion instead of once per round.
* **Merge.**  Collected models are averaged with the synchronous rule
  (``÷ m_E`` on a full fresh cohort, renormalized over the contributors
  otherwise; the robust-aggregation path applies unchanged), and Phase 2 is
  verbatim the synchronous weight update.

``staleness=0`` forces every round's own cohort, which reproduces the
synchronous trajectory — and, because every dispatch then completes inside
its round, the synchronous makespan — *exactly* (asserted by the test
suite).  With the default :data:`~repro.simtime.NULL_TIMING` every arrival
is instantaneous, so the variant is bit-identical to :class:`HierMinimax`
for any ``S``; it only behaves differently under a real cost model, which is
the regime ``benchmarks/bench_time_to_accuracy.py`` measures.
"""

from __future__ import annotations

import numpy as np

from repro.core.hierminimax import HierMinimax
from repro.defense.policy import robust_combine
from repro.topology.sampling import sample_by_weight, sample_checkpoint_slot

__all__ = ["SemiAsyncHierMinimax"]


class SemiAsyncHierMinimax(HierMinimax):
    """HierMinimax with bounded-staleness (semi-asynchronous) edge merges.

    Parameters
    ----------
    staleness:
        Staleness bound ``S ≥ 0``: a dispatched update is merged at the
        latest ``S`` rounds after its dispatch round.  ``0`` recovers the
        synchronous algorithm exactly; ``1`` already hides a persistent
        straggler behind the fast cohort.
    **kwargs:
        Everything :class:`HierMinimax` accepts.
    """

    name = "semiasync_hierminimax"

    def __init__(self, *args, staleness: int = 1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.staleness = int(staleness)
        if self.staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {self.staleness}")
        # In-flight Phase-1 legs: dicts with eid / round / w_e / w_ckpt /
        # ready_at.  ``w_e is None`` marks an upload lost in transit (or a
        # dark edge) — it occupies the flight until ``ready_at`` but
        # contributes nothing at merge time.
        self._inflight: list[dict] = []

    # ---------------------------------------------------------- checkpointing
    def _extra_state(self) -> dict:
        state = super()._extra_state()
        state["inflight"] = [
            {"eid": f["eid"], "round": f["round"], "w_e": f["w_e"],
             "w_ckpt": f["w_ckpt"], "duration": f["duration"],
             "ready_at": f["ready_at"]}
            for f in self._inflight]
        return state

    def _restore_extra(self, extra: dict) -> None:
        super()._restore_extra(extra)
        self._inflight = [
            {"eid": int(f["eid"]), "round": int(f["round"]),
             "w_e": None if f["w_e"] is None
             else np.asarray(f["w_e"], dtype=np.float64),
             "w_ckpt": None if f["w_ckpt"] is None
             else np.asarray(f["w_ckpt"], dtype=np.float64),
             "duration": float(f["duration"]),
             "ready_at": float(f["ready_at"])}
            for f in extra.get("inflight", [])]

    # ------------------------------------------------------------------ round
    def run_round(self, round_index: int) -> None:
        """Dispatch to free edges, merge the due-or-arrived flights, Phase 2."""
        d = self._dim
        obs = self.obs
        faults = self.faults
        timing = self.timing
        # Identical Phase-1 sampling to the synchronous algorithm.
        sampled = sample_by_weight(self.p, self.m_edges, self.rng)
        c1, c2 = sample_checkpoint_slot(self.tau1, self.tau2, self.rng)
        checkpoint = (c1, c2) if self.use_checkpoint else None
        upload_floats = self._upload_floats()
        busy = {f["eid"] for f in self._inflight if f["round"] < round_index}
        with obs.span("phase1_model_update", round=round_index,
                      sampled_edges=len(sampled), c1=c1, c2=c2,
                      busy_edges=len(busy)):
            # ---- Dispatch to every sampled edge that is not mid-flight.
            # Same-round duplicate samples dispatch again, exactly as the
            # synchronous loop calls ModelUpdate once per sample.
            dispatched: list[int] = []
            legs: list[dict] = []
            for e in sampled:
                eid = int(e)
                if eid in busy:
                    continue
                dispatched.append(eid)
                with timing.measure(f"edge:{eid}" if timing.record
                                    else None) as leg:
                    delivered = self._edge_upload(round_index, eid, checkpoint,
                                                  upload_floats)
                w_e, w_ckpt = (None, None) if delivered is None else delivered
                legs.append({"eid": eid, "round": round_index, "w_e": w_e,
                             "w_ckpt": w_ckpt, "duration": leg.duration})
            if dispatched:
                # Cloud broadcasts w^(k) and (c1, c2) to the dispatched edges.
                self.tracker.record("edge_cloud", "down",
                                    count=len(np.unique(dispatched)),
                                    floats=d + 2)
            # All dispatches leave the cloud at the same instant; each leg's
            # arrival is its own (measured, non-blocking) duration later.
            t0 = timing.now
            for leg in legs:
                leg["ready_at"] = t0 + leg["duration"]
                self._inflight.append(leg)

            # Time still to wait on a flight.  A leg dispatched this very
            # instant waits exactly its measured duration — the same float the
            # synchronous barrier adds — so ``staleness=0`` reproduces the
            # synchronous makespan bit-for-bit.
            def remaining(f: dict) -> float:
                if f["round"] == round_index:
                    return f["duration"]
                return max(0.0, f["ready_at"] - t0)

            # ---- Bounded-staleness collect.
            due = [f for f in self._inflight
                   if f["round"] <= round_index - self.staleness]
            if due:
                forced = due
            elif self._inflight:
                # Nothing is forced yet: wait only for the first arrival.
                forced = [min(self._inflight, key=remaining)]
            else:
                forced = []
            if forced:
                # The flight the merge actually waits on — the staleness
                # barrier's blame handle in the recorded timing tree.
                blamed = max(forced, key=remaining)
                wait = remaining(blamed)
                timing.advance(wait, f"edge:{blamed['eid']}"
                               if timing.record else None)
            else:
                wait = 0.0
            horizon = timing.now
            forced_ids = {id(f) for f in forced}
            collected = [f for f in self._inflight
                         if f["ready_at"] <= horizon or id(f) in forced_ids]
            taken = {id(f) for f in collected}
            self._inflight = [f for f in self._inflight
                              if id(f) not in taken]
            if obs.enabled and collected:
                obs.gauge("merge_staleness",
                          max(round_index - f["round"] for f in collected))
            self.tracker.sync_cycle("edge_cloud")
            # ---- Merge with the synchronous Eq. (5)/(6) arithmetic.
            w_checkpoint = self._merge(round_index, sampled, collected)
        # ---- Phase 2 is verbatim the synchronous weight update.
        self._phase2_weight_update(round_index, w_checkpoint)

    def _merge(self, round_index: int, sampled, collected: list[dict],
               ) -> np.ndarray:
        """Fold the collected flights into ``w`` / the checkpoint model."""
        d = self._dim
        faults = self.faults
        membership = self.membership
        if membership.enabled:
            # An edge that crashed or was partitioned after dispatch never
            # lands its upload: the flight still occupied its slot, but it
            # contributes nothing at merge time.
            for f in collected:
                if f["w_e"] is not None and not membership.edge_available(
                        f["eid"]):
                    f["w_e"] = None
                    f["w_ckpt"] = None
                    self.obs.event("membership", round=round_index,
                                   action="flight_dropped",
                                   entity=f"edge:{f['eid']}",
                                   dispatched=f["round"])
                    self.obs.count("membership_stale_flights_total")
        cloud_agg = self._cloud_agg
        w_ref = self.w
        if cloud_agg is not None:
            entries = [(f"edge:{f['eid']}", 1.0, f["w_e"])
                       for f in collected if f["w_e"] is not None]
            ckpt_entries = [(f"edge:{f['eid']}", 1.0, f["w_ckpt"])
                            for f in collected if f["w_ckpt"] is not None]
            combined = robust_combine(cloud_agg, entries, ref=w_ref,
                                      faults=faults, round_index=round_index,
                                      link="edge_cloud")
            if combined is not None:
                self.w = combined
            else:
                faults.degraded_round(round_index, "phase1_model_update")
            w_checkpoint = self.w
            if self.use_checkpoint:
                ckpt_combined = robust_combine(
                    cloud_agg, ckpt_entries, ref=w_ref, faults=faults,
                    round_index=round_index, link="edge_cloud")
                if ckpt_combined is not None:
                    w_checkpoint = ckpt_combined
                else:
                    faults.checkpoint_fallback(round_index,
                                               "phase1_model_update")
            return w_checkpoint
        acc_w = np.zeros(d)
        acc_ckpt = np.zeros(d) if self.use_checkpoint else None
        n_contrib = 0
        n_ckpt = 0
        for f in collected:
            if f["w_e"] is None:
                continue
            acc_w += f["w_e"]
            n_contrib += 1
            if acc_ckpt is not None and f["w_ckpt"] is not None:
                acc_ckpt += f["w_ckpt"]
                n_ckpt += 1
        if n_contrib == len(sampled):
            acc_w /= self.m_edges     # Eq. (5): full (fresh) cohort
            self.w = acc_w
        elif n_contrib > 0:
            acc_w /= n_contrib        # partial merge: renormalize
            self.w = acc_w
        else:
            # Nothing landed (or every upload was lost): no model step.
            faults.degraded_round(round_index, "phase1_model_update")
        if acc_ckpt is not None and n_ckpt == len(sampled):
            acc_ckpt /= self.m_edges  # Eq. (6)
            return acc_ckpt
        if acc_ckpt is not None and n_ckpt > 0:
            acc_ckpt /= n_ckpt
            return acc_ckpt
        if self.use_checkpoint:
            faults.checkpoint_fallback(round_index, "phase1_model_update")
        return self.w
