"""The paper's primary contribution: the HierMinimax algorithm and its schedules."""

from repro.core.base import FederatedAlgorithm, RunResult
from repro.core.hierminimax import HierMinimax
from repro.core.semiasync import SemiAsyncHierMinimax
from repro.core.schedules import (
    TradeoffSchedule,
    communication_complexity_order,
    convergence_rate_order,
    split_tau_product,
    tradeoff_schedule,
)

__all__ = [
    "FederatedAlgorithm",
    "RunResult",
    "HierMinimax",
    "SemiAsyncHierMinimax",
    "TradeoffSchedule",
    "communication_complexity_order",
    "convergence_rate_order",
    "split_tau_product",
    "tradeoff_schedule",
]
