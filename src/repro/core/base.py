"""Shared interface of all federated optimization algorithms in this library.

Every algorithm — HierMinimax and the four baselines — subclasses
:class:`FederatedAlgorithm`, which owns the common machinery: the actor graph, the
shared compute engine, communication tracking, periodic evaluation, and history
recording.  Subclasses implement :meth:`run_round` (one cloud training round) and
declare their per-round slot cost via :attr:`slots_per_round`.

The identical wiring guarantees comparisons are *paired*: for a fixed
(dataset, seed), all algorithms see the same initial model and the same per-client
minibatch streams.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.dataset import FederatedDataset
from repro.defense.policy import clip_loss_reports, resolve_defense
from repro.faults.checkpoint import CheckpointError, load_checkpoint_file, \
    previous_checkpoint_path, save_checkpoint_file
from repro.faults.injector import resolve_injector
from repro.metrics.evaluation import evaluate_record
from repro.membership import resolve_membership
from repro.metrics.history import HistoryPoint, TrainingHistory, \
    history_from_state, history_state
from repro.nn.models import ModelFactory
from repro.obs import NULL_TRACER
from repro.ops.projections import Projection, identity_projection
from repro.population import resolve_population
from repro.population.store import ShardIntegrityError
from repro.simtime import resolve_timing
from repro.topology.comm import CommSnapshot, CommunicationTracker
from repro.exec import ExecutionBackend, resolve_backend
from repro.utils.logging import NullLogger
from repro.utils.rng import RngFactory, restore_generator
from repro.utils.validation import check_positive_float, check_positive_int

__all__ = ["FederatedAlgorithm", "RunResult", "EDGE_UNAVAILABLE"]

#: Sentinel returned by :meth:`FederatedAlgorithm._edge_roster` when the
#: membership layer has taken an edge out of service for the round (crashed,
#: partitioned, or left without a single active client).
EDGE_UNAVAILABLE = object()


# Retained name: the canonical implementation now lives in repro.utils.rng
# (it also accepts generator_token snapshots); old importers keep working.
_restore_generator = restore_generator


@dataclass(frozen=True)
class RunResult:
    """Outcome of one training run.

    Attributes
    ----------
    algorithm:
        Algorithm name.
    history:
        Evaluation time series (see :class:`~repro.metrics.history.TrainingHistory`).
    final_params:
        The final global model ``w``.
    final_weights:
        The final mixing weights (``p`` over edges, or ``q`` over clients for the
        two-layer minimax baselines; ``None`` for minimization methods).
    comm:
        Total communication performed.
    rounds_run / slots_run:
        Cloud rounds completed and cumulative training time slots ``T``.
    sim_time_s:
        Total simulated seconds of the run under the installed
        :mod:`repro.simtime` cost model (0.0 without one).
    """

    algorithm: str
    history: TrainingHistory
    final_params: np.ndarray
    final_weights: np.ndarray | None
    comm: CommSnapshot
    rounds_run: int
    slots_run: int
    sim_time_s: float = 0.0


class FederatedAlgorithm(ABC):
    """Base class wiring datasets, actors, evaluation, and accounting together.

    Parameters
    ----------
    dataset:
        The federated data layout.
    model_factory:
        Builds the model architecture; called once for the shared engine.
    batch_size:
        Client minibatch size.
    eta_w:
        Model learning rate ``η_w``.
    seed:
        Root seed; expands into init/sampling/client streams (see
        :class:`~repro.utils.rng.RngFactory`).
    projection_w:
        Projection onto the model domain ``W`` (identity = unconstrained, as in the
        paper's experiments).
    logger:
        Optional structured-event callback (:class:`~repro.utils.logging.RunLogger`).
    obs:
        Optional :class:`~repro.obs.Tracer` receiving spans
        (``run`` → ``cloud_round`` → phases), metrics, and trace events.
        Defaults to the no-op :data:`~repro.obs.NULL_TRACER`; tracing never
        touches an RNG, so results are bit-identical either way.
    faults:
        Optional :class:`~repro.faults.FaultPlan` (or a pre-built
        :class:`~repro.faults.FaultInjector`) injecting client dropouts,
        stragglers, edge outages, and message loss/corruption into the run.
        ``None`` or ``FaultPlan.none()`` disables every fault path — the
        injector has its own RNG streams, so outputs are bit-identical to a
        run without the fault layer.
    backend:
        Execution backend for the per-round client SGD loops: an
        :class:`~repro.exec.ExecutionBackend` instance (shared with the
        caller, who owns its lifecycle), a name (``"serial"``, ``"thread"``,
        ``"process"``, ``"vectorized"`` — the algorithm owns the instance;
        call :meth:`close` to release worker pools), or ``None`` (the
        ``REPRO_BACKEND`` environment variable, default serial).  Every
        backend produces bit-identical results (see :mod:`repro.exec`);
        ``"vectorized"`` batches both paper models (logistic and MLP) into
        stacked cross-client kernels.
    defense:
        Optional Byzantine defense: a :class:`~repro.defense.DefensePolicy`,
        a :class:`~repro.defense.RobustAggregator` (or its name, e.g.
        ``"trimmed_mean"``) installed at every aggregation tier, or a spec
        string (``"edge=median,cloud=krum,loss_clip=2.5"``).  ``None`` — or
        the reference ``"mean"`` rule — keeps the original aggregation code
        paths, bit-identical to a build without the defense subsystem (see
        :mod:`repro.defense`).
    timing:
        Optional simulated-time hook: a :class:`~repro.simtime.SimTimer`, a
        :class:`~repro.simtime.CostModel`, or a cost-model spec string
        (``"hetero,seed=1,slow_clients=0|7"``).  Each round's
        client→edge→cloud dependency graph is replayed on the virtual clock
        and the cumulative makespan surfaces as ``sim_time_s`` on
        :class:`~repro.metrics.history.HistoryPoint` / :class:`RunResult`.
        Defaults to the no-op :data:`~repro.simtime.NULL_TIMING`; the clock
        is purely arithmetic — results are bit-identical with or without it.
    churn:
        Optional dynamic membership: a
        :class:`~repro.membership.ChurnPlan`, a spec string
        (``"arrive=0.05,depart=0.02,edge_mttf=40"``), or a pre-built
        :class:`~repro.membership.MembershipManager`.  Client arrivals and
        departures, edge crash/recover episodes, and edge–cloud partitions
        are advanced at every round boundary; on hierarchical topologies a
        crashed edge's clients are re-homed to surviving edges (see
        :mod:`repro.membership`).  ``None`` falls back to ``faults.churn``
        when the fault plan carries one; otherwise the shared
        :data:`~repro.membership.NULL_MEMBERSHIP` keeps the static topology
        — bit-identical to a build without the membership layer.
    population:
        Optional virtual population: a
        :class:`~repro.population.PopulationSpec`, a spec string
        (``"clients=1000000,edges=1000,samples=2"``), or a pre-built
        :class:`~repro.population.Population`.  When given (``dataset`` must
        then be ``None`` — or the spec may simply be passed in the
        ``dataset`` position), clients are derived on demand each round and
        discarded after, holding memory at O(cohort) regardless of
        population size.  ``None`` wraps ``dataset`` as a degenerate
        :class:`~repro.population.EagerPopulation` — byte-identical to the
        pre-population code path (see :mod:`repro.population`).
    """

    #: Human-readable algorithm name (subclasses override).
    name: str = "base"
    #: Whether the algorithm optimizes mixing weights (solves problem (2)/(3)).
    is_minimax: bool = False
    #: Whether the algorithm uses the client-edge-cloud hierarchy.
    uses_hierarchy: bool = False

    def __init__(self, dataset: FederatedDataset, model_factory: ModelFactory, *,
                 batch_size: int = 1, eta_w: float = 1e-3, seed: int = 0,
                 projection_w: Projection = identity_projection,
                 logger=None, obs=None, faults=None, backend=None,
                 defense=None, timing=None, churn=None,
                 population=None) -> None:
        self.population = resolve_population(population, dataset)
        # For the eager wrap this is the dataset object itself — every
        # downstream consumer sees exactly what it saw before populations
        # existed; for virtual populations it is the lazy dataset view.
        self.dataset = self.population.dataset
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.eta_w = check_positive_float(eta_w, "eta_w")
        self.projection_w = projection_w
        self.rng_factory = RngFactory(seed)
        self.rng = self.rng_factory.stream("cloud")
        self.engine = model_factory(self.rng_factory.stream("init"))
        self.tracker = CommunicationTracker()
        self.logger = logger if logger is not None else NullLogger()
        self.obs = obs if obs is not None else NULL_TRACER
        self.faults = resolve_injector(faults, obs=self.obs)
        self.defense = resolve_defense(defense)
        # Pre-resolved per-tier hooks: None means "take the original inline
        # aggregation path" — both for no defense and for the reference mean.
        self._edge_agg = (None if self.defense is None
                          else self.defense.tier("edge"))
        self._cloud_agg = (None if self.defense is None
                           else self.defense.tier("cloud"))
        self._loss_clip = (None if self.defense is None
                           else self.defense.loss_clip)
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = resolve_backend(backend)
        self.timing = resolve_timing(timing)
        if churn is None:
            # A fault spec can carry the churn tier (churn_* keys); an
            # explicit churn= argument wins over it.
            churn = self.faults.plan.churn
        self.membership = resolve_membership(churn, obs=self.obs)
        self.w: np.ndarray = self.engine.get_params()
        self.rounds_completed = 0
        self._history: TrainingHistory | None = None
        self._resume_history: TrainingHistory | None = None

    # ------------------------------------------------------------------ hooks
    @property
    @abstractmethod
    def slots_per_round(self) -> int:
        """Training time slots consumed by one cloud round (``τ1·τ2`` or ``τ1``)."""

    @abstractmethod
    def run_round(self, round_index: int) -> None:
        """Execute one cloud training round, updating ``self.w`` (and weights)."""

    def current_weights(self) -> np.ndarray | None:
        """The current mixing-weight vector, if the algorithm has one."""
        return None

    # ------------------------------------------------------------------ driver
    def run(self, rounds: int, *, eval_every: int = 1,
            eval_at_start: bool = True,
            checkpoint_path=None, checkpoint_every: int | None = None,
            checkpoint_shard_dir=None,
            ) -> RunResult:
        """Train for ``rounds`` cloud rounds with periodic evaluation.

        Parameters
        ----------
        eval_every:
            Evaluate after every ``eval_every``-th round (the final round is always
            evaluated).
        eval_at_start:
            Also record the untrained model as round ``-1`` (skipped
            automatically when continuing from a restored checkpoint, whose
            history already holds that point).
        checkpoint_path / checkpoint_every:
            When both are set, :meth:`save_checkpoint` is called after every
            ``checkpoint_every``-th round, so a killed process can resume via
            :meth:`load_checkpoint` and reproduce the uninterrupted run
            exactly.  Checkpoints are written atomically; a kill mid-write
            leaves the previous checkpoint intact.
        checkpoint_shard_dir:
            With a virtual population, persist per-client store state as
            checksummed sidecar shard files in this directory instead of
            inlining it into the checkpoint (which then embeds only the
            integrity manifest) — the layout for populations too large for
            one JSON document.
        """
        rounds = check_positive_int(rounds, "rounds")
        eval_every = check_positive_int(eval_every, "eval_every")
        if checkpoint_every is not None:
            checkpoint_every = check_positive_int(checkpoint_every,
                                                  "checkpoint_every")
        if self._resume_history is not None:
            history = self._resume_history
            self._resume_history = None
            eval_at_start = False
        else:
            history = TrainingHistory(self.name)
        self._history = history
        obs = self.obs
        if not self.population.virtual:
            # Let pooled backends ship the engine + full client roster to
            # their workers once, up front, instead of lazily on the first
            # dispatch.  Virtual populations must not warm-start: enumerating
            # every client here would materialize the whole population —
            # pooled backends instead receive each round's cohort lazily at
            # dispatch time (and drop it again via ``forget_clients``).
            self.backend.prepare(self.engine, self._client_actors())
        mem_tracker = getattr(obs, "mem_tracker", None)
        # Optional runtime invariant monitor (see repro.invariants), attached
        # to the tracer so one obs= argument threads the whole observability
        # stack.  None on NULL_TRACER and undecorated tracers — the default,
        # zero-cost path.
        invariants = getattr(obs, "invariants", None)
        if obs.enabled and self.timing.enabled:
            # A live tracer can persist the virtual clock's per-round
            # dependency tree, so record it.  Recording is purely additive
            # bookkeeping (no RNG, no arithmetic change): makespans and
            # results are bit-identical with it on or off.
            self.timing.record = True
        with obs.span("run", algorithm=self.name, rounds=rounds) as run_span:
            if eval_at_start:
                with obs.span("evaluate", round=-1):
                    history.append(self._evaluation_point(-1))
            first = self.rounds_completed
            for k in range(first, first + rounds):
                comm_before = self.tracker.snapshot() if obs.enabled else None
                with obs.span("cloud_round", algorithm=self.name,
                              round=k) as round_span:
                    with self.timing.round(k):
                        # Membership transitions happen at the round boundary,
                        # before the round body: detection waits and
                        # handoff/warm-sync transfers land on this round's
                        # clock and in its communication delta.
                        self.membership.begin_round(k, tracker=self.tracker,
                                                    timing=self.timing,
                                                    dim=self.w.size)
                        self.run_round(k)
                    if obs.enabled:
                        delta = self.tracker.snapshot().diff(comm_before)
                        round_span.set(comm={"cycles": delta.cycles,
                                             "messages": delta.messages,
                                             "floats": delta.floats})
                        if self.timing.enabled:
                            round_span.set(sim_s=self.timing.last_round_s)
                            tree = self.timing.last_round_tree
                            if tree is not None:
                                # The round's client→edge→cloud dependency
                                # graph — what the critical-path analyzer
                                # replays into per-entity blame.
                                round_span.set(sim_tree=tree)
                # Cohort lifecycle boundary: flush live clients' surviving
                # state (sampler cursors, step counters) to the population's
                # state store and discard the materialized cohort, so peak
                # memory tracks the cohort — not the population.  A no-op for
                # eager populations.
                self.population.end_round(k, backend=self.backend)
                self.rounds_completed = k + 1
                if invariants is not None:
                    # Pure reads over already-computed state (no RNG, no
                    # arithmetic on the model) — bit-identical on or off.
                    invariants.check_round(self, k, obs=obs)
                if obs.enabled:
                    obs.count("rounds_total")
                    obs.count("edge_cloud_bytes", delta.edge_cloud_bytes)
                    obs.observe("round_time_s", round_span.duration)
                    if self.timing.enabled:
                        obs.gauge("sim_time_s", self.timing.elapsed_s)
                    if mem_tracker is not None:
                        obs.gauge("mem_peak_bytes", mem_tracker.peak_bytes())
                if (k + 1) % eval_every == 0 or k == first + rounds - 1:
                    with obs.span("evaluate", round=k):
                        point = self._evaluation_point(k)
                    history.append(point)
                    if obs.enabled:
                        obs.gauge("worst_group_accuracy",
                                  point.record.worst_accuracy)
                        obs.gauge("average_accuracy",
                                  point.record.average_accuracy)
                    self.logger({
                        "event": "round", "algorithm": self.name, "round": k,
                        "avg_acc": point.record.average_accuracy,
                        "worst_acc": point.record.worst_accuracy,
                        "comm": point.comm.edge_cloud_cycles,
                    })
                if (checkpoint_path is not None and checkpoint_every
                        and (k + 1) % checkpoint_every == 0):
                    with obs.span("checkpoint", round=k):
                        self.save_checkpoint(checkpoint_path,
                                             shard_dir=checkpoint_shard_dir)
                if obs.enabled:
                    # Live progress channel: one (throttled) heartbeat per
                    # round so long runs can be tailed with
                    # ``trace-report --follow``.
                    hb = {"algorithm": self.name, "round": k,
                          "rounds_completed": self.rounds_completed}
                    if self.timing.enabled:
                        hb["sim_time_s"] = self.timing.elapsed_s
                    last = history.final() if len(history) else None
                    if last is not None:
                        hb["worst_accuracy"] = last.record.worst_accuracy
                        hb["average_accuracy"] = last.record.average_accuracy
                    obs.heartbeat(**hb)
            if obs.enabled:
                snap = self.tracker.snapshot()
                run_span.set(comm_total={"cycles": snap.cycles,
                                         "messages": snap.messages,
                                         "floats": snap.floats})
                if self.timing.enabled:
                    run_span.set(sim_total_s=self.timing.elapsed_s)
        return self._build_result(history)

    def close(self) -> None:
        """Release worker pools of a backend this algorithm instantiated.

        No-op for backend *instances* passed in by the caller (shared across
        algorithms; the caller owns their lifecycle).  Safe to call twice.
        """
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "FederatedAlgorithm":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _build_result(self, history: TrainingHistory) -> RunResult:
        """Assemble the :class:`RunResult` for the current state + history."""
        final = history.final() if len(history) else None
        self.logger({
            "event": "run_end", "algorithm": self.name,
            "rounds": self.rounds_completed,
            "slots": self.rounds_completed * self.slots_per_round,
            "comm": self.tracker.edge_cloud_cycles,
            **({"worst_acc": final.record.worst_accuracy} if final else {}),
        })
        weights = self.current_weights()
        return RunResult(
            algorithm=self.name,
            history=history,
            final_params=self.w.copy(),
            final_weights=None if weights is None else weights.copy(),
            comm=self.tracker.snapshot(),
            rounds_run=self.rounds_completed,
            slots_run=self.rounds_completed * self.slots_per_round,
            sim_time_s=self.timing.elapsed_s,
        )

    # ---------------------------------------------------------- checkpointing
    def _client_actors(self) -> list:
        """Every client actor of the run, in a stable (edge-major) order."""
        edges = getattr(self, "edges", None)
        if edges is not None:
            return [client for edge in edges for client in edge.clients]
        return list(getattr(self, "clients", []))

    def _extra_state(self) -> dict:
        """Subclass hook: algorithm-specific checkpoint state (``p``, aux RNGs)."""
        return {}

    def _restore_extra(self, extra: dict) -> None:
        """Subclass hook: inverse of :meth:`_extra_state`."""

    def state_dict(self, *, shard_dir=None) -> dict:
        """Everything needed to resume this run bit-identically.

        Serializable via :mod:`repro.utils.serialization`; written to disk by
        :meth:`save_checkpoint`.  ``shard_dir`` (virtual populations only)
        externalizes the client state store into checksummed sidecar shard
        files there, leaving just the integrity manifest in the payload.
        """
        clients = {}
        if not self.population.virtual:
            # Eager runs snapshot every client inline — the format predating
            # populations, byte for byte.  Virtual runs keep per-client state
            # in the sharded store instead (flushed inside its state_dict);
            # enumerating 10^6 clients here would defeat the subsystem.
            for client in self._client_actors():
                sampler = client.sampler
                clients[str(client.client_id)] = {
                    "rng": sampler._rng,
                    "order": np.asarray(sampler._order),
                    "cursor": sampler._cursor,
                    "batches_drawn": sampler.batches_drawn,
                    "sgd_steps_taken": client.sgd_steps_taken,
                }
        snap = self.tracker.snapshot()
        state = {
            "algorithm": self.name,
            "round": self.rounds_completed,
            "w": self.w,
            "rng": self.rng,
            "clients": clients,
            "comm": {"cycles": dict(snap.cycles),
                     "messages": dict(snap.messages),
                     "floats": dict(snap.floats)},
            "history": (history_state(self._history)
                        if self._history is not None else None),
            "faults": self.faults.state_dict(),
            "membership": self.membership.state_dict(),
            "sim_time_s": self.timing.elapsed_s,
            "extra": self._extra_state(),
        }
        if self.population.virtual:
            state["population"] = self.population.state_dict(
                shard_dir=shard_dir)
        return state

    def save_checkpoint(self, path, *, shard_dir=None) -> None:
        """Atomically write :meth:`state_dict` to ``path``."""
        save_checkpoint_file(path, self.state_dict(shard_dir=shard_dir))

    def load_checkpoint(self, path, *, shard_dir=None,
                        shard_recovery: str = "fallback") -> int:
        """Restore a checkpoint written by :meth:`save_checkpoint`.

        Must be called on a freshly-constructed algorithm with the *same*
        configuration (dataset, seeds, hyperparameters) as the run that wrote
        the checkpoint.  The next :meth:`run` call continues from the restored
        round and appends to the restored history, reproducing the
        uninterrupted run bit-for-bit.

        Recovery: when the current file fails integrity verification (torn
        write, bit rot — including a corrupted sidecar shard under the
        default ``shard_recovery="fallback"``), the previous checkpoint
        generation at :func:`~repro.faults.checkpoint.previous_checkpoint_path`
        is tried next; a successful fallback emits a ``checkpoint_fallback``
        trace event and the run resumes bit-identically from that earlier
        round.  ``shard_recovery="rederive"`` instead quarantines a damaged
        shard and lets its virtual clients re-derive from ``(spec.seed,
        cid)`` — loud detection, but only exact for clients that never
        advanced.

        Returns the number of rounds already completed.
        """
        candidates = [Path(path), previous_checkpoint_path(path)]
        errors: list[str] = []
        for index, candidate in enumerate(candidates):
            try:
                state = load_checkpoint_file(candidate,
                                             expect_algorithm=self.name)
                self._restore_state(state, shard_dir=shard_dir,
                                    shard_recovery=shard_recovery)
            except (CheckpointError, ShardIntegrityError) as exc:
                errors.append(f"{candidate}: {exc}")
                continue
            if index > 0:
                # The current generation was unusable; say so loudly.
                if self.obs.enabled:
                    self.obs.event("checkpoint_fallback",
                                   requested=str(path), used=str(candidate),
                                   round=self.rounds_completed,
                                   reason=errors[0])
                    self.obs.count("checkpoint_fallbacks_total")
                self.logger({"event": "checkpoint_fallback",
                             "requested": str(path), "used": str(candidate),
                             "round": self.rounds_completed})
            return self.rounds_completed
        raise CheckpointError(
            "no loadable checkpoint generation: " + "; ".join(errors))

    def _restore_state(self, state: dict, *, shard_dir=None,
                       shard_recovery: str = "fallback") -> None:
        """Apply a verified checkpoint payload to this algorithm instance."""
        self.w = np.asarray(state["w"], dtype=np.float64)
        self.rounds_completed = int(state["round"])
        _restore_generator(self.rng, state["rng"])
        if self.population.virtual:
            # Per-client state lives in the sharded store; clients re-derive
            # from it lazily the next time the cohort samples them.
            self.population.load_state_dict(state.get("population", {}),
                                            shard_dir=shard_dir,
                                            shard_recovery=shard_recovery,
                                            obs=self.obs)
        else:
            client_states = state["clients"]
            for client in self._client_actors():
                try:
                    cs = client_states[str(client.client_id)]
                except KeyError as exc:
                    raise RuntimeError(
                        f"checkpoint has no state for client {client.client_id}; "
                        f"was it written with a different dataset?") from exc
                sampler = client.sampler
                _restore_generator(sampler._rng, cs["rng"])
                sampler._order = np.asarray(cs["order"], dtype=np.int64)
                sampler._cursor = int(cs["cursor"])
                sampler.batches_drawn = int(cs["batches_drawn"])
                client.sgd_steps_taken = int(cs["sgd_steps_taken"])
        comm = state["comm"]
        self.tracker.restore(CommSnapshot(
            cycles={k: int(v) for k, v in comm["cycles"].items()},
            messages={k: int(v) for k, v in comm["messages"].items()},
            floats={k: float(v) for k, v in comm["floats"].items()}))
        if state.get("history") is not None:
            self._resume_history = history_from_state(state["history"])
        self.faults.load_state_dict(state.get("faults", {}))
        # Checkpoints capture the live topology (active set, home map, edge
        # and link episode states), so resume mid-failover is bit-identical.
        self.membership.load_state_dict(state.get("membership", {}))
        if self.timing.enabled:
            # The shared NULL_TIMING is never mutated; a real timer resumes
            # its virtual clock exactly where the checkpointed run left it.
            self.timing.elapsed_s = float(state.get("sim_time_s", 0.0))
        self._restore_extra(state.get("extra", {}))

    # ---------------------------------------------------------------- helpers
    def _build_edges(self):
        """Edge servers (with client actors) from the population.

        For an eager population this is exactly the old
        ``build_edge_servers(dataset, ...)`` call — same builders, same RNG
        streams, same actor graph; for a virtual population it returns lazy
        edge servers that materialize their cohort on access.
        """
        return self.population.build_edges(batch_size=self.batch_size,
                                           rng_factory=self.rng_factory)

    def _build_clients(self):
        """Flat client roster from the population (two-layer baselines)."""
        return self.population.build_flat_clients(batch_size=self.batch_size,
                                                  rng_factory=self.rng_factory)

    def _edge_roster(self, edge_id: int):
        """The edge's membership-adjusted roster for this round.

        ``None`` means "use the construction-time roster" (membership
        disabled — the byte-identical static path);
        :data:`EDGE_UNAVAILABLE` means the edge must be skipped this round
        (crashed, partitioned, or drained of active clients); any list is
        the live roster to train/probe with.
        """
        membership = self.membership
        if not membership.enabled:
            return None
        if not membership.edge_available(edge_id):
            return EDGE_UNAVAILABLE
        roster = membership.roster(edge_id)
        if roster is not None and not roster:
            return EDGE_UNAVAILABLE
        return roster

    def _clip_losses(self, round_index: int, losses: dict,
                     entity_prefix: str) -> dict:
        """Score-damped minimax weight update: cap reports at the policy's
        ``loss_clip ×`` the round's median, flagging the capped senders.

        A no-op (returning ``losses`` unchanged, the same dict) without an
        active ``loss_clip`` — the healthy path stays bit-identical.
        """
        if self._loss_clip is None or not losses:
            return losses
        clipped, ids, cap = clip_loss_reports(losses, self._loss_clip)
        for eid in ids:
            self.faults.suspect(round_index, f"{entity_prefix}:{eid}",
                                action="loss_clipped", aggregator="loss_clip",
                                cap=round(cap, 6))
        return clipped

    def _evaluation_point(self, round_index: int) -> HistoryPoint:
        # eval_edge_ids is None unless an evaluation cohort was requested
        # (spec.eval_edges / EagerPopulation(eval_edges=...)), in which case a
        # seeded per-round subset of edges is scored instead of all of them —
        # see the estimator note on evaluate_per_edge.
        record = evaluate_record(self.engine, self.w, self.dataset,
                                 edge_ids=self.population.eval_edge_ids(round_index))
        weights = self.current_weights()
        return HistoryPoint(
            round_index=round_index,
            slots=(round_index + 1) * self.slots_per_round,
            comm=self.tracker.snapshot(),
            record=record,
            weights=None if weights is None else weights.copy(),
            sim_time_s=self.timing.elapsed_s,
        )
