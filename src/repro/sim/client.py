"""Client actor: local SGD, checkpoint capture, and loss estimation.

A :class:`Client` owns its local shard and minibatch stream but **not** a private
model copy.  All clients of a run share one *engine* :class:`NeuralNetwork` into
which parameter vectors are loaded and out of which results are read; the model is
a pure function of its flat parameter vector, so this is semantically identical to
per-client models while avoiding ``N`` deep copies per aggregation (guides: reuse
buffers, avoid copies).
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import MinibatchSampler
from repro.data.dataset import Dataset
from repro.exec.base import run_local_steps_kernel
from repro.nn.network import NeuralNetwork
from repro.ops.projections import Projection, identity_projection
from repro.utils.validation import check_positive_float, check_positive_int

__all__ = ["Client"]


class Client:
    """One client device in the hierarchy.

    Parameters
    ----------
    client_id:
        Global client index (edge-major order).
    shard:
        The client's local training data.
    batch_size:
        Minibatch size of the local SGD (Eq. (4)'s ``ξ``).
    rng:
        Client-private generator driving minibatch sampling.
    """

    def __init__(self, client_id: int, shard: Dataset, batch_size: int,
                 rng: np.random.Generator) -> None:
        self.client_id = int(client_id)
        self.shard = shard
        self.sampler = MinibatchSampler(shard, batch_size, rng)
        self.sgd_steps_taken = 0

    @property
    def num_samples(self) -> int:
        """Local training-set size (the ``q_n`` weight basis of Eq. (1))."""
        return len(self.shard)

    def local_sgd(self, engine: NeuralNetwork, w_start: np.ndarray, *,
                  steps: int, lr: float,
                  projection: Projection = identity_projection,
                  checkpoint_after: int | None = None,
                  ) -> tuple[np.ndarray, np.ndarray | None]:
        """Run ``steps`` projected-SGD steps from ``w_start`` (Eq. (4)).

        Draws this client's minibatches and delegates the arithmetic to
        :func:`~repro.exec.base.run_local_steps_kernel` — the same pure kernel
        every execution backend runs, so a direct call is bit-identical to a
        dispatched one.

        Aliasing contract: ``w_start`` is read-only here.  Callers typically
        pass a shared vector (the edge/cloud broadcast model) to *every*
        client of a loop; the kernel therefore never writes through ``w_start``
        and defensively copies it when it aliases the engine's live parameter
        buffer (e.g. ``client.local_sgd(engine, engine.params_view(), ...)``),
        which would otherwise corrupt the start vector mid-loop.

        Parameters
        ----------
        engine:
            The shared compute model; its parameters are overwritten.
        checkpoint_after:
            When set to ``c1 ∈ {1, …, steps}``, additionally return a snapshot of
            the local model after exactly ``c1`` steps (Part (b) of ModelUpdate).

        Returns
        -------
        (w_end, w_checkpoint):
            Final local model (copy) and the checkpoint snapshot (copy) or ``None``.
        """
        steps = check_positive_int(steps, "steps")
        lr = check_positive_float(lr, "lr")
        if checkpoint_after is not None and not 1 <= checkpoint_after <= steps:
            raise ValueError(
                f"checkpoint_after must be in [1, {steps}], got {checkpoint_after}")
        batches = [self.sampler.next_batch() for _ in range(steps)]
        self.sgd_steps_taken += steps
        return run_local_steps_kernel(
            engine, w_start, batches, lr=lr, projection=projection,
            checkpoint_after=checkpoint_after)

    def estimate_loss(self, engine: NeuralNetwork, w: np.ndarray) -> float:
        """Minibatch loss estimate ``f_n(w; ξ)`` used by Phase 2's LossEstimation."""
        engine.set_params(w)
        X, y = self.sampler.next_batch()
        return engine.loss(X, y)

    def full_loss(self, engine: NeuralNetwork, w: np.ndarray) -> float:
        """Exact local loss ``f_n(w)`` over the whole shard (diagnostics/theory)."""
        engine.set_params(w)
        return engine.loss(self.shard.X, self.shard.y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Client(id={self.client_id}, n={self.num_samples}, "
                f"batch={self.sampler.batch_size})")
