"""Cloud-server actor: global aggregation and the edge-weight ascent step.

The cloud's responsibilities in Algorithm 1 are mechanical — averaging the sampled
edges' models (Eqs. (5)–(6)) and the projected gradient-ascent update of the edge
weights (Eq. (7)).  They are factored here so HierMinimax, HierFAVG, and the
two-layer baselines (which treat clients as degenerate "edges") share one audited
implementation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ops.projections import project_simplex

__all__ = ["CloudServer"]


class CloudServer:
    """Aggregation and weight-update logic at the top of the hierarchy.

    Parameters
    ----------
    num_edges:
        ``N_E``; the length of the weight vector ``p``.
    weight_projection:
        Projection onto the constraint set ``P``; defaults to the probability
        simplex ``Δ_{N_E-1}``.
    """

    def __init__(self, num_edges: int, weight_projection=None) -> None:
        if num_edges < 1:
            raise ValueError(f"num_edges must be >= 1, got {num_edges}")
        self.num_edges = int(num_edges)
        self._project_p = (weight_projection if weight_projection is not None
                           else project_simplex)

    def initial_weights(self) -> np.ndarray:
        """The uniform initialization ``p^(0) = [1/N_E, …, 1/N_E]``."""
        return np.full(self.num_edges, 1.0 / self.num_edges)

    @staticmethod
    def aggregate(models: Sequence[np.ndarray]) -> np.ndarray:
        """Uniform average of the received model vectors (Eqs. (5)/(6))."""
        if not models:
            raise ValueError("cannot aggregate zero models")
        acc = np.array(models[0], dtype=np.float64, copy=True)
        for w in models[1:]:
            acc += w
        acc /= len(models)
        return acc

    def build_loss_vector(self, losses: dict[int, float]) -> np.ndarray:
        """Construct the unbiased gradient estimate ``v`` of §4.2.

        ``losses`` maps sampled edge index → estimated loss ``f_e(w_checkpoint)``;
        unsampled coordinates are zero and sampled ones are scaled by ``N_E/m_E``.
        """
        if not losses:
            raise ValueError("need at least one sampled edge loss")
        m = len(losses)
        v = np.zeros(self.num_edges, dtype=np.float64)
        scale = self.num_edges / m
        for e, loss in losses.items():
            if not 0 <= e < self.num_edges:
                raise ValueError(f"edge index {e} out of range [0, {self.num_edges})")
            v[e] = scale * loss
        return v

    def update_weights(self, p: np.ndarray, v: np.ndarray, *, eta_p: float,
                       tau1: int = 1, tau2: int = 1) -> np.ndarray:
        """Projected gradient ascent on ``p`` (Eq. (7)).

        The effective step is ``η_p · τ1 · τ2`` because each weight update stands in
        for the τ1τ2 iterations of the round (see Appendix A's ``u^(k)``).
        """
        if eta_p <= 0:
            raise ValueError(f"eta_p must be positive, got {eta_p}")
        if tau1 < 1 or tau2 < 1:
            raise ValueError(f"tau1 and tau2 must be >= 1, got ({tau1}, {tau2})")
        p = np.asarray(p, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if p.shape != (self.num_edges,) or v.shape != (self.num_edges,):
            raise ValueError(
                f"p and v must have shape ({self.num_edges},), got {p.shape}, {v.shape}")
        return self._project_p(p + eta_p * tau1 * tau2 * v)
