"""Edge-server actor: the ModelUpdate and LossEstimation procedures of Algorithm 1.

An :class:`EdgeServer` owns the clients of its edge area and implements

* :meth:`model_update` — Part (a) (τ2 client-edge aggregation blocks of τ1 local
  SGD steps each) and Part (b) (checkpoint aggregation at block ``c2``);
* :meth:`estimate_loss` — the Phase-2 loss estimation
  ``f_e(w) = (1/N0) Σ_n f_n(w; ξ_n)``.

Communication with its clients is accounted on the ``client_edge`` link of the
supplied :class:`~repro.topology.comm.CommunicationTracker`.  Aggregation
accumulates into preallocated buffers (one ``d``-vector per edge, not per client).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.defense.policy import clip_loss_reports, robust_combine
from repro.exec.dispatch import ClientWork, run_local_steps
from repro.nn.network import NeuralNetwork
from repro.obs import NULL_TRACER
from repro.ops.projections import Projection, identity_projection
from repro.sim.client import Client
from repro.topology.comm import CommunicationTracker
from repro.utils.validation import check_positive_float, check_positive_int

__all__ = ["EdgeServer"]


def _compress(compressor, sender: int, delta: np.ndarray,
              rng: np.random.Generator | None) -> np.ndarray:
    """Apply a compressor to an upload delta, with sender attribution if supported."""
    if rng is None:
        # A fixed fallback generator would silently re-seed on every call,
        # making "random" quantization identical across all uploads — require
        # the caller to thread a real stream instead.
        raise ValueError("compression requires an explicit comp_rng generator")
    if hasattr(compressor, "compress_from"):
        return compressor.compress_from(sender, delta, rng)
    return compressor.compress(delta, rng)


class EdgeServer:
    """One edge server and its associated clients ``N_e``."""

    def __init__(self, edge_id: int, clients: Sequence[Client]) -> None:
        if not clients:
            raise ValueError(f"edge server {edge_id} needs at least one client")
        self.edge_id = int(edge_id)
        self.clients = list(clients)

    @property
    def num_clients(self) -> int:
        """``N0`` for this area."""
        return len(self.clients)

    @property
    def num_samples(self) -> int:
        """Total training samples of the area's clients."""
        return sum(c.num_samples for c in self.clients)

    def model_update(self, engine: NeuralNetwork, w_start: np.ndarray, *,
                     tau1: int, tau2: int, lr: float,
                     projection: Projection = identity_projection,
                     checkpoint: tuple[int, int] | None = None,
                     tracker: CommunicationTracker | None = None,
                     weight_by_data: bool = False,
                     compressor=None,
                     comp_rng: np.random.Generator | None = None,
                     obs=None,
                     faults=None, round_index: int = 0,
                     backend=None,
                     defense=None,
                     timing=None,
                     roster: Sequence[Client] | None = None,
                     ) -> tuple[np.ndarray, np.ndarray | None]:
        """Run the ModelUpdate procedure from global model ``w_start``.

        Parameters
        ----------
        tau1, tau2:
            Local SGD steps per block and client-edge aggregation blocks per round.
        checkpoint:
            The cloud-sampled ``(c1, c2)`` with ``c1 ∈ [1, τ1]``,
            ``c2 ∈ [0, τ2-1]``; ``None`` disables Part (b) (used by HierFAVG).
        tracker:
            Communication accounting; each aggregation block is one ``client_edge``
            sync cycle; checkpoint uploads ride along with the block-``c2`` upload.
        weight_by_data:
            ``False`` (HierMinimax, Eq. (5)'s uniform ``1/N0`` average — clients of
            an area share one distribution) or ``True`` (HierFAVG's FedAvg-style
            aggregation proportional to client dataset sizes, the ``q_n`` of
            Eq. (1)).
        compressor / comp_rng:
            Optional :class:`~repro.compression.Compressor` applied to client
            uploads — each client transmits a compressed *delta* against the
            block's broadcast model (the Hier-Local-QSGD extension).  Tracker
            float counts use the compressor's payload size.
        obs:
            Optional :class:`~repro.obs.Tracer`: each aggregation block is an
            ``edge_block`` span and each client invocation a
            ``client_local_steps`` span; local steps feed the
            ``sgd_steps_total`` counter.
        faults / round_index:
            Optional :class:`~repro.faults.FaultInjector` plus the cloud round
            it should be queried at.  Dropped clients (and uploads lost or
            quarantined in transit) are excluded from each block's aggregate,
            whose weights are renormalized over the survivors; stragglers
            contribute truncated updates (and miss the checkpoint snapshot
            when they time out before step ``c1``).  A block with zero
            survivors leaves the edge model unchanged.  With a disabled (or
            absent) injector every code path and floating-point operation is
            identical to the pre-fault implementation.
        backend:
            Optional :class:`~repro.exec.ExecutionBackend` running the block's
            client SGD loops (``None`` = serial).  Each block is one dispatch:
            fault decisions fix each client's step budget *before* dispatch,
            and compression / message faults / accounting are applied to the
            returned results afterwards, in client order — so every backend
            is bit-identical to serial (see :mod:`repro.exec.base`).
        defense:
            Optional active :class:`~repro.defense.RobustAggregator` (the
            ``edge`` tier of a :class:`~repro.defense.DefensePolicy`): each
            block's delivered client uploads are combined by the robust rule
            instead of the weighted mean, and rejected/clipped senders are
            reported through ``faults.suspect``.  ``None`` (empty slot or the
            reference mean) keeps the original inline accumulation.
        timing:
            Optional :class:`~repro.simtime.SimTimer`.  Each block charges a
            parallel client region (broadcast down, ``steps`` of compute, the
            upload back) on the virtual clock; the block's simulated duration
            is the max over its participating clients.  A straggler whose
            update was truncated at ``steps < τ1`` is charged at the plan's
            ``straggler_slowdown`` pace — the truncated update still occupies
            the device for (roughly) the full round deadline.  The charge is
            purely additive arithmetic: numerical results are unaffected.
        roster:
            Optional client list overriding the construction-time roster —
            the :mod:`repro.membership` layer passes the edge's *current*
            clients (survivors of churn plus adoptees of a failover).
            ``None`` (default) uses ``self.clients``, byte-identically.

        Returns
        -------
        (w_edge, w_edge_checkpoint):
            The edge model after τ2 blocks, and the aggregated checkpoint model
            (``None`` when ``checkpoint`` is ``None``).
        """
        tau1 = check_positive_int(tau1, "tau1")
        tau2 = check_positive_int(tau2, "tau2")
        lr = check_positive_float(lr, "lr")
        injecting = faults is not None and faults.enabled
        c1: int | None = None
        c2: int | None = None
        if checkpoint is not None:
            c1, c2 = checkpoint
            if not 1 <= c1 <= tau1:
                raise ValueError(f"c1 must be in [1, {tau1}], got {c1}")
            if not 0 <= c2 < tau2:
                raise ValueError(f"c2 must be in [0, {tau2}), got {c2}")
        d = w_start.size
        clients = self.clients if roster is None else list(roster)
        if not clients:
            raise ValueError(f"edge server {self.edge_id} cannot run a model "
                             f"update with an empty roster")
        n0 = len(clients)
        if weight_by_data:
            agg_weights = np.array([c.num_samples for c in clients],
                                   dtype=np.float64)
            agg_weights /= agg_weights.sum()
        else:
            agg_weights = np.full(n0, 1.0 / n0)
        obs = obs if obs is not None else NULL_TRACER
        w_edge = np.array(w_start, dtype=np.float64, copy=True)
        w_ckpt: np.ndarray | None = None
        acc = np.empty(d, dtype=np.float64)
        for t2 in range(tau2):
            is_ckpt_block = c2 is not None and t2 == c2
            with obs.span("edge_block", edge=self.edge_id, block=t2):
                if tracker is not None:
                    # Edge broadcasts w_edge to its clients (model-sized, down).
                    tracker.record("client_edge", "down", count=n0, floats=d)
                acc.fill(0.0)
                entries: list[tuple[str, float, np.ndarray]] | None = \
                    [] if defense is not None else None
                ckpt_entries: list[tuple[str, float, np.ndarray]] = []
                ckpt_acc = np.zeros(d, dtype=np.float64) if is_ckpt_block else None
                upload_floats = float(d) if compressor is None else \
                    compressor.payload_floats(d)
                live_weight = 0.0
                ckpt_weight = 0.0
                block_faulted = False
                ckpt_faulted = False
                # Decide every client's work up front (fault decisions are
                # pure functions of (seed, round, client), so fixing them
                # before dispatch changes no bit) ...
                work: list[ClientWork] = []
                participants: list[tuple[float, Client, int, bool]] = []
                for weight, client in zip(agg_weights, clients):
                    steps = tau1 if not injecting else faults.client_steps(
                        round_index, client.client_id, tau1)
                    if steps < 1:
                        # Dropout (or timed-out straggler): no upload at all.
                        block_faulted = True
                        ckpt_faulted = ckpt_faulted or is_ckpt_block
                        continue
                    takes_ckpt = is_ckpt_block and c1 <= steps
                    work.append(ClientWork(client, steps,
                                           c1 if takes_ckpt else None))
                    participants.append((weight, client, steps, takes_ckpt))
                # ... run the embarrassingly parallel region on the backend ...
                results = run_local_steps(
                    backend, engine, w_edge, work, lr=lr,
                    projection=projection, obs=obs) if work else []
                if timing is not None and timing.enabled:
                    # Price the block: clients work concurrently, so the block
                    # costs the slowest (down + compute + up) chain.
                    with timing.parallel(f"block:{t2}" if timing.record
                                         else None):
                        for weight, client, steps, takes_ckpt in participants:
                            scale = (faults.plan.straggler_slowdown
                                     if injecting and steps < tau1 else 1.0)
                            with timing.branch(
                                    f"client:{client.client_id}"
                                    if timing.record else None):
                                timing.transfer("client_edge",
                                                client.client_id, d)
                                timing.compute(client.client_id, steps,
                                               scale=scale)
                                timing.transfer(
                                    "client_edge", client.client_id,
                                    upload_floats * (2 if takes_ckpt else 1))
                # ... then post-process in client order: compression, message
                # faults, accounting, and aggregation consume their own
                # streams/counters exactly as the serial loop did.
                for (weight, client, steps, takes_ckpt), result in zip(
                        participants, results):
                    w_end, w_c = result.w_end, result.w_checkpoint
                    if compressor is not None:
                        # Transmit compressed deltas against the broadcast model.
                        w_end = w_edge + _compress(compressor, client.client_id,
                                                   w_end - w_edge, comp_rng)
                        if w_c is not None:
                            w_c = w_edge + _compress(
                                compressor, client.client_id, w_c - w_edge,
                                comp_rng)
                    if tracker is not None:
                        # Client uploads its model (+ checkpoint when captured).
                        tracker.record("client_edge", "up", count=1,
                                       floats=upload_floats * (2 if takes_ckpt
                                                               else 1))
                    if injecting:
                        delivered = faults.receive(
                            round_index, "client_edge",
                            f"client:{client.client_id}", w_end, w_c,
                            floats=upload_floats * (2 if takes_ckpt else 1),
                            tracker=tracker, ref=w_edge)
                        if delivered is None:
                            block_faulted = True
                            ckpt_faulted = ckpt_faulted or is_ckpt_block
                            continue
                        w_end, w_c = delivered
                    if entries is not None:
                        entries.append(
                            (f"client:{client.client_id}", weight, w_end))
                        if ckpt_acc is not None:
                            if w_c is not None:
                                ckpt_entries.append(
                                    (f"client:{client.client_id}", weight, w_c))
                            else:
                                ckpt_faulted = True
                        continue
                    acc += weight * w_end
                    live_weight += weight
                    if ckpt_acc is not None:
                        if w_c is not None:
                            ckpt_acc += weight * w_c
                            ckpt_weight += weight
                        else:
                            # Straggler that timed out before step c1.
                            ckpt_faulted = True
                if tracker is not None:
                    tracker.sync_cycle("client_edge")
                if entries is not None:
                    # Robust block aggregation: the installed rule replaces
                    # the weighted client mean; both combines reference the
                    # block's broadcast model.
                    combined = robust_combine(
                        defense, entries, ref=w_edge, faults=faults,
                        round_index=round_index, link="client_edge")
                    ckpt_combined = (None if ckpt_acc is None else
                                     robust_combine(defense, ckpt_entries,
                                                    ref=w_edge, faults=faults,
                                                    round_index=round_index,
                                                    link="client_edge"))
                    if combined is not None:
                        w_edge[:] = combined
                    elif injecting:
                        faults.degraded_round(
                            round_index, f"edge:{self.edge_id}:block:{t2}")
                    if ckpt_acc is not None:
                        if ckpt_combined is not None:
                            w_ckpt = ckpt_combined
                        else:
                            if injecting:
                                faults.checkpoint_fallback(
                                    round_index,
                                    f"edge:{self.edge_id}:block:{t2}")
                            w_ckpt = w_edge.copy()
                    continue
                if live_weight > 0.0:
                    if block_faulted:
                        # Renormalize over the surviving aggregation weight —
                        # only when a fault actually removed someone, so the
                        # healthy path's arithmetic is untouched.
                        acc /= live_weight
                    w_edge[:] = acc
                elif injecting:
                    # Zero survivors: the edge model carries over unchanged.
                    faults.degraded_round(round_index,
                                          f"edge:{self.edge_id}:block:{t2}")
                if ckpt_acc is not None:
                    if ckpt_weight > 0.0:
                        if ckpt_faulted:
                            ckpt_acc /= ckpt_weight
                        w_ckpt = ckpt_acc
                    elif injecting:
                        # Nobody could snapshot: fall back to the block result.
                        faults.checkpoint_fallback(
                            round_index, f"edge:{self.edge_id}:block:{t2}")
                        w_ckpt = w_edge.copy()
        return w_edge, w_ckpt

    def estimate_loss(self, engine: NeuralNetwork, w: np.ndarray, *,
                      tracker: CommunicationTracker | None = None,
                      faults=None, round_index: int = 0,
                      loss_clip: float | None = None,
                      timing=None,
                      roster: Sequence[Client] | None = None) -> float | None:
        """LossEstimation: average the clients' minibatch losses at ``w``.

        With an active fault injector the average runs over the clients that
        actually replied (dropped-out clients stay silent; probe replies can be
        lost or corrupted in transit).  Returns ``None`` when *no* client
        replied — the caller falls back to a stale loss for this edge.

        ``loss_clip`` applies the score-damped update at this tier too: client
        reports are capped at ``loss_clip ×`` the cohort median *before* they
        enter the edge average, so one inflated report cannot poison the whole
        edge's score (the cloud-side clip over edge reports is blind to that —
        an attacked edge looks unanimous from above).
        """
        injecting = faults is not None and faults.enabled
        d = w.size
        clients = self.clients if roster is None else list(roster)
        if tracker is not None:
            tracker.record("client_edge", "down", count=len(clients), floats=d)
        reports: dict[int, float] | None = {} if loss_clip is not None else None
        charge = timing is not None and timing.enabled
        probed: list[int] = []
        total = 0.0
        replied = 0
        for client in clients:
            if injecting and not faults.client_available(round_index,
                                                         client.client_id):
                continue
            loss = client.estimate_loss(engine, w)
            if charge:
                probed.append(client.client_id)
            if tracker is not None:
                tracker.record("client_edge", "up", count=1, floats=1)
            if injecting:
                delivered = faults.receive(
                    round_index, "client_edge", f"client:{client.client_id}",
                    loss, floats=1.0, tracker=tracker)
                if delivered is None:
                    continue
                (loss,) = delivered
            if reports is not None:
                reports[client.client_id] = float(loss)
            total += loss
            replied += 1
        if charge:
            # Probes run concurrently: the estimate costs the slowest client's
            # (broadcast + forward pass + scalar reply) chain.  Clients whose
            # reply was lost in transit still did the work, so they count.
            with timing.parallel("probe_fanout"):
                for cid in probed:
                    with timing.branch(f"client:{cid}" if timing.record
                                       else None):
                        timing.transfer("client_edge", cid, d)
                        timing.probe(cid)
                        timing.transfer("client_edge", cid, 1)
        if tracker is not None:
            tracker.sync_cycle("client_edge")
        if replied == 0:
            return None
        if reports is not None:
            clipped, ids, cap = clip_loss_reports(reports, loss_clip)
            if ids:
                if faults is not None:
                    for cid in ids:
                        faults.suspect(round_index, f"client:{cid}",
                                       action="loss_clipped",
                                       aggregator="loss_clip",
                                       cap=round(cap, 6))
                return sum(clipped.values()) / replied
        return total / replied

    def full_loss(self, engine: NeuralNetwork, w: np.ndarray) -> float:
        """Exact edge loss ``f_e(w)`` over all the area's data (theory/diagnostics)."""
        total = 0.0
        for client in self.clients:
            total += client.full_loss(engine, w)
        return total / self.num_clients

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeServer(id={self.edge_id}, clients={self.num_clients})"
