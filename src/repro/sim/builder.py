"""Wiring helpers: build the actor graph from a federated dataset.

Every algorithm run begins identically — spawn per-client RNG streams, wrap shards
in :class:`~repro.sim.client.Client` actors, group them under
:class:`~repro.sim.edge.EdgeServer` actors matching the dataset's layout.  This
module centralizes that wiring so all five algorithms construct byte-identical
actor graphs for a given (dataset, seed, batch size).
"""

from __future__ import annotations

from repro.data.dataset import FederatedDataset
from repro.sim.client import Client
from repro.sim.edge import EdgeServer
from repro.topology.network import HierarchicalTopology
from repro.utils.rng import RngFactory

__all__ = ["build_edge_servers", "build_flat_clients"]


def build_edge_servers(dataset: FederatedDataset, *, batch_size: int,
                       rng_factory: RngFactory) -> list[EdgeServer]:
    """Create one :class:`EdgeServer` per edge area with its client actors.

    Client RNG streams are keyed by global client index, so the same
    (seed, dataset) pair yields identical minibatch sequences across algorithms —
    making cross-algorithm comparisons paired rather than independent.
    """
    streams = rng_factory.streams("client", dataset.num_clients)
    edges: list[EdgeServer] = []
    global_id = 0
    for e, edge_data in enumerate(dataset.edges):
        clients = []
        for shard in edge_data.clients:
            clients.append(Client(global_id, shard, batch_size, streams[global_id]))
            global_id += 1
        edges.append(EdgeServer(e, clients))
    return edges


def build_flat_clients(dataset: FederatedDataset, *, batch_size: int,
                       rng_factory: RngFactory) -> list[Client]:
    """Create the flat client list used by two-layer baselines (no edge actors)."""
    clients: list[Client] = []
    streams = rng_factory.streams("client", dataset.num_clients)
    global_id = 0
    for edge_data in dataset.edges:
        for shard in edge_data.clients:
            clients.append(Client(global_id, shard, batch_size, streams[global_id]))
            global_id += 1
    return clients


def topology_of(dataset: FederatedDataset) -> HierarchicalTopology:
    """The :class:`HierarchicalTopology` induced by a dataset's layout."""
    return HierarchicalTopology.from_dataset(dataset)
