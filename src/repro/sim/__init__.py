"""Simulation actors: clients, edge servers, cloud server, and wiring helpers."""

from repro.sim.builder import build_edge_servers, build_flat_clients, topology_of
from repro.sim.client import Client
from repro.sim.cloud import CloudServer
from repro.sim.edge import EdgeServer

__all__ = [
    "build_edge_servers",
    "build_flat_clients",
    "topology_of",
    "Client",
    "CloudServer",
    "EdgeServer",
]
