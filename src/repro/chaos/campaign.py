"""The chaos acceptance campaign behind ``python -m repro chaos``.

Each scenario interrupts a real training run at a seeded kill-point — a
worker SIGKILL, a torn checkpoint write, a crash right after a durable save,
a bit-flipped store shard, a corrupted-but-parseable checkpoint — lets the
crash-safety machinery recover, and asserts the recovered run is
**bit-identical** to the uninterrupted reference: same final model, same
mixing weights, same evaluation history, same communication totals.  A single
flipped bit anywhere in the recovery path fails the campaign.

Scenarios (kill-point × backend sweep):

``worker_kill``
    A ProcessBackend worker is SIGKILLed mid-round; the supervised pool
    detects the death, respawns, and re-executes the lost unit.
``torn_write``
    A checkpoint write is truncated mid-file and the process dies; the resume
    loads the intact previous generation.
``crash_after_save/<backend>``
    The process dies immediately after a durable checkpoint; the resume
    continues from that exact round (swept across backends).
``shard_corrupt/fallback``
    With a virtual population persisting sidecar shard files, one shard is
    bit-flipped after the second save and the process dies; the checksum
    catches the damage at load and the run falls back to the previous
    checkpoint generation.
``shard_corrupt/rederive``
    The same damaged state loaded in ``rederive`` mode: the corrupted shard
    is detected, quarantined on disk, and never silently loaded.
``checkpoint_bitflip``
    A still-valid-JSON digit flip inside the current checkpoint file; the
    CRC-32 envelope rejects it and the resume uses the previous generation.

All chaos parameters derive from :class:`~repro.chaos.plan.ChaosPlan` seeds,
so a failing scenario replays exactly.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.chaos.hooks import ChaosCrash, chaos, install, uninstall
from repro.chaos.plan import ChaosInjector, ChaosPlan
from repro.core.hierminimax import HierMinimax
from repro.data.registry import make_federated_dataset
from repro.exec import ProcessBackend, make_backend
from repro.faults.checkpoint import (CheckpointError, load_checkpoint_file,
                                     previous_checkpoint_path)
from repro.nn.models import make_model_factory
from repro.population.spec import PopulationSpec

__all__ = ["ScenarioOutcome", "run_campaign", "format_campaign",
           "campaign_ok"]

_ROUNDS_DEFAULT = 6
_CKPT_EVERY = 2


@dataclass
class ScenarioOutcome:
    """Result of one chaos scenario."""

    name: str
    backend: str
    ok: bool
    detail: str = ""
    fired: tuple = ()
    notes: dict = field(default_factory=dict)


def _fingerprint(result) -> dict:
    return {
        "final_params": result.final_params,
        "final_weights": result.final_weights,
        "history": result.history.as_dict(),
        "comm_bytes": result.comm.total_bytes,
    }


def _identical(ref: dict, got: dict) -> str | None:
    """None when bit-identical, else a message naming the first divergence."""
    if not np.array_equal(ref["final_params"], got["final_params"]):
        return "final model parameters differ"
    rw, gw = ref["final_weights"], got["final_weights"]
    if (rw is None) != (gw is None) or (rw is not None
                                        and not np.array_equal(rw, gw)):
        return "final mixing weights differ"
    if ref["history"] != got["history"]:
        return "evaluation histories differ"
    if ref["comm_bytes"] != got["comm_bytes"]:
        return "communication totals differ"
    return None


class _Config:
    """One training configuration; builds fresh-but-identical algorithms."""

    def __init__(self, *, seed: int, rounds: int, virtual: bool) -> None:
        self.seed = int(seed)
        self.rounds = int(rounds)
        self.virtual = bool(virtual)
        if virtual:
            self._fed = None
            self._spec = PopulationSpec(
                num_edges=4, clients_per_edge=3, samples_per_client=16,
                test_per_edge=16, dim=16, num_classes=10,
                seed=100 + self.seed)
            self._factory = make_model_factory(
                "logistic", self._spec.input_dim, self._spec.num_classes)
        else:
            self._fed = make_federated_dataset("emnist_digits", scale="tiny",
                                               seed=11)
            self._spec = None
            self._factory = make_model_factory(
                "logistic", self._fed.input_dim, self._fed.num_classes)

    def algo(self, *, backend=None) -> HierMinimax:
        dataset = self._fed if self._fed is not None else self._spec
        return HierMinimax(dataset, self._factory, tau1=2, tau2=2, m_edges=3,
                           eta_w=0.05, eta_p=2e-3, batch_size=8,
                           seed=3 + self.seed, backend=backend)

    def run_clean(self, *, backend=None, checkpoint_path=None,
                  shard_dir=None):
        with self.algo(backend=backend) as algo:
            return algo.run(rounds=self.rounds, eval_every=2,
                            checkpoint_path=checkpoint_path,
                            checkpoint_every=(_CKPT_EVERY if checkpoint_path
                                              else None),
                            checkpoint_shard_dir=shard_dir)

    def run_with_crash(self, plan: ChaosPlan, *, backend=None,
                       checkpoint_path=None, shard_dir=None):
        """Run under ``plan`` until the injected crash; return the injector."""
        with self.algo(backend=backend) as algo:
            with chaos(plan) as injector:
                try:
                    algo.run(rounds=self.rounds, eval_every=2,
                             checkpoint_path=checkpoint_path,
                             checkpoint_every=_CKPT_EVERY,
                             checkpoint_shard_dir=shard_dir)
                except ChaosCrash:
                    return injector, True
        return injector, False

    def resume(self, checkpoint_path, *, backend=None, shard_dir=None,
               shard_recovery: str = "fallback"):
        """Fresh algorithm; load whatever generation verifies; finish the run."""
        with self.algo(backend=backend) as algo:
            done = algo.load_checkpoint(checkpoint_path, shard_dir=shard_dir,
                                        shard_recovery=shard_recovery)
            return algo.run(rounds=self.rounds - done, eval_every=2,
                            checkpoint_path=checkpoint_path,
                            checkpoint_every=_CKPT_EVERY,
                            checkpoint_shard_dir=shard_dir)


def _scenario_worker_kill(config: _Config, seed: int, ref: dict,
                          workdir: Path) -> ScenarioOutcome:
    plan = ChaosPlan(worker_kill=(1,), seed=seed)
    backend = ProcessBackend(workers=2)
    try:
        with chaos(plan) as injector:
            result = config.run_clean(backend=backend)
    finally:
        backend.close()
    fired = tuple(injector.fired_sites())
    if "worker_kill" not in fired:
        return ScenarioOutcome("worker_kill", "process", False,
                               "kill-point never fired", fired)
    mismatch = _identical(ref, _fingerprint(result))
    return ScenarioOutcome("worker_kill", "process", mismatch is None,
                           mismatch or "recovered bit-identically", fired)


def _scenario_torn_write(config: _Config, seed: int, ref: dict,
                         workdir: Path) -> ScenarioOutcome:
    path = workdir / "torn" / "run.ckpt.json"
    plan = ChaosPlan(torn_write=(1,), seed=seed)
    injector, crashed = config.run_with_crash(plan, checkpoint_path=path)
    if not crashed:
        return ScenarioOutcome("torn_write", "serial", False,
                               "injected torn write did not crash the run",
                               tuple(injector.fired_sites()))
    try:
        load_checkpoint_file(path)  # surviving generation must verify
    except CheckpointError as exc:
        return ScenarioOutcome("torn_write", "serial", False,
                               f"surviving checkpoint unreadable: {exc}",
                               tuple(injector.fired_sites()))
    result = config.resume(path)
    mismatch = _identical(ref, _fingerprint(result))
    return ScenarioOutcome("torn_write", "serial", mismatch is None,
                           mismatch or "resumed bit-identically",
                           tuple(injector.fired_sites()))


def _scenario_crash_after_save(config: _Config, seed: int, ref: dict,
                               workdir: Path,
                               backend_name: str) -> ScenarioOutcome:
    name = f"crash_after_save/{backend_name}"
    path = workdir / f"crash-{backend_name}" / "run.ckpt.json"
    plan = ChaosPlan(crash_after_save=(1,), seed=seed)
    backend = make_backend(backend_name, workers=2)
    try:
        injector, crashed = config.run_with_crash(plan, backend=backend,
                                                  checkpoint_path=path)
        if not crashed:
            return ScenarioOutcome(name, backend_name, False,
                                   "injected crash never fired",
                                   tuple(injector.fired_sites()))
        result = config.resume(path, backend=backend)
    finally:
        backend.close()
    mismatch = _identical(ref, _fingerprint(result))
    return ScenarioOutcome(name, backend_name, mismatch is None,
                           mismatch or "resumed bit-identically",
                           tuple(injector.fired_sites()))


def _count_first_save_shards(config: _Config, workdir: Path) -> int:
    """How many shard files the first checkpoint save writes (probe run).

    The interesting corruption target is a shard of the *second* save — the
    first save has no previous generation to fall back to.  Occurrence
    indexes are global across the run, so the probe counts the first save's
    ``shard_corrupt`` fires with a fire-nothing injector installed.
    """
    path = workdir / "probe" / "run.ckpt.json"
    injector = install(ChaosInjector(ChaosPlan()))
    try:
        with config.algo() as algo:
            algo.run(rounds=_CKPT_EVERY, eval_every=2, checkpoint_path=path,
                     checkpoint_every=_CKPT_EVERY,
                     checkpoint_shard_dir=path.parent / "shards")
    finally:
        uninstall()
    return int(injector.counts.get("shard_corrupt", 0))


def _scenario_shard_corrupt(config: _Config, seed: int, ref: dict,
                            workdir: Path) -> list[ScenarioOutcome]:
    first_save = _count_first_save_shards(config, workdir)
    if first_save < 1:
        return [ScenarioOutcome("shard_corrupt/fallback", "serial", False,
                                "probe run wrote no shard files")]
    path = workdir / "shard" / "run.ckpt.json"
    shard_dir = path.parent / "shards"
    # Corrupt the first shard written by save #1, then die right after that
    # save completes — the on-disk state a power cut after bit rot leaves.
    plan = ChaosPlan(shard_corrupt=(first_save,), crash_after_save=(1,),
                     seed=seed)
    injector, crashed = config.run_with_crash(plan, checkpoint_path=path,
                                              shard_dir=shard_dir)
    fired = tuple(injector.fired_sites())
    if not crashed or "shard_corrupt" not in fired:
        return [ScenarioOutcome("shard_corrupt/fallback", "serial", False,
                                "corruption/crash did not fire as planned",
                                fired)]
    # Detection demo: rederive mode must quarantine, never silently load.
    quarantine_before = list(shard_dir.glob("*.quarantine"))
    with config.algo() as probe:
        probe.load_checkpoint(path, shard_dir=shard_dir,
                              shard_recovery="rederive")
    quarantined = [p for p in shard_dir.glob("*.quarantine")
                   if p not in quarantine_before]
    outcomes = [ScenarioOutcome(
        "shard_corrupt/rederive", "serial", bool(quarantined),
        ("corrupted shard detected and quarantined" if quarantined
         else "corrupted shard was loaded silently"), fired,
        {"quarantined": [p.name for p in quarantined]})]
    # Undo the quarantine rename so the fallback path sees the damaged file.
    for q in quarantined:
        q.replace(q.with_name(q.name[: -len(".quarantine")]))
    # Bit-identical recovery: fall back to the previous generation.
    result = config.resume(path, shard_dir=shard_dir,
                           shard_recovery="fallback")
    mismatch = _identical(ref, _fingerprint(result))
    outcomes.append(ScenarioOutcome(
        "shard_corrupt/fallback", "serial", mismatch is None,
        mismatch or "fell back one generation, resumed bit-identically",
        fired))
    return outcomes


def _scenario_checkpoint_bitflip(config: _Config, seed: int, ref: dict,
                                 workdir: Path) -> ScenarioOutcome:
    path = workdir / "bitflip" / "run.ckpt.json"
    plan = ChaosPlan(crash_after_save=(1,), seed=seed)
    injector, crashed = config.run_with_crash(plan, checkpoint_path=path)
    if not crashed:
        return ScenarioOutcome("checkpoint_bitflip", "serial", False,
                               "setup crash never fired",
                               tuple(injector.fired_sites()))
    # Flip one digit of the stored round counter: still valid JSON, still a
    # plausible checkpoint — only the checksum can tell.
    text = path.read_text()
    mutated = text.replace('"round": ', '"round": 1', 1)
    if mutated == text:
        return ScenarioOutcome("checkpoint_bitflip", "serial", False,
                               "could not mutate checkpoint payload")
    path.write_text(mutated)
    try:
        load_checkpoint_file(path)
        return ScenarioOutcome("checkpoint_bitflip", "serial", False,
                               "checksum failed to detect the mutation")
    except CheckpointError:
        pass
    if not previous_checkpoint_path(path).exists():
        return ScenarioOutcome("checkpoint_bitflip", "serial", False,
                               "no previous generation to fall back to")
    result = config.resume(path)
    mismatch = _identical(ref, _fingerprint(result))
    return ScenarioOutcome("checkpoint_bitflip", "serial", mismatch is None,
                           mismatch or "fell back one generation, "
                           "resumed bit-identically",
                           tuple(injector.fired_sites()))


def run_campaign(*, seed: int = 0, rounds: int = _ROUNDS_DEFAULT,
                 backends=("serial", "process"),
                 workdir: str | Path | None = None) -> list[ScenarioOutcome]:
    """Run every chaos scenario; return one outcome per scenario.

    ``backends`` selects the ``crash_after_save`` sweep; ``worker_kill``
    always uses the process backend (it kills OS processes) and the
    corruption scenarios always use serial (the kill-point is in the
    persistence layer, not the executor).
    """
    if rounds < 2 * _CKPT_EVERY + 1:
        raise ValueError(
            f"rounds must be >= {2 * _CKPT_EVERY + 1} so two checkpoint "
            f"generations exist with training still left to resume, "
            f"got {rounds}")
    owned = workdir is None
    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-")
                   if owned else workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    outcomes: list[ScenarioOutcome] = []
    try:
        eager = _Config(seed=seed, rounds=rounds, virtual=False)
        ref = _fingerprint(eager.run_clean())
        outcomes.append(_scenario_worker_kill(eager, seed, ref, workdir))
        outcomes.append(_scenario_torn_write(eager, seed, ref, workdir))
        for backend_name in backends:
            outcomes.append(_scenario_crash_after_save(
                eager, seed, ref, workdir, backend_name))
        outcomes.append(_scenario_checkpoint_bitflip(eager, seed, ref,
                                                     workdir))
        virtual = _Config(seed=seed, rounds=rounds, virtual=True)
        vref = _fingerprint(virtual.run_clean())
        outcomes.extend(_scenario_shard_corrupt(virtual, seed, vref, workdir))
    finally:
        if owned:
            shutil.rmtree(workdir, ignore_errors=True)
    return outcomes


def campaign_ok(outcomes) -> bool:
    """True when every scenario recovered bit-identically."""
    return bool(outcomes) and all(o.ok for o in outcomes)


def format_campaign(outcomes) -> str:
    """Human-readable campaign table."""
    lines = ["chaos campaign: interrupted runs must resume bit-identically",
             ""]
    width = max(len(o.name) for o in outcomes) if outcomes else 10
    for o in outcomes:
        status = "ok " if o.ok else "FAIL"
        fired = f"  fired={','.join(o.fired)}" if o.fired else ""
        lines.append(f"  [{status}] {o.name:<{width}s}  "
                     f"backend={o.backend:<8s} {o.detail}{fired}")
    lines.append("")
    good = sum(1 for o in outcomes if o.ok)
    lines.append(f"{good}/{len(outcomes)} scenarios recovered bit-identically"
                 + ("" if campaign_ok(outcomes) else " — CAMPAIGN FAILED"))
    return "\n".join(lines)
