"""repro.chaos — deterministic chaos engineering for the training runtime.

Three pieces:

* :class:`ChaosPlan` / :class:`ChaosInjector` — seeded, declarative kill-points
  whose parameters are pure functions of ``(seed, site, occurrence)``;
* :mod:`repro.chaos.hooks` — the failpoint registry production code fires into
  (:func:`fire` is a no-op ``None`` unless a harness installed an injector);
* :mod:`repro.chaos.campaign` — the acceptance harness behind
  ``python -m repro chaos``: sweep kill-points × backends and assert every
  interrupted run recovers bit-identical to the uninterrupted one.

The campaign module is imported lazily (``repro.chaos.campaign`` or the
``run_campaign`` attribute): it depends on :mod:`repro.core`, which depends on
:mod:`repro.exec`, whose backends fire chaos hooks — an eager import here
would close that cycle.
"""

from repro.chaos.hooks import ChaosCrash, active, chaos, fire, install, uninstall
from repro.chaos.plan import CHAOS_SITES, ChaosInjector, ChaosPlan

__all__ = [
    "ChaosPlan",
    "ChaosInjector",
    "ChaosCrash",
    "CHAOS_SITES",
    "chaos",
    "install",
    "uninstall",
    "active",
    "fire",
    "run_campaign",
    "format_campaign",
    "campaign_ok",
]

_CAMPAIGN_ATTRS = ("run_campaign", "format_campaign", "campaign_ok",
                   "ScenarioOutcome")


def __getattr__(name: str):
    if name in _CAMPAIGN_ATTRS:
        from repro.chaos import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
