"""Failpoint registry: the runtime's hooks into an installed chaos injector.

Production code calls :func:`fire` at each failure site (one attribute lookup
and a ``None`` check when no injector is installed — the hot path costs
nothing).  A chaos harness installs a :class:`~repro.chaos.plan.ChaosInjector`
for the duration of a run, either explicitly via :func:`install` /
:func:`uninstall` or with the :func:`chaos` context manager::

    with chaos(ChaosPlan(torn_write=(1,), seed=3)) as injector:
        algo.run(rounds=6, checkpoint_path=path, checkpoint_every=2)
    assert injector.fired_sites() == ["torn_write"]

Injected process deaths are simulated by raising :class:`ChaosCrash` — a
dedicated exception so harnesses can catch exactly the injected kill and
nothing else.  The registry is deliberately process-global (module state):
failure sites live deep inside backends and persistence helpers whose call
signatures should not grow a chaos parameter.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.chaos.plan import ChaosInjector, ChaosPlan

__all__ = ["ChaosCrash", "chaos", "install", "uninstall", "active", "fire"]


class ChaosCrash(RuntimeError):
    """An injected crash standing in for a SIGKILL of the training process."""


_ACTIVE: ChaosInjector | None = None


def install(plan: "ChaosPlan | ChaosInjector | str") -> ChaosInjector:
    """Install an injector (building one from a plan/spec); returns it."""
    global _ACTIVE
    injector = (plan if isinstance(plan, ChaosInjector)
                else ChaosInjector(ChaosPlan.parse(plan)))
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Remove the installed injector (no-op when none is installed)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> ChaosInjector | None:
    """The currently installed injector, if any."""
    return _ACTIVE


def fire(site: str) -> dict | None:
    """Advance ``site``'s occurrence clock on the installed injector.

    Returns the firing decision (site, occurrence, derived parameters) when
    this occurrence is a kill-point, else ``None``.  With no injector
    installed this is a near-free constant ``None`` — the production path.
    """
    injector = _ACTIVE
    if injector is None:
        return None
    return injector.decide(site)


@contextmanager
def chaos(plan: "ChaosPlan | ChaosInjector | str") -> Iterator[ChaosInjector]:
    """Scoped installation: ``with chaos(plan) as injector: ...``."""
    injector = install(plan)
    try:
        yield injector
    finally:
        uninstall()
