"""Seeded chaos plans: declarative, reproducible kill-points for a run.

A :class:`ChaosPlan` names *where* the runtime is attacked (a site) and *which*
occurrences of that site fire, exactly like the fault layer's
:class:`~repro.faults.FaultPlan` names data-plane failures.  The plan never
draws wall-clock randomness: every parameter of an injected failure (which
worker is SIGKILLed, at which byte a write is torn, which bit of a shard is
flipped) is a pure function of ``(plan.seed, site, occurrence)`` via
``np.random.SeedSequence(entropy=seed, spawn_key=(stable_key(site), occ))`` —
the same derivation law the rest of the repo uses for reproducible decisions.
Re-running a chaos campaign with the same plan therefore injects byte-identical
failures, which is what lets the campaign assert the *recovery* is
bit-identical too.

Sites (each counts its own occurrences, starting at 0):

``worker_kill``
    One :class:`~repro.exec.procs.ProcessBackend` dispatch; a firing occurrence
    SIGKILLs a deterministically chosen worker right after task submission.
``thread_hang``
    One task execution on a :class:`~repro.exec.threads.ThreadBackend` worker;
    a firing occurrence sleeps ``hang_s`` seconds before computing, tripping
    the backend's per-dispatch timeout.
``torn_write``
    One checkpoint save; a firing occurrence truncates the temp file at a
    derived byte offset and raises :class:`~repro.chaos.hooks.ChaosCrash` —
    the crash-mid-write the atomic-rename idiom must survive.
``crash_after_save``
    One checkpoint save; a firing occurrence raises
    :class:`~repro.chaos.hooks.ChaosCrash` *after* the rename — a clean kill
    with a durable checkpoint on disk.
``shard_corrupt``
    One :class:`~repro.population.store.ClientStateStore` shard-file write; a
    firing occurrence flips one derived bit of the final file after it is
    durably written (simulated bit rot the checksum must catch).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

import numpy as np

from repro.utils.rng import stable_key

__all__ = ["ChaosPlan", "ChaosInjector", "CHAOS_SITES"]

#: Every failure site a plan can address, in documentation order.
CHAOS_SITES = ("worker_kill", "thread_hang", "torn_write",
               "crash_after_save", "shard_corrupt")


def _as_occurrences(value, name: str) -> tuple[int, ...]:
    if value is None:
        return ()
    if isinstance(value, int):
        value = (value,)
    occs = tuple(int(v) for v in value)
    if any(v < 0 for v in occs):
        raise ValueError(f"{name} occurrences must be >= 0, got {occs}")
    return tuple(sorted(set(occs)))


@dataclass(frozen=True)
class ChaosPlan:
    """Which occurrences of each failure site fire, plus the derivation seed.

    Parameters
    ----------
    seed:
        Root seed of every injected failure's parameters.
    worker_kill / thread_hang / torn_write / crash_after_save / shard_corrupt:
        Occurrence indices (0-based) at which the site fires; an ``int`` is
        accepted as shorthand for a single occurrence.  Empty (the default)
        disables the site.
    hang_s:
        Sleep injected by a firing ``thread_hang`` occurrence; set it above
        the backend's ``timeout_s`` so the supervision layer must act.
    """

    seed: int = 0
    worker_kill: tuple[int, ...] = ()
    thread_hang: tuple[int, ...] = ()
    torn_write: tuple[int, ...] = ()
    crash_after_save: tuple[int, ...] = ()
    shard_corrupt: tuple[int, ...] = ()
    hang_s: float = 0.25

    def __post_init__(self) -> None:
        for site in CHAOS_SITES:
            object.__setattr__(self, site,
                               _as_occurrences(getattr(self, site), site))
        if self.hang_s < 0:
            raise ValueError(f"hang_s must be >= 0, got {self.hang_s}")

    @property
    def is_null(self) -> bool:
        """True when no site ever fires."""
        return not any(getattr(self, site) for site in CHAOS_SITES)

    def occurrences(self, site: str) -> tuple[int, ...]:
        """The firing occurrence indices of ``site``."""
        if site not in CHAOS_SITES:
            raise ValueError(f"unknown chaos site {site!r}; one of {CHAOS_SITES}")
        return getattr(self, site)

    # ------------------------------------------------------------------
    # Pure parameter derivation
    # ------------------------------------------------------------------
    def _rng(self, site: str, occurrence: int) -> np.random.Generator:
        ss = np.random.SeedSequence(
            entropy=self.seed,
            spawn_key=(stable_key(f"chaos:{site}"), int(occurrence)))
        return np.random.default_rng(ss)

    def params(self, site: str, occurrence: int) -> dict:
        """Failure parameters for ``(site, occurrence)``; pure in the seed.

        ``worker_kill`` yields ``victim`` (reduce modulo the live worker
        count); ``torn_write`` yields ``frac`` (the fraction of the payload
        that survives, in ``(0, 1)``); ``shard_corrupt`` yields
        ``offset_frac`` and ``bit``; ``thread_hang`` yields ``hang_s``.
        """
        if site not in CHAOS_SITES:
            raise ValueError(f"unknown chaos site {site!r}; one of {CHAOS_SITES}")
        rng = self._rng(site, occurrence)
        if site == "worker_kill":
            return {"victim": int(rng.integers(0, 2**31 - 1))}
        if site == "thread_hang":
            return {"hang_s": float(self.hang_s)}
        if site == "torn_write":
            return {"frac": float(rng.uniform(0.05, 0.95))}
        if site == "shard_corrupt":
            return {"offset_frac": float(rng.uniform()),
                    "bit": int(rng.integers(0, 8))}
        return {}  # crash_after_save carries no parameters

    # ------------------------------------------------------------------
    # Spec parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: "str | ChaosPlan | None") -> "ChaosPlan":
        """Build a plan from a spec string.

        ``"worker_kill=1,torn_write=0|2,seed=3,hang_s=0.5"`` — occurrence
        lists are ``|``-separated.  ``None`` / ``""`` yield the null plan.
        """
        if spec is None:
            return cls()
        if isinstance(spec, ChaosPlan):
            return spec
        plan = cls()
        text = str(spec).strip()
        if not text:
            return plan
        known = {f.name for f in fields(cls)}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"chaos spec entry {part!r} is not key=value")
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in known:
                raise ValueError(
                    f"unknown chaos spec key {key!r}; options: {sorted(known)}")
            if key == "seed":
                plan = replace(plan, seed=int(value))
            elif key == "hang_s":
                plan = replace(plan, hang_s=float(value))
            else:
                occs = tuple(int(v) for v in value.split("|") if v.strip())
                plan = replace(plan, **{key: occs})
        return plan


class ChaosInjector:
    """Counts each site's occurrences and decides which ones fire.

    One injector serves one run (its counters are the occurrence clock).  The
    decision record of every firing is kept in :attr:`fired` so harnesses can
    assert the intended kill-points actually triggered.
    """

    def __init__(self, plan: ChaosPlan) -> None:
        if not isinstance(plan, ChaosPlan):
            plan = ChaosPlan.parse(plan)
        self.plan = plan
        self.counts: dict[str, int] = {site: 0 for site in CHAOS_SITES}
        self.fired: list[dict] = []

    def decide(self, site: str) -> dict | None:
        """Advance ``site``'s occurrence clock; the firing decision or None."""
        occurrence = self.counts[site]  # KeyError on unknown site: intended
        self.counts[site] = occurrence + 1
        if occurrence not in self.plan.occurrences(site):
            return None
        decision = {"site": site, "occurrence": occurrence,
                    **self.plan.params(site, occurrence)}
        self.fired.append(decision)
        return decision

    def fired_sites(self) -> list[str]:
        """Site names that fired so far, in firing order."""
        return [d["site"] for d in self.fired]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ChaosInjector(seed={self.plan.seed}, "
                f"fired={len(self.fired)}, counts={self.counts})")
