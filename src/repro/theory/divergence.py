"""Empirical measurement of the Lemma 1/2 model-divergence quantities.

Lemma 1 bounds the mean squared distance between local models and the virtual
global average,

    (1/mT) Σ_t Σ_{n∈S(t)} E‖w(t) − w_n(t)‖²,

by ``20η²τ1²((m+1)/m·σ² + Ψ) + 20η²τ1²τ2²((m_E+1)/N0·σ² + Ψ)``.  The quantity is
internal to the algorithm's round (the virtual average exists at every slot,
across edges), so measuring it requires running the HierMinimax Phase-1 schedule
in *lockstep*: all sampled clients advance one local step at a time, and the
virtual average is computed per slot.  :func:`measure_model_divergence` does
exactly that with the same actors, RNG discipline, and aggregation math as
:class:`~repro.core.HierMinimax`, and returns both the squared (Lemma 1) and
absolute (Lemma 2) divergence averages so the theory bench can check
measured ≤ bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import FederatedDataset
from repro.nn.models import ModelFactory
from repro.sim.builder import build_edge_servers
from repro.topology.sampling import sample_by_weight
from repro.utils.rng import RngFactory
from repro.utils.validation import check_positive_float, check_positive_int

__all__ = ["DivergenceMeasurement", "measure_model_divergence"]


@dataclass(frozen=True)
class DivergenceMeasurement:
    """Measured divergence averages over a run.

    Attributes
    ----------
    mean_squared:
        The Lemma 1 left-hand side (average squared local-to-virtual distance).
    mean_absolute:
        The Lemma 2 left-hand side (average absolute distance).
    slots:
        Total slots the averages were taken over (``K·τ1·τ2``).
    """

    mean_squared: float
    mean_absolute: float
    slots: int


def measure_model_divergence(dataset: FederatedDataset,
                             model_factory: ModelFactory, *,
                             eta_w: float, tau1: int, tau2: int,
                             m_edges: int | None = None, rounds: int = 5,
                             batch_size: int = 8, seed: int = 0,
                             ) -> DivergenceMeasurement:
    """Run HierMinimax's Phase-1 schedule in lockstep and measure divergence.

    The weight vector is held uniform (its evolution does not enter Lemma 1) and
    Phase 2 is skipped; the update/aggregation schedule, client sampling,
    minibatch streams, and aggregation math match Algorithm 1.
    """
    eta_w = check_positive_float(eta_w, "eta_w")
    tau1 = check_positive_int(tau1, "tau1")
    tau2 = check_positive_int(tau2, "tau2")
    rounds = check_positive_int(rounds, "rounds")
    n_e = dataset.num_edges
    m_e = n_e if m_edges is None else check_positive_int(m_edges, "m_edges")
    if m_e > n_e:
        raise ValueError(f"m_edges={m_e} exceeds {n_e} edges")

    factory_rng = RngFactory(seed)
    engine = model_factory(factory_rng.stream("init"))
    edges = build_edge_servers(dataset, batch_size=batch_size,
                               rng_factory=factory_rng)
    cloud_rng = factory_rng.stream("cloud")
    p_uniform = np.full(n_e, 1.0 / n_e)

    w_global = engine.get_params()
    d = w_global.size
    sum_sq = 0.0
    sum_abs = 0.0
    samples = 0

    for _ in range(rounds):
        sampled = sample_by_weight(p_uniform, m_e, cloud_rng)
        # Participating client actors, grouped per sampled edge (duplicates run
        # independently, as in the algorithm).
        groups = [edges[int(e)].clients for e in sampled]
        # Per-edge current models (after t2 aggregations) and per-client models.
        edge_models = [w_global.copy() for _ in groups]
        for _t2 in range(tau2):
            client_models = [
                [edge_models[g].copy() for _ in group]
                for g, group in enumerate(groups)
            ]
            for _t1 in range(tau1):
                # One lockstep local SGD slot for every participating client.
                for g, group in enumerate(groups):
                    for c, client in enumerate(group):
                        w_end, _ = client.local_sgd(
                            engine, client_models[g][c], steps=1, lr=eta_w)
                        client_models[g][c] = w_end
                # Virtual global average across all participating clients.
                flat = [w for models in client_models for w in models]
                virtual = np.mean(flat, axis=0)
                for w in flat:
                    diff = w - virtual
                    sum_sq += float(diff @ diff)
                    sum_abs += float(np.linalg.norm(diff))
                    samples += 1
            # Client-edge aggregation (uniform within the edge, Eq. (5) style).
            for g in range(len(groups)):
                edge_models[g] = np.mean(client_models[g], axis=0)
        # Edge-cloud aggregation.
        w_global = np.mean(edge_models, axis=0)
    assert samples > 0 and d > 0
    return DivergenceMeasurement(
        mean_squared=sum_sq / samples,
        mean_absolute=sum_abs / samples,
        slots=rounds * tau1 * tau2,
    )
