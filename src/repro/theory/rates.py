"""Empirical convergence-rate fitting.

The §5 tradeoff benches verify the claimed orders empirically: run HierMinimax at
several horizons ``T`` (or several ``α``), measure the duality gap / suboptimality,
and fit the log-log slope.  :func:`fit_power_law` performs the regression;
:func:`rate_consistency` compares a fitted exponent against a theoretical one with
a tolerance appropriate for small-T, noisy measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law", "rate_consistency"]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y ≈ C · x^slope`` in log-log space.

    ``r_squared`` is the usual coefficient of determination of the log-log
    regression.
    """

    slope: float
    log_intercept: float
    r_squared: float

    @property
    def constant(self) -> float:
        """The multiplicative constant ``C = exp(log_intercept)``."""
        return float(np.exp(self.log_intercept))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted law at ``x``."""
        return self.constant * np.asarray(x, dtype=np.float64) ** self.slope


def fit_power_law(x: np.ndarray, y: np.ndarray) -> PowerLawFit:
    """Fit ``y = C·x^s`` by ordinary least squares on ``(log x, log y)``.

    Requires at least two points with strictly positive coordinates.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"x and y must be matching 1-D arrays, got {x.shape}, {y.shape}")
    if x.size < 2:
        raise ValueError("need at least two points to fit a power law")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fitting requires strictly positive data")
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    pred = slope * lx + intercept
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(slope=float(slope), log_intercept=float(intercept),
                       r_squared=r2)


def rate_consistency(fitted_slope: float, theoretical_slope: float, *,
                     atol: float = 0.25) -> bool:
    """Whether a fitted exponent is consistent with the theoretical one.

    Theoretical rates are upper bounds, so empirical decay may be *faster*
    (more negative slope); consistency therefore means
    ``fitted <= theoretical + atol``.
    """
    if atol < 0:
        raise ValueError(f"atol must be nonnegative, got {atol}")
    return fitted_slope <= theoretical_slope + atol
