"""Evaluators of the paper's convergence bounds (Theorems 1 and 2, Lemmas 1–2).

Given the problem constants of Assumptions 1–5 and an algorithm configuration
(``η_w``, ``η_p``, ``τ1``, ``τ2``, ``m_E``, ``N0``, ``N_E``, ``T``), these
functions evaluate the right-hand sides of the paper's bounds term by term, so the
benches can (a) report the predicted duality gap / Moreau-envelope stationarity
alongside the measured quantities, and (b) verify the claimed monotonicities (e.g.
the bound degrades as ``τ1 τ2`` grows and tightens as ``T`` grows).

Every term is named exactly as annotated under Theorem 1 (minimization gap,
maximization gap, client-edge aggregation, edge-cloud aggregation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.theory.constants import ProblemConstants

__all__ = [
    "HierMinimaxBoundInputs",
    "Theorem1Bound",
    "theorem1_bound",
    "Theorem2Bound",
    "theorem2_bound",
    "lemma1_divergence_bound",
    "lemma2_divergence_bound",
    "lemma1_step_condition",
    "lemma2_step_condition",
]


@dataclass(frozen=True)
class HierMinimaxBoundInputs:
    """Algorithm configuration entering the bounds.

    Attributes
    ----------
    eta_w, eta_p:
        Learning rates.
    tau1, tau2:
        Update/aggregation periods.
    m_edges:
        Sampled edges per phase (``m_E``).
    n0:
        Clients per edge area (``N0``).
    n_edges:
        Edge areas (``N_E``).
    T:
        Total training slots ``K·τ1·τ2``.
    """

    eta_w: float
    eta_p: float
    tau1: int
    tau2: int
    m_edges: int
    n0: int
    n_edges: int
    T: int

    def __post_init__(self) -> None:
        if min(self.tau1, self.tau2, self.m_edges, self.n0, self.n_edges, self.T) < 1:
            raise ValueError("tau1, tau2, m_edges, n0, n_edges, T must all be >= 1")
        if self.eta_w <= 0 or self.eta_p <= 0:
            raise ValueError("learning rates must be positive")
        if self.m_edges > self.n_edges:
            raise ValueError(f"m_edges={self.m_edges} exceeds n_edges={self.n_edges}")

    @property
    def m(self) -> int:
        """Sampled clients per round, ``m = m_E · N0``."""
        return self.m_edges * self.n0

    @property
    def rounds(self) -> int:
        """Training rounds ``K = T / (τ1·τ2)`` (ceil)."""
        return -(-self.T // (self.tau1 * self.tau2))


def lemma1_step_condition(cfg: HierMinimaxBoundInputs, c: ProblemConstants) -> bool:
    """Whether the Lemma 1 step-size condition ``1 - 20η²L²τ1²(1+τ2²) >= 1/2`` holds."""
    return (1.0 - 20.0 * cfg.eta_w ** 2 * c.L ** 2 * cfg.tau1 ** 2
            * (1.0 + cfg.tau2 ** 2)) >= 0.5


def lemma2_step_condition(cfg: HierMinimaxBoundInputs, c: ProblemConstants) -> bool:
    """Whether the Lemma 2 condition ``1 - 2ηLτ1(1+τ2) >= 1/2`` holds."""
    return (1.0 - 2.0 * cfg.eta_w * c.L * cfg.tau1 * (1.0 + cfg.tau2)) >= 0.5


def lemma1_divergence_bound(cfg: HierMinimaxBoundInputs, c: ProblemConstants) -> float:
    """Lemma 1: bound on the mean squared divergence between local and global models.

    ``20η²τ1²((m+1)/m·σ² + Ψ) + 20η²τ1²τ2²((m_E+1)/N0·σ² + Ψ)``
    """
    m = cfg.m
    term_ce = 20.0 * cfg.eta_w ** 2 * cfg.tau1 ** 2 * (
        (m + 1) / m * c.sigma_w ** 2 + c.psi)
    term_ec = 20.0 * cfg.eta_w ** 2 * cfg.tau1 ** 2 * cfg.tau2 ** 2 * (
        (cfg.m_edges + 1) / cfg.n0 * c.sigma_w ** 2 + c.psi)
    return term_ce + term_ec


def lemma2_divergence_bound(cfg: HierMinimaxBoundInputs, c: ProblemConstants) -> float:
    """Lemma 2: bound on the mean (unsquared) model divergence for non-convex loss.

    ``2ητ1((m+1)/m·σ + √Ψ) + 2ητ1τ2((m_E+1)/N0·σ + √Ψ)``
    """
    m = cfg.m
    sqrt_psi = c.psi ** 0.5
    term_ce = 2.0 * cfg.eta_w * cfg.tau1 * ((m + 1) / m * c.sigma_w + sqrt_psi)
    term_ec = 2.0 * cfg.eta_w * cfg.tau1 * cfg.tau2 * (
        (cfg.m_edges + 1) / cfg.n0 * c.sigma_w + sqrt_psi)
    return term_ce + term_ec


@dataclass(frozen=True)
class Theorem1Bound:
    """The Theorem 1 duality-gap bound, term by term."""

    maximization_gap: float
    minimization_gap: float
    client_edge_aggregation: float
    edge_cloud_aggregation: float
    step_condition_ok: bool

    @property
    def total(self) -> float:
        """The full duality-gap upper bound."""
        return (self.maximization_gap + self.minimization_gap
                + self.client_edge_aggregation + self.edge_cloud_aggregation)


def theorem1_bound(cfg: HierMinimaxBoundInputs, c: ProblemConstants) -> Theorem1Bound:
    """Evaluate the Theorem 1 duality-gap upper bound for convex losses."""
    m = cfg.m
    maximization = (c.R_p ** 2 / (2.0 * cfg.eta_p * cfg.T)
                    + cfg.eta_p * cfg.tau1 * cfg.tau2 / 2.0 * c.G_p ** 2
                    + cfg.eta_p * cfg.tau1 * cfg.tau2 / (2.0 * m) * c.sigma_p ** 2)
    minimization = (cfg.n_edges * c.R_w ** 2 / (2.0 * cfg.eta_w * cfg.T)
                    + cfg.eta_w * cfg.n_edges / 2.0 * c.G_w ** 2
                    + cfg.eta_w / (2.0 * cfg.n0) * c.sigma_w ** 2)
    client_edge = (10.0 * c.L * cfg.n_edges * cfg.eta_w ** 2 * cfg.tau1 ** 2
                   * ((m + 1) / m * c.sigma_w ** 2 + c.psi))
    edge_cloud = (10.0 * c.L * cfg.n_edges * cfg.eta_w ** 2
                  * cfg.tau1 ** 2 * cfg.tau2 ** 2
                  * ((cfg.m_edges + 1) / cfg.n0 * c.sigma_w ** 2 + c.psi))
    return Theorem1Bound(
        maximization_gap=maximization,
        minimization_gap=minimization,
        client_edge_aggregation=client_edge,
        edge_cloud_aggregation=edge_cloud,
        step_condition_ok=lemma1_step_condition(cfg, c),
    )


@dataclass(frozen=True)
class Theorem2Bound:
    """The Theorem 2 Moreau-envelope stationarity bound, term by term."""

    initial_gap: float
    drift: float
    weight_domain: float
    weight_noise: float
    model_noise: float
    client_edge_divergence: float
    edge_cloud_divergence: float
    step_condition_ok: bool

    @property
    def total(self) -> float:
        """The full bound on the averaged squared Moreau-envelope gradient norm."""
        return (self.initial_gap + self.drift + self.weight_domain
                + self.weight_noise + self.model_noise
                + self.client_edge_divergence + self.edge_cloud_divergence)


def theorem2_bound(cfg: HierMinimaxBoundInputs, c: ProblemConstants, *,
                   phi0: float) -> Theorem2Bound:
    """Evaluate the Theorem 2 bound for non-convex losses.

    Parameters
    ----------
    phi0:
        ``Φ_{1/2L}(w^(0))`` — the Moreau envelope of the worst-case objective at
        the initial model (measure it with
        :func:`repro.theory.moreau.moreau_envelope`).
    """
    if phi0 < 0:
        raise ValueError(f"phi0 must be nonnegative, got {phi0}")
    m = cfg.m
    K = cfg.rounds
    sqrt_K = K ** 0.5
    sqrt_psi = c.psi ** 0.5
    tau12 = cfg.tau1 * cfg.tau2
    initial = 4.0 * phi0 / (cfg.eta_w * cfg.n_edges * cfg.T)
    drift = (16.0 * c.L * sqrt_K * cfg.eta_w * tau12 * c.G_w
             * (c.G_w ** 2 + c.sigma_w ** 2) ** 0.5)
    weight_domain = 4.0 * c.L * c.R_p ** 2 / (sqrt_K * cfg.eta_p * tau12)
    weight_noise = (8.0 * cfg.eta_p * tau12 * c.L
                    * (c.G_p ** 2 + c.sigma_p ** 2 / m))
    model_noise = 4.0 * cfg.eta_w / cfg.n_edges * (c.G_w ** 2 + c.sigma_w ** 2 / m)
    ce_div = (8.0 * cfg.eta_w * cfg.tau1 * c.R_w * c.L ** 2 / cfg.n_edges
              * ((m + 1) / m * c.sigma_w + sqrt_psi))
    ec_div = (8.0 * cfg.eta_w * tau12 * c.R_w * c.L ** 2 / cfg.n_edges
              * ((cfg.m_edges + 1) / cfg.n0 * c.sigma_w + sqrt_psi))
    return Theorem2Bound(
        initial_gap=initial,
        drift=drift,
        weight_domain=weight_domain,
        weight_noise=weight_noise,
        model_noise=model_noise,
        client_edge_divergence=ce_div,
        edge_cloud_divergence=ec_div,
        step_condition_ok=lemma2_step_condition(cfg, c),
    )
