"""Exact duality-gap measurement for convex instances.

For convex losses the paper measures solution quality by the duality gap (Eq. (8))

    max_{p ∈ P} F(ŵ, p) − min_{w ∈ W} F(w, p̂).

On a concrete convex instance both sides are computable:

* since ``F(w, ·)`` is linear in ``p``, the max over the simplex is
  ``max_e f_e(ŵ)`` (and a capped simplex maxes greedily);
* the min over ``w`` of the p̂-weighted convex loss is found by full-batch gradient
  descent run to tolerance.

This powers the theory bench: the measured gap must lie below the Theorem 1 bound
and decay with ``T`` at the predicted order.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import FederatedDataset
from repro.nn.network import NeuralNetwork

__all__ = ["edge_losses", "max_over_simplex", "weighted_min_loss", "duality_gap"]


def edge_losses(engine: NeuralNetwork, w: np.ndarray,
                dataset: FederatedDataset) -> np.ndarray:
    """Exact per-edge training losses ``f_e(w)`` (each edge's pooled data)."""
    engine.set_params(w)
    losses = np.empty(dataset.num_edges)
    for e, edge in enumerate(dataset.edges):
        pool = edge.train_pool()
        losses[e] = engine.loss(pool.X, pool.y)
    return losses


def max_over_simplex(losses: np.ndarray) -> float:
    """``max_{p ∈ Δ} Σ p_e f_e`` — attained at the worst edge."""
    losses = np.asarray(losses, dtype=np.float64)
    if losses.ndim != 1 or losses.size == 0:
        raise ValueError(f"losses must be a nonempty vector, got shape {losses.shape}")
    return float(losses.max())


def weighted_min_loss(engine: NeuralNetwork, p: np.ndarray,
                      dataset: FederatedDataset, *,
                      lr: float = 0.5, max_iters: int = 4000,
                      tol: float = 1e-8,
                      w_init: np.ndarray | None = None) -> float:
    """``min_w Σ_e p_e f_e(w)`` by full-batch gradient descent with backtracking.

    Parameters
    ----------
    p:
        Fixed mixing weights (need not be normalized; nonnegative required).
    lr:
        Initial step size; halved whenever a step fails to decrease the loss.
    tol:
        Terminate when the gradient norm falls below ``tol`` or the loss decrease
        stalls below ``tol`` for two consecutive accepted steps.

    Returns
    -------
    float
        The (near-)optimal weighted loss value.
    """
    p = np.asarray(p, dtype=np.float64)
    if p.shape != (dataset.num_edges,):
        raise ValueError(f"p must have shape ({dataset.num_edges},), got {p.shape}")
    if np.any(p < -1e-12):
        raise ValueError("weights must be nonnegative")
    pools = [edge.train_pool() for edge in dataset.edges]
    active = [(float(pe), pool) for pe, pool in zip(p, pools) if pe > 0]
    if not active:
        raise ValueError("p has no positive mass")

    def value_and_grad(w: np.ndarray) -> tuple[float, np.ndarray]:
        total = 0.0
        grad = np.zeros_like(w)
        for pe, pool in active:
            engine.set_params(w)
            val, g = engine.loss_and_gradient(pool.X, pool.y)
            total += pe * val
            grad += pe * g
        return total, grad

    w = engine.get_params() if w_init is None else np.array(w_init, dtype=np.float64)
    value, grad = value_and_grad(w)
    step = lr
    stalls = 0
    for _ in range(max_iters):
        gnorm = float(np.linalg.norm(grad))
        if gnorm < tol:
            break
        w_new = w - step * grad
        value_new, grad_new = value_and_grad(w_new)
        if value_new <= value - 1e-4 * step * gnorm ** 2:
            stalls = stalls + 1 if value - value_new < tol else 0
            w, value, grad = w_new, value_new, grad_new
            step *= 1.1  # gentle growth after success
            if stalls >= 2:
                break
        else:
            step *= 0.5
            if step < 1e-12:
                break
    return value


def duality_gap(engine: NeuralNetwork, w_hat: np.ndarray, p_hat: np.ndarray,
                dataset: FederatedDataset, **min_kwargs) -> float:
    """The Eq. (8) duality gap of the candidate solution ``(ŵ, p̂)``.

    Nonnegative up to the inner-minimization tolerance; zero iff ``(ŵ, p̂)`` is a
    minimax point.
    """
    upper = max_over_simplex(edge_losses(engine, w_hat, dataset))
    lower = weighted_min_loss(engine, p_hat, dataset, w_init=w_hat, **min_kwargs)
    return upper - lower
