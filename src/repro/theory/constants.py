"""Estimation of the problem constants appearing in Assumptions 1–5.

The bounds of Theorems 1–2 are stated in terms of the constants

* ``R_W``, ``R_P`` — domain diameters (Assumption 1),
* ``L`` — smoothness (Assumption 2),
* ``G_w``, ``G_p`` — gradient bounds (Assumption 3),
* ``σ_w``, ``σ_p`` — stochastic-gradient variances (Assumption 4),
* ``Ψ`` — gradient dissimilarity (Assumption 5).

For the bound evaluators in :mod:`repro.theory.bounds` to produce concrete numbers
on a concrete problem instance, these constants must be *measured*.
:func:`estimate_problem_constants` probes a federated problem empirically: it draws
models from the relevant region, computes per-edge full gradients and minibatch
stochastic gradients, and returns conservative (max-over-probes) estimates.  For
multinomial logistic regression the smoothness constant also has the closed form
``L <= max_batch ||x||² / 2`` which :func:`logistic_smoothness_bound` provides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import FederatedDataset
from repro.nn.network import NeuralNetwork

__all__ = ["ProblemConstants", "estimate_problem_constants", "logistic_smoothness_bound"]


@dataclass(frozen=True)
class ProblemConstants:
    """Measured Assumption-1–5 constants of one problem instance."""

    R_w: float
    R_p: float
    L: float
    G_w: float
    G_p: float
    sigma_w: float
    sigma_p: float
    psi: float

    def as_dict(self) -> dict:
        """Plain-dict view (serialization)."""
        return {
            "R_w": self.R_w, "R_p": self.R_p, "L": self.L, "G_w": self.G_w,
            "G_p": self.G_p, "sigma_w": self.sigma_w, "sigma_p": self.sigma_p,
            "psi": self.psi,
        }


def logistic_smoothness_bound(X: np.ndarray) -> float:
    """Closed-form smoothness bound of softmax cross-entropy logistic regression.

    For mean cross-entropy over a batch, the Hessian w.r.t. the weights satisfies
    ``||H|| <= (1/2) · mean_i ||x_i||²`` (the softmax Jacobian has spectral norm
    <= 1/2); we return the max over samples for a batch-independent constant.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    # +1 accounts for the bias coordinate.
    return 0.5 * float((np.square(X).sum(axis=1) + 1.0).max())


def estimate_problem_constants(dataset: FederatedDataset, engine: NeuralNetwork, *,
                               num_probes: int = 8, probe_radius: float = 1.0,
                               batch_size: int = 8,
                               rng: np.random.Generator | None = None,
                               ) -> ProblemConstants:
    """Empirically estimate the Assumption constants around the init region.

    Parameters
    ----------
    dataset:
        The federated problem whose edge losses define ``F``.
    engine:
        Model defining the parameterization; its current parameters are restored
        on exit.
    num_probes:
        Models sampled in the ball of ``probe_radius`` around the current
        parameters (more probes → tighter max estimates, linearly slower).
    batch_size:
        Minibatch size used for the stochastic-variance estimates.

    Notes
    -----
    The estimates are *empirical maxima*, i.e. lower bounds on the true suprema;
    they are intended for evaluating the theorem bounds on concrete instances
    (bench ``bench_theory_bounds``), not for certified guarantees.
    """
    if num_probes < 1:
        raise ValueError(f"num_probes must be >= 1, got {num_probes}")
    if probe_radius <= 0:
        raise ValueError(f"probe_radius must be positive, got {probe_radius}")
    gen = rng if rng is not None else np.random.default_rng(0)
    w0 = engine.get_params()
    d = w0.size
    n_e = dataset.num_edges

    G_w = 0.0
    sigma_w2 = 0.0
    psi = 0.0
    G_p = 0.0
    sigma_p2 = 0.0
    L_est = 0.0

    edge_pools = [edge.train_pool() for edge in dataset.edges]
    prev_w: np.ndarray | None = None
    prev_grads: np.ndarray | None = None
    for probe in range(num_probes):
        w = w0 if probe == 0 else w0 + probe_radius * _unit_vector(gen, d)
        # Per-edge full gradients and losses.
        grads = np.empty((n_e, d))
        losses = np.empty(n_e)
        for e, pool in enumerate(edge_pools):
            engine.set_params(w)
            losses[e], grads[e] = engine.loss_and_gradient(pool.X, pool.y)
        norms = np.linalg.norm(grads, axis=1)
        G_w = max(G_w, float(norms.max()))
        # Psi: worst-case weighted dissimilarity; the sup over p of the weighted
        # average is attained at the single worst pair, so bound with the max.
        diffs = grads[:, None, :] - grads[None, :, :]
        psi = max(psi, float(np.square(diffs).sum(axis=2).max()))
        # G_p: gradient w.r.t. p is the loss vector itself.
        G_p = max(G_p, float(np.linalg.norm(losses)))
        # sigma_w: variance of minibatch gradients around the edge full gradient.
        for e, pool in enumerate(edge_pools):
            idx = gen.choice(len(pool), size=min(batch_size, len(pool)), replace=False)
            engine.set_params(w)
            _, g_batch = engine.loss_and_gradient(pool.X[idx], pool.y[idx])
            sigma_w2 = max(sigma_w2, float(np.square(g_batch - grads[e]).sum()))
            # sigma_p: per-coordinate loss-estimate variance proxy.
            engine.set_params(w)
            batch_loss = engine.loss(pool.X[idx], pool.y[idx])
            sigma_p2 = max(sigma_p2, (batch_loss - losses[e]) ** 2 * n_e)
        # L: secant estimate between consecutive probes.
        if prev_w is not None:
            dw = float(np.linalg.norm(w - prev_w))
            if dw > 1e-12:
                dg = float(np.linalg.norm(grads - prev_grads, axis=1).max())
                L_est = max(L_est, dg / dw)
        prev_w, prev_grads = w, grads

    engine.set_params(w0)
    return ProblemConstants(
        R_w=2.0 * probe_radius,
        R_p=float(np.sqrt(2.0)),  # diameter of the probability simplex
        L=L_est if L_est > 0 else 1.0,
        G_w=G_w,
        G_p=G_p,
        sigma_w=float(np.sqrt(sigma_w2)),
        sigma_p=float(np.sqrt(sigma_p2)),
        psi=psi,
    )


def _unit_vector(rng: np.random.Generator, d: int) -> np.ndarray:
    v = rng.normal(size=d)
    return v / np.linalg.norm(v)
