"""Theory artifacts: Assumption constants, Theorem 1/2 bounds, Table 1, rate fits."""

from repro.theory.bounds import (
    HierMinimaxBoundInputs,
    Theorem1Bound,
    Theorem2Bound,
    lemma1_divergence_bound,
    lemma1_step_condition,
    lemma2_divergence_bound,
    lemma2_step_condition,
    theorem1_bound,
    theorem2_bound,
)
from repro.theory.constants import (
    ProblemConstants,
    estimate_problem_constants,
    logistic_smoothness_bound,
)
from repro.theory.divergence import DivergenceMeasurement, measure_model_divergence
from repro.theory.duality import (
    duality_gap,
    edge_losses,
    max_over_simplex,
    weighted_min_loss,
)
from repro.theory.moreau import moreau_envelope, moreau_gradient_norm, phi_value
from repro.theory.rates import PowerLawFit, fit_power_law, rate_consistency
from repro.theory.table1 import Table1Row, evaluate_row, format_table1, table1_rows

__all__ = [
    "HierMinimaxBoundInputs",
    "Theorem1Bound",
    "Theorem2Bound",
    "lemma1_divergence_bound",
    "lemma1_step_condition",
    "lemma2_divergence_bound",
    "lemma2_step_condition",
    "theorem1_bound",
    "theorem2_bound",
    "ProblemConstants",
    "estimate_problem_constants",
    "logistic_smoothness_bound",
    "DivergenceMeasurement",
    "measure_model_divergence",
    "duality_gap",
    "edge_losses",
    "max_over_simplex",
    "weighted_min_loss",
    "moreau_envelope",
    "moreau_gradient_norm",
    "phi_value",
    "PowerLawFit",
    "fit_power_law",
    "rate_consistency",
    "Table1Row",
    "evaluate_row",
    "format_table1",
    "table1_rows",
]
