"""Table 1 of the paper: related-work comparison of communication complexity and
convergence rate for distributed minimax optimization.

The table is analytic — it compares the asymptotic orders of Stochastic-AFL [25],
DRFA [10], and HierMinimax (ours) for convex and non-convex losses.  This module
produces both the symbolic rows (exactly as printed in the paper) and numeric
evaluations at a given horizon ``T`` so the ``bench_table1_tradeoff`` bench can
print the table and empirically verify the orders against simulated runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedules import communication_complexity_order, convergence_rate_order

__all__ = ["Table1Row", "table1_rows", "evaluate_row", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1.

    ``cc_exponent`` / ``cr_exponent`` hold the exponents ``a`` of ``T^a`` for the
    communication complexity and ``b`` of ``1/T^b`` for the convergence rate
    (``None`` where the paper reports N/A).  ``alpha_dependent`` marks our method,
    whose exponents are functions of the tunable ``α``.
    """

    reference: str
    hierarchical: bool
    cc_convex: str
    cr_convex: str
    cc_nonconvex: str
    cr_nonconvex: str
    cc_exponent_convex: float | None
    cr_exponent_convex: float | None
    cc_exponent_nonconvex: float | None
    cr_exponent_nonconvex: float | None
    alpha_dependent: bool = False


def table1_rows(alpha: float = 0.0) -> list[Table1Row]:
    """The three rows of Table 1; our row's exponents are evaluated at ``alpha``."""
    if not 0.0 <= alpha < 1.0:
        raise ValueError(f"alpha must be in [0, 1), got {alpha}")
    return [
        Table1Row(
            reference="Stochastic-AFL [25]", hierarchical=False,
            cc_convex="O(T)", cr_convex="O(1/T^{1/2})",
            cc_nonconvex="N/A", cr_nonconvex="N/A",
            cc_exponent_convex=1.0, cr_exponent_convex=0.5,
            cc_exponent_nonconvex=None, cr_exponent_nonconvex=None),
        Table1Row(
            reference="DRFA [10]", hierarchical=False,
            cc_convex="O(T^{3/4})", cr_convex="O(1/T^{3/8})",
            cc_nonconvex="O(T^{3/4})", cr_nonconvex="O(1/T^{1/8})",
            cc_exponent_convex=0.75, cr_exponent_convex=0.375,
            cc_exponent_nonconvex=0.75, cr_exponent_nonconvex=0.125),
        Table1Row(
            reference="HierMinimax (ours)", hierarchical=True,
            cc_convex="O(T^{1-a})", cr_convex="O(1/T^{(1-a)/2})",
            cc_nonconvex="O(T^{1-a})", cr_nonconvex="O(1/T^{(1-a)/4})",
            cc_exponent_convex=1.0 - alpha,
            cr_exponent_convex=(1.0 - alpha) / 2.0,
            cc_exponent_nonconvex=1.0 - alpha,
            cr_exponent_nonconvex=(1.0 - alpha) / 4.0,
            alpha_dependent=True),
    ]


def evaluate_row(row: Table1Row, T: int, *, convex: bool) -> tuple[float | None, float | None]:
    """Numeric (communication complexity, convergence rate) of one row at ``T``."""
    if T < 1:
        raise ValueError(f"T must be >= 1, got {T}")
    cc_exp = row.cc_exponent_convex if convex else row.cc_exponent_nonconvex
    cr_exp = row.cr_exponent_convex if convex else row.cr_exponent_nonconvex
    cc = None if cc_exp is None else float(T) ** cc_exp
    cr = None if cr_exp is None else 1.0 / float(T) ** cr_exp
    return cc, cr


def format_table1(alpha: float = 0.25, T: int | None = None) -> str:
    """Render Table 1 as text, optionally with numeric columns at horizon ``T``."""
    rows = table1_rows(alpha)
    lines = [
        "Table 1: distributed minimax optimization — communication complexity (c.c.)"
        " and convergence rate (c.r.)",
        f"(our row evaluated at alpha = {alpha:g})",
        f"{'Reference':22s} {'Hier.':6s} {'c.c. convex':14s} {'c.r. convex':16s} "
        f"{'c.c. non-cvx':14s} {'c.r. non-cvx':16s}",
    ]
    for row in rows:
        lines.append(
            f"{row.reference:22s} {'yes' if row.hierarchical else 'no':6s} "
            f"{row.cc_convex:14s} {row.cr_convex:16s} "
            f"{row.cc_nonconvex:14s} {row.cr_nonconvex:16s}")
    if T is not None:
        lines.append(f"numeric orders at T = {T}:")
        for row in rows:
            cc_c, cr_c = evaluate_row(row, T, convex=True)
            cc_n, cr_n = evaluate_row(row, T, convex=False)
            lines.append(
                f"{row.reference:22s} cc_cvx={_fmt(cc_c):>12s} cr_cvx={_fmt(cr_c):>12s} "
                f"cc_ncvx={_fmt(cc_n):>12s} cr_ncvx={_fmt(cr_n):>12s}")
    # Sanity anchors used by tests: the tunable-alpha row matches the helper
    # functions in repro.core.schedules.
    assert rows[-1].alpha_dependent
    if T is not None:
        cc, _ = evaluate_row(rows[-1], T, convex=True)
        assert abs(cc - communication_complexity_order(T, alpha)) < 1e-9
        _, cr = evaluate_row(rows[-1], T, convex=True)
        assert abs(cr - convergence_rate_order(T, alpha, convex=True)) < 1e-9
    return "\n".join(lines)


def _fmt(x: float | None) -> str:
    return "N/A" if x is None else f"{x:.4g}"
