"""Moreau-envelope machinery for the non-convex analysis (§5.2).

For non-convex losses the paper measures near-stationarity of
``Φ(w) = max_{p∈P} F(w, p) = max_e f_e(w)`` through its (1/2L)-Moreau envelope
(Eq. (9)):

    Φ_λ(w) = min_x { Φ(x) + (1/2λ)||x − w||² },     ∇Φ_λ(w) = (w − x*)/λ.

``Φ`` is a pointwise max of smooth functions, so the proximal subproblem is solved
here by subgradient descent with averaging on the strongly convex objective — the
max's subgradient at ``x`` is the gradient of an attaining edge loss.  The solver
returns both the envelope value and the proximal point, from which the stationarity
measure ``||∇Φ_{1/2L}(w)||`` follows.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import FederatedDataset
from repro.nn.network import NeuralNetwork
from repro.theory.duality import edge_losses

__all__ = ["phi_value", "moreau_envelope", "moreau_gradient_norm"]


def phi_value(engine: NeuralNetwork, w: np.ndarray,
              dataset: FederatedDataset) -> float:
    """``Φ(w) = max_e f_e(w)`` over the edges' pooled training data."""
    return float(edge_losses(engine, w, dataset).max())


def _phi_subgradient(engine: NeuralNetwork, x: np.ndarray,
                     dataset: FederatedDataset) -> tuple[float, np.ndarray]:
    """Value and one subgradient of ``Φ`` at ``x`` (gradient of an attaining edge)."""
    losses = np.empty(dataset.num_edges)
    grads: list[np.ndarray | None] = [None] * dataset.num_edges
    for e, edge in enumerate(dataset.edges):
        pool = edge.train_pool()
        engine.set_params(x)
        losses[e], g = engine.loss_and_gradient(pool.X, pool.y)
        grads[e] = g
    worst = int(np.argmax(losses))
    return float(losses[worst]), grads[worst]


def moreau_envelope(engine: NeuralNetwork, w: np.ndarray,
                    dataset: FederatedDataset, *, lam: float,
                    max_iters: int = 300, tol: float = 1e-7,
                    ) -> tuple[float, np.ndarray]:
    """Evaluate ``Φ_λ(w)`` and its proximal point ``x*``.

    The subproblem ``min_x Φ(x) + (1/2λ)||x − w||²`` is ``1/λ``-strongly convex
    (for ``λ`` below the weak-convexity threshold ``1/L``); projected subgradient
    descent with the classic ``2/(μ(k+2))`` schedule and tail averaging converges
    at ``O(1/k)``.

    Returns
    -------
    (value, x_star):
        The envelope value and the approximate proximal point.
    """
    if lam <= 0:
        raise ValueError(f"lam must be positive, got {lam}")
    if max_iters < 1:
        raise ValueError(f"max_iters must be >= 1, got {max_iters}")
    w = np.asarray(w, dtype=np.float64)
    mu = 1.0 / lam
    x = w.copy()
    x_avg = np.zeros_like(x)
    weight_sum = 0.0
    prev_obj = np.inf
    for k in range(max_iters):
        phi_x, g_phi = _phi_subgradient(engine, x, dataset)
        obj = phi_x + 0.5 * mu * float((x - w) @ (x - w))
        grad = g_phi + mu * (x - w)
        step = 2.0 / (mu * (k + 2))
        x = x - step * grad
        # Weighted (k+1)-averaging emphasizes late iterates (Lacoste-Julien et al.).
        x_avg += (k + 1) * x
        weight_sum += (k + 1)
        if abs(prev_obj - obj) < tol and k > 10:
            break
        prev_obj = obj
    x_star = x_avg / weight_sum
    phi_star, _ = _phi_subgradient(engine, x_star, dataset)
    value = phi_star + 0.5 * mu * float((x_star - w) @ (x_star - w))
    return value, x_star


def moreau_gradient_norm(engine: NeuralNetwork, w: np.ndarray,
                         dataset: FederatedDataset, *, lam: float,
                         **kwargs) -> float:
    """``||∇Φ_λ(w)|| = ||w − x*|| / λ`` — the §5.2 stationarity measure."""
    _, x_star = moreau_envelope(engine, w, dataset, lam=lam, **kwargs)
    return float(np.linalg.norm(w - x_star)) / lam
