"""Fairness statistics over per-edge-area accuracies.

Table 2 of the paper compares average, worst, and *variance* of test accuracies
across edge areas; the Synthetic row reports the worst-10% accuracy following
Li et al. [19].  All statistics here take a 1-D array of per-area accuracies.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "worst_accuracy",
    "average_accuracy",
    "worst_fraction_mean",
    "accuracy_variance_x1e4",
    "accuracy_range",
    "jain_fairness_index",
    "entropy_of_weights",
]


def _check(acc: np.ndarray) -> np.ndarray:
    acc = np.asarray(acc, dtype=np.float64)
    if acc.ndim != 1 or acc.size == 0:
        raise ValueError(f"need a nonempty 1-D accuracy array, got shape {acc.shape}")
    return acc


def average_accuracy(acc: np.ndarray) -> float:
    """Mean per-area accuracy (the "Average" column of Table 2)."""
    return float(_check(acc).mean())


def worst_accuracy(acc: np.ndarray) -> float:
    """Minimum per-area accuracy (the "Worst" column of Table 2)."""
    return float(_check(acc).min())


def worst_fraction_mean(acc: np.ndarray, fraction: float) -> float:
    """Mean accuracy of the worst ``fraction`` of areas (e.g. worst 10%).

    At least one area is always included, so with few areas
    (``⌊fraction · n⌋ < 1``) this degrades gracefully to the plain worst
    accuracy.  Callers that report the statistic under a "worst-X%" label
    should surface the degradation — :func:`~repro.metrics.evaluation
    .evaluate_record` flags it as ``extra["worst10_degraded"]``.
    """
    acc = _check(acc)
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    k = max(1, int(np.floor(fraction * acc.size)))
    worst_k = np.partition(acc, k - 1)[:k]
    return float(worst_k.mean())


def accuracy_variance_x1e4(acc: np.ndarray) -> float:
    """Population variance of per-area accuracies, scaled by 10⁴ (Table 2 units).

    The paper's variance entries (e.g. 21.05 on EMNIST-Digits) correspond to
    accuracies measured in percent, i.e. ``var(100·acc) = 1e4·var(acc)``.
    """
    acc = _check(acc)
    return float(acc.var() * 1e4)


def accuracy_range(acc: np.ndarray) -> float:
    """Spread ``max - min`` of per-area accuracies."""
    acc = _check(acc)
    return float(acc.max() - acc.min())


def jain_fairness_index(acc: np.ndarray) -> float:
    """Jain's index ``(Σx)² / (n·Σx²)`` in (0, 1]; 1 means perfectly uniform."""
    acc = _check(acc)
    denom = acc.size * float(acc @ acc)
    if denom == 0.0:
        return 1.0
    return float(acc.sum()) ** 2 / denom


def entropy_of_weights(p: np.ndarray) -> float:
    """Shannon entropy of a weight vector (diagnostic of how peaked ``p`` became)."""
    p = np.asarray(p, dtype=np.float64)
    if p.ndim != 1 or p.size == 0:
        raise ValueError(f"need a nonempty 1-D weight vector, got shape {p.shape}")
    if np.any(p < -1e-12):
        raise ValueError("weights must be nonnegative")
    mass = p[p > 0]
    mass = mass / mass.sum()
    return float(-(mass * np.log(mass)).sum())
