"""Evaluation and fairness metrics, and training-history recording."""

from repro.metrics.evaluation import EvaluationRecord, evaluate_per_edge, evaluate_record
from repro.metrics.fairness import (
    accuracy_range,
    accuracy_variance_x1e4,
    average_accuracy,
    entropy_of_weights,
    jain_fairness_index,
    worst_accuracy,
    worst_fraction_mean,
)
from repro.metrics.history import HistoryPoint, TrainingHistory

__all__ = [
    "EvaluationRecord",
    "evaluate_per_edge",
    "evaluate_record",
    "accuracy_range",
    "accuracy_variance_x1e4",
    "average_accuracy",
    "entropy_of_weights",
    "jain_fairness_index",
    "worst_accuracy",
    "worst_fraction_mean",
    "HistoryPoint",
    "TrainingHistory",
]
