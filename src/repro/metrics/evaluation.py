"""Model evaluation over the federated layout.

The paper reports per-edge-area *test* accuracy (all clients in an area share a
distribution).  :func:`evaluate_per_edge` computes the per-area accuracy/loss of a
parameter vector; :func:`EvaluationRecord` bundles those with the fairness
summaries used in Figs. 3–4 and Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import FederatedDataset
from repro.metrics.fairness import accuracy_variance_x1e4, worst_fraction_mean
from repro.nn.network import NeuralNetwork

__all__ = ["EvaluationRecord", "evaluate_per_edge", "evaluate_record"]


@dataclass(frozen=True)
class EvaluationRecord:
    """Per-edge accuracies plus the fairness summaries derived from them.

    Attributes
    ----------
    per_edge_accuracy / per_edge_loss:
        Arrays of length ``N_E`` over edge-area test sets.
    average_accuracy:
        Mean per-edge accuracy (the paper's "average test accuracy"; edge areas are
        equally sized in every experiment, so edge-mean equals client-mean).
    worst_accuracy:
        Minimum per-edge accuracy.
    worst10_accuracy:
        Mean of the worst 10% of edge areas (the Synthetic row of Table 2).
    variance_x1e4:
        Variance of per-edge accuracies ×10⁴ (Table 2's "Variance" units).
    """

    per_edge_accuracy: np.ndarray
    per_edge_loss: np.ndarray
    average_accuracy: float
    worst_accuracy: float
    worst10_accuracy: float
    variance_x1e4: float
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict form for serialization.

        ``extra`` keys may not collide with the record's own statistics:
        merged last, an ``extra["worst_accuracy"]`` would silently shadow the
        real number in every serialized record downstream.  Collisions raise
        instead of being namespaced so the producer is forced to pick an
        honest key.
        """
        out = {
            "per_edge_accuracy": self.per_edge_accuracy,
            "per_edge_loss": self.per_edge_loss,
            "average_accuracy": self.average_accuracy,
            "worst_accuracy": self.worst_accuracy,
            "worst10_accuracy": self.worst10_accuracy,
            "variance_x1e4": self.variance_x1e4,
        }
        clash = out.keys() & self.extra.keys()
        if clash:
            raise ValueError(
                "EvaluationRecord.extra keys shadow record statistics: "
                f"{sorted(clash)}")
        out.update(self.extra)
        return out


def evaluate_per_edge(engine: NeuralNetwork, w: np.ndarray,
                      dataset: FederatedDataset, *,
                      edge_ids=None) -> tuple[np.ndarray, np.ndarray]:
    """Accuracy and loss of ``w`` on edge-area test sets.

    Side-effect-free: the engine's parameters are restored on exit, so an
    evaluation mid-round can never leak ``w`` into the next training step
    (algorithms share one engine and set its parameters per local-SGD call).

    Parameters
    ----------
    edge_ids:
        Optional evaluation cohort: the edge indices to score (any int
        sequence).  ``None`` (default) scores every edge, byte-identically to
        the pre-cohort code path.  *Estimator note:* statistics over a
        seeded random cohort are unbiased for the population **mean**
        accuracy, but worst-of-cohort is an optimistic (upward-biased)
        estimate of the population worst — with ``m`` of ``N_E`` edges
        sampled, the true worst edge is only in the cohort with probability
        ``m/N_E``.  Fairness trends over a fixed-size cohort remain
        comparable across rounds; absolute worst-case claims need a full
        evaluation pass.  On virtual populations a full pass materializes
        ``N_E`` test sets (transiently, one at a time), never the clients.

    Returns
    -------
    (accuracies, losses):
        Two arrays of length ``dataset.num_edges`` when ``edge_ids`` is None,
        else of length ``len(edge_ids)`` (in ``edge_ids`` order).
    """
    saved = engine.get_params()
    ids = (range(dataset.num_edges) if edge_ids is None
           else [int(e) for e in edge_ids])
    try:
        engine.set_params(w)
        acc = np.empty(len(ids), dtype=np.float64)
        loss = np.empty(len(ids), dtype=np.float64)
        for j, e in enumerate(ids):
            edge = dataset.edges[e]
            test = edge.test
            # One fused forward per edge test set; byte-identical to the old
            # accuracy()-then-loss() double sweep (asserted by the metrics
            # tests) at half the evaluation cost.
            acc[j], loss[j] = engine.accuracy_and_loss(test.X, test.y)
    finally:
        engine.set_params(saved)
    return acc, loss


def evaluate_record(engine: NeuralNetwork, w: np.ndarray,
                    dataset: FederatedDataset, *, edge_ids=None,
                    **extra) -> EvaluationRecord:
    """Full :class:`EvaluationRecord` of ``w`` on ``dataset``.

    When the layout is too small for a true worst-10% statistic
    (``⌊0.10 · N_E⌋ < 1``, i.e. fewer than 10 edge areas),
    :func:`~repro.metrics.fairness.worst_fraction_mean` degrades to the plain
    worst accuracy; the record flags this as ``extra["worst10_degraded"]`` so
    downstream tables do not mislabel the column.

    With ``edge_ids`` the record is computed over that evaluation cohort only
    (flagged as ``extra["eval_edges"]``; see the estimator note on
    :func:`evaluate_per_edge`).
    """
    acc, loss = evaluate_per_edge(engine, w, dataset, edge_ids=edge_ids)
    extra = dict(extra)
    if edge_ids is not None:
        extra.setdefault("eval_edges", [int(e) for e in edge_ids])
    if int(np.floor(0.10 * acc.size)) < 1:
        extra.setdefault("worst10_degraded", True)
    return EvaluationRecord(
        per_edge_accuracy=acc,
        per_edge_loss=loss,
        average_accuracy=float(acc.mean()),
        worst_accuracy=float(acc.min()),
        worst10_accuracy=worst_fraction_mean(acc, 0.10),
        variance_x1e4=accuracy_variance_x1e4(acc),
        extra=extra,
    )
