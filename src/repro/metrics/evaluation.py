"""Model evaluation over the federated layout.

The paper reports per-edge-area *test* accuracy (all clients in an area share a
distribution).  :func:`evaluate_per_edge` computes the per-area accuracy/loss of a
parameter vector; :func:`EvaluationRecord` bundles those with the fairness
summaries used in Figs. 3–4 and Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import FederatedDataset
from repro.metrics.fairness import accuracy_variance_x1e4, worst_fraction_mean
from repro.nn.network import NeuralNetwork

__all__ = ["EvaluationRecord", "evaluate_per_edge", "evaluate_record"]


@dataclass(frozen=True)
class EvaluationRecord:
    """Per-edge accuracies plus the fairness summaries derived from them.

    Attributes
    ----------
    per_edge_accuracy / per_edge_loss:
        Arrays of length ``N_E`` over edge-area test sets.
    average_accuracy:
        Mean per-edge accuracy (the paper's "average test accuracy"; edge areas are
        equally sized in every experiment, so edge-mean equals client-mean).
    worst_accuracy:
        Minimum per-edge accuracy.
    worst10_accuracy:
        Mean of the worst 10% of edge areas (the Synthetic row of Table 2).
    variance_x1e4:
        Variance of per-edge accuracies ×10⁴ (Table 2's "Variance" units).
    """

    per_edge_accuracy: np.ndarray
    per_edge_loss: np.ndarray
    average_accuracy: float
    worst_accuracy: float
    worst10_accuracy: float
    variance_x1e4: float
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict form for serialization."""
        return {
            "per_edge_accuracy": self.per_edge_accuracy,
            "per_edge_loss": self.per_edge_loss,
            "average_accuracy": self.average_accuracy,
            "worst_accuracy": self.worst_accuracy,
            "worst10_accuracy": self.worst10_accuracy,
            "variance_x1e4": self.variance_x1e4,
            **self.extra,
        }


def evaluate_per_edge(engine: NeuralNetwork, w: np.ndarray,
                      dataset: FederatedDataset) -> tuple[np.ndarray, np.ndarray]:
    """Accuracy and loss of ``w`` on every edge area's test set.

    Side-effect-free: the engine's parameters are restored on exit, so an
    evaluation mid-round can never leak ``w`` into the next training step
    (algorithms share one engine and set its parameters per local-SGD call).

    Returns
    -------
    (accuracies, losses):
        Two arrays of length ``dataset.num_edges``.
    """
    saved = engine.get_params()
    try:
        engine.set_params(w)
        acc = np.empty(dataset.num_edges, dtype=np.float64)
        loss = np.empty(dataset.num_edges, dtype=np.float64)
        for e, edge in enumerate(dataset.edges):
            acc[e] = engine.accuracy(edge.test.X, edge.test.y)
            loss[e] = engine.loss(edge.test.X, edge.test.y)
    finally:
        engine.set_params(saved)
    return acc, loss


def evaluate_record(engine: NeuralNetwork, w: np.ndarray,
                    dataset: FederatedDataset, **extra) -> EvaluationRecord:
    """Full :class:`EvaluationRecord` of ``w`` on ``dataset``.

    When the layout is too small for a true worst-10% statistic
    (``⌊0.10 · N_E⌋ < 1``, i.e. fewer than 10 edge areas),
    :func:`~repro.metrics.fairness.worst_fraction_mean` degrades to the plain
    worst accuracy; the record flags this as ``extra["worst10_degraded"]`` so
    downstream tables do not mislabel the column.
    """
    acc, loss = evaluate_per_edge(engine, w, dataset)
    extra = dict(extra)
    if int(np.floor(0.10 * acc.size)) < 1:
        extra.setdefault("worst10_degraded", True)
    return EvaluationRecord(
        per_edge_accuracy=acc,
        per_edge_loss=loss,
        average_accuracy=float(acc.mean()),
        worst_accuracy=float(acc.min()),
        worst10_accuracy=worst_fraction_mean(acc, 0.10),
        variance_x1e4=accuracy_variance_x1e4(acc),
        extra=extra,
    )
