"""Training history: the time series behind every figure.

A :class:`TrainingHistory` accumulates one :class:`HistoryPoint` per evaluation
instant — (round, SGD slots, communication totals, evaluation record, weight
vector) — and answers the queries the paper's evaluation makes of it, most notably
"communication rounds needed to reach X% worst accuracy" (the headline numbers of
§6.1–§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.evaluation import EvaluationRecord
from repro.topology.comm import CommSnapshot

__all__ = ["HistoryPoint", "TrainingHistory", "history_state",
           "history_from_state"]


@dataclass(frozen=True)
class HistoryPoint:
    """One evaluation instant.

    Attributes
    ----------
    round_index:
        Cloud training round ``k`` (0-based; -1 for the pre-training evaluation).
    slots:
        Cumulative training time slots ``t`` (local SGD steps per client).
    comm:
        Communication totals at this instant.
    record:
        The per-edge evaluation at this instant.
    weights:
        Copy of the edge weight vector ``p`` (``None`` for minimization methods).
    sim_time_s:
        Cumulative *simulated* seconds at this instant, from the
        :mod:`repro.simtime` virtual clock (0.0 when no cost model is
        installed — the default).
    """

    round_index: int
    slots: int
    comm: CommSnapshot
    record: EvaluationRecord
    weights: np.ndarray | None = None
    sim_time_s: float = 0.0


class TrainingHistory:
    """Ordered sequence of evaluation points for one algorithm run."""

    def __init__(self, algorithm: str = "") -> None:
        self.algorithm = algorithm
        self.points: list[HistoryPoint] = []

    def append(self, point: HistoryPoint) -> None:
        """Add an evaluation point (rounds must be non-decreasing)."""
        if self.points and point.round_index < self.points[-1].round_index:
            raise ValueError("history rounds must be non-decreasing")
        self.points.append(point)

    def __len__(self) -> int:
        return len(self.points)

    # ------------------------------------------------------------- extraction
    def series(self, field: str, *, comm_measure: str = "edge_cloud_cycles",
               ) -> tuple[np.ndarray, np.ndarray]:
        """(x, y) arrays: communication rounds vs an evaluation field.

        Parameters
        ----------
        field:
            Attribute of :class:`EvaluationRecord`, e.g. ``"worst_accuracy"``.
        comm_measure:
            ``"edge_cloud_cycles"`` (default; the paper's communication-round
            convention — cycles on the cloud-facing link),
            ``"total_cycles"``, ``"total_bytes"``, ``"slots"``, or
            ``"sim_time_s"`` (simulated seconds — the time-to-accuracy axis).
        """
        if not self.points:
            raise ValueError("history is empty")
        y = np.array([getattr(pt.record, field) for pt in self.points], dtype=np.float64)
        x = np.array([self._comm_value(pt, comm_measure) for pt in self.points],
                     dtype=np.float64)
        return x, y

    @staticmethod
    def _comm_value(pt: HistoryPoint, measure: str) -> float:
        if measure == "slots":
            return float(pt.slots)
        if measure == "sim_time_s":
            return float(pt.sim_time_s)
        if measure in ("edge_cloud_cycles", "total_cycles", "total_bytes"):
            return float(getattr(pt.comm, measure))
        raise ValueError(f"unknown comm measure {measure!r}")

    def rounds_to_target(self, field: str, target: float, *,
                         comm_measure: str = "edge_cloud_cycles") -> float | None:
        """Least communication cost at which ``field`` first reaches ``target``.

        Returns ``None`` when the run never reaches the target — the paper's
        "does not reach X% even after N rounds" case.
        """
        x, y = self.series(field, comm_measure=comm_measure)
        hits = np.nonzero(y >= target)[0]
        if hits.size == 0:
            return None
        return float(x[hits[0]])

    def final(self) -> HistoryPoint:
        """The last evaluation point."""
        if not self.points:
            raise ValueError("history is empty")
        return self.points[-1]

    def best(self, field: str = "worst_accuracy") -> HistoryPoint:
        """The evaluation point maximizing ``field``."""
        if not self.points:
            raise ValueError("history is empty")
        values = [getattr(pt.record, field) for pt in self.points]
        return self.points[int(np.argmax(values))]

    def state_dict(self) -> dict:
        """Full lossless state (checkpoints); see :func:`history_from_state`."""
        return history_state(self)

    def as_dict(self) -> dict:
        """Serializable summary (used by the benchmark harness)."""
        return {
            "algorithm": self.algorithm,
            "points": [
                {
                    "round": pt.round_index,
                    "slots": pt.slots,
                    "edge_cloud_cycles": pt.comm.edge_cloud_cycles,
                    "total_cycles": pt.comm.total_cycles,
                    "total_bytes": pt.comm.total_bytes,
                    "average_accuracy": pt.record.average_accuracy,
                    "worst_accuracy": pt.record.worst_accuracy,
                    "worst10_accuracy": pt.record.worst10_accuracy,
                    "variance_x1e4": pt.record.variance_x1e4,
                    "sim_time_s": pt.sim_time_s,
                }
                for pt in self.points
            ],
        }


def history_state(history: TrainingHistory) -> dict:
    """Lossless, serialization-ready form of a history (checkpoint payloads).

    Unlike :meth:`TrainingHistory.as_dict` (a reporting summary), this keeps
    every field — per-edge arrays, full communication snapshots, weight
    vectors — so :func:`history_from_state` reconstructs the history exactly.
    """
    return {
        "algorithm": history.algorithm,
        "points": [
            {
                "round_index": pt.round_index,
                "slots": pt.slots,
                "comm": {"cycles": dict(pt.comm.cycles),
                         "messages": dict(pt.comm.messages),
                         "floats": dict(pt.comm.floats)},
                "record": pt.record.as_dict() if not pt.record.extra
                else {**pt.record.as_dict(), "__extra_keys__":
                      sorted(pt.record.extra)},
                "weights": pt.weights,
                "sim_time_s": pt.sim_time_s,
            }
            for pt in history.points
        ],
    }


def history_from_state(state: dict) -> TrainingHistory:
    """Inverse of :func:`history_state` (after a serialization round-trip)."""
    history = TrainingHistory(str(state.get("algorithm", "")))
    for raw in state.get("points", []):
        comm = raw["comm"]
        record_fields = dict(raw["record"])
        extra_keys = record_fields.pop("__extra_keys__", [])
        extra = {k: record_fields.pop(k) for k in extra_keys}
        record = EvaluationRecord(
            per_edge_accuracy=np.asarray(record_fields["per_edge_accuracy"],
                                         dtype=np.float64),
            per_edge_loss=np.asarray(record_fields["per_edge_loss"],
                                     dtype=np.float64),
            average_accuracy=float(record_fields["average_accuracy"]),
            worst_accuracy=float(record_fields["worst_accuracy"]),
            worst10_accuracy=float(record_fields["worst10_accuracy"]),
            variance_x1e4=float(record_fields["variance_x1e4"]),
            extra=extra,
        )
        weights = raw.get("weights")
        history.append(HistoryPoint(
            round_index=int(raw["round_index"]),
            slots=int(raw["slots"]),
            comm=CommSnapshot(
                cycles={k: int(v) for k, v in comm["cycles"].items()},
                messages={k: int(v) for k, v in comm["messages"].items()},
                floats={k: float(v) for k, v in comm["floats"].items()}),
            record=record,
            weights=None if weights is None
            else np.asarray(weights, dtype=np.float64),
            sim_time_s=float(raw.get("sim_time_s", 0.0)),
        ))
    return history
