"""Minibatch sampling for client-side SGD.

Each client owns a :class:`MinibatchSampler` over its local shard.  The sampler
cycles through random epoch permutations (sampling without replacement within an
epoch, the standard SGD regime) and exposes :meth:`next_batch` for the inner loop of
Eq. (4).  Batches smaller than the shard wrap across epoch boundaries so every call
returns exactly ``batch_size`` rows; a boundary-spanning batch may therefore contain
a sample twice (the old epoch's tail plus the new epoch's head).  Per-sample usage
counts still never differ by more than 1 at any instant, since each epoch uses each
sample exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["MinibatchSampler"]


class MinibatchSampler:
    """Infinite shuffled-epoch minibatch stream over one dataset.

    Parameters
    ----------
    dataset:
        The local shard.
    batch_size:
        Rows per batch; the paper uses 1 (convex runs) and 8 (non-convex runs).
        Clamped to the shard size.
    rng:
        Client-local generator; consumed on every reshuffle and batch draw.
    """

    def __init__(self, dataset: Dataset, batch_size: int,
                 rng: np.random.Generator) -> None:
        if len(dataset) == 0:
            raise ValueError("cannot sample minibatches from an empty dataset")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = min(int(batch_size), len(dataset))
        self._rng = rng
        self._order = rng.permutation(len(dataset))
        self._cursor = 0
        self.batches_drawn = 0

    def next_batch(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the next (X, y) minibatch of exactly ``batch_size`` rows."""
        n = len(self.dataset)
        take: list[np.ndarray] = []
        need = self.batch_size
        while need > 0:
            available = n - self._cursor
            if available == 0:
                self._order = self._rng.permutation(n)
                self._cursor = 0
                available = n
            step = min(need, available)
            take.append(self._order[self._cursor:self._cursor + step])
            self._cursor += step
            need -= step
        idx = take[0] if len(take) == 1 else np.concatenate(take)
        self.batches_drawn += 1
        return self.dataset.X[idx], self.dataset.y[idx]

    def __iter__(self):
        while True:
            yield self.next_batch()
