"""Federated partitioners: from pooled data to the client-edge-cloud layout.

The paper creates heterogeneity in two ways, both implemented here:

* :func:`partition_one_class_per_edge` — §6.1 / Table 2: each edge area's clients
  hold a single (distinct) class of the training data.
* :func:`partition_similarity` — §6.2: for ``s%`` similarity, each edge area gets
  ``s%`` i.i.d. data and the remaining ``(100-s)%`` sorted by label (Karimireddy
  et al., SCAFFOLD).

Two further partitioners support tests and extensions:

* :func:`partition_iid` — the homogeneous control case;
* :func:`partition_dirichlet` — Dirichlet(label-skew) heterogeneity, the common
  knob in the broader FL literature.

Each edge area's *test* set is constructed to match the label distribution of that
area's training data, because the paper reports per-edge-area test accuracy on the
area's own distribution.  :func:`federated_from_group_pools` assembles the layout
directly from per-group pools (the Adult and Synthetic rows of Table 2).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset, EdgeAreaData, FederatedDataset

__all__ = [
    "partition_one_class_per_edge",
    "partition_similarity",
    "partition_iid",
    "partition_dirichlet",
    "federated_from_group_pools",
    "split_evenly",
    "stratified_test_subset",
]


def split_evenly(dataset: Dataset, parts: int, rng: np.random.Generator | None = None,
                 ) -> list[Dataset]:
    """Split ``dataset`` into ``parts`` shards of (near-)equal size.

    Rows are shuffled first when ``rng`` is provided.  Every shard is guaranteed
    non-empty, so ``parts`` must not exceed ``len(dataset)``.
    """
    n = len(dataset)
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if parts > n:
        raise ValueError(f"cannot split {n} samples into {parts} non-empty shards")
    order = rng.permutation(n) if rng is not None else np.arange(n)
    chunks = np.array_split(order, parts)
    return [dataset.subset(chunk) for chunk in chunks]


def stratified_test_subset(test_pool: Dataset, label_histogram: np.ndarray,
                           n_test: int, rng: np.random.Generator) -> Dataset:
    """Draw a test set of ~``n_test`` rows whose label mix matches ``label_histogram``.

    Sampling per class is without replacement, capped at the pool's availability.
    """
    hist = np.asarray(label_histogram, dtype=np.float64)
    if hist.ndim != 1 or hist.shape[0] != test_pool.num_classes:
        raise ValueError(
            f"label_histogram must have length {test_pool.num_classes}, got {hist.shape}")
    if hist.sum() <= 0:
        raise ValueError("label_histogram must have positive mass")
    if n_test < 1:
        raise ValueError(f"n_test must be >= 1, got {n_test}")
    target = hist / hist.sum()
    picks: list[np.ndarray] = []
    for c in range(test_pool.num_classes):
        want = int(round(target[c] * n_test))
        if want == 0:
            continue
        available = np.nonzero(test_pool.y == c)[0]
        if available.size == 0:
            raise ValueError(f"test pool has no samples of class {c} but the edge "
                             "area's distribution requires them")
        take = min(want, available.size)
        picks.append(rng.choice(available, size=take, replace=False))
    if not picks:
        raise ValueError("empty test selection; check the label histogram")
    return test_pool.subset(np.concatenate(picks))


def _edge_from_train(train: Dataset, test_pool: Dataset, clients_per_edge: int,
                     n_test: int, rng: np.random.Generator, name: str) -> EdgeAreaData:
    """Build one edge area: split train across clients, match test distribution."""
    clients = split_evenly(train, clients_per_edge, rng)
    test = stratified_test_subset(test_pool, train.class_counts(), n_test, rng)
    return EdgeAreaData(clients, test, name=name)


def partition_one_class_per_edge(train_pool: Dataset, test_pool: Dataset, *,
                                 num_edges: int, clients_per_edge: int,
                                 rng: np.random.Generator,
                                 n_test_per_edge: int | None = None,
                                 ) -> FederatedDataset:
    """Assign classes to edge areas round-robin; each area's clients hold only them.

    With ``num_edges == num_classes`` (the paper's Fig. 3 setup: 10 and 10) every
    edge area holds exactly one distinct class.
    """
    C = train_pool.num_classes
    if num_edges < 1 or clients_per_edge < 1:
        raise ValueError("num_edges and clients_per_edge must be >= 1")
    if num_edges > C:
        raise ValueError(
            f"one-class-per-edge needs num_edges <= num_classes ({num_edges} > {C})")
    n_test = n_test_per_edge if n_test_per_edge is not None else max(
        1, len(test_pool) // num_edges)
    edges: list[EdgeAreaData] = []
    for e in range(num_edges):
        classes = [c for c in range(C) if c % num_edges == e]
        mask = np.isin(train_pool.y, classes)
        train = train_pool.subset(np.nonzero(mask)[0])
        if len(train) < clients_per_edge:
            raise ValueError(
                f"edge {e} (classes {classes}) has only {len(train)} train samples "
                f"for {clients_per_edge} clients")
        edges.append(_edge_from_train(train, test_pool, clients_per_edge, n_test, rng,
                                      name=f"classes={classes}"))
    return FederatedDataset(edges, name="one_class_per_edge")


def _share_splits(indices: np.ndarray, shares: np.ndarray) -> list[np.ndarray]:
    """Split ``indices`` into consecutive chunks sized proportionally to ``shares``."""
    cuts = np.floor(np.cumsum(shares)[:-1] * indices.size).astype(np.intp)
    return np.split(indices, cuts)


def partition_similarity(train_pool: Dataset, test_pool: Dataset, *,
                         num_edges: int, clients_per_edge: int, similarity: float,
                         rng: np.random.Generator,
                         n_test_per_edge: int | None = None,
                         edge_shares: np.ndarray | None = None) -> FederatedDataset:
    """The s%-similarity split of SCAFFOLD used in §6.2 (the paper uses s = 0.5).

    A fraction ``similarity`` of the pool is dealt i.i.d. to the edge areas; the
    remainder is sorted by label and dealt in contiguous chunks, giving each area a
    distinct label skew.

    ``edge_shares`` (optional, nonnegative, summing to ~1) makes the *training*
    data volume unequal across edge areas while test sets stay equal-sized — the
    paper's motivating mismatch between training data ratios and the distribution
    "of the unseen data in reality" (§1).  Under data-weighted minimization the
    small areas are underserved; minimax reweighting compensates.
    """
    if not 0.0 <= similarity <= 1.0:
        raise ValueError(f"similarity must be in [0, 1], got {similarity}")
    if num_edges < 1 or clients_per_edge < 1:
        raise ValueError("num_edges and clients_per_edge must be >= 1")
    n = len(train_pool)
    if n < num_edges * clients_per_edge:
        raise ValueError(f"{n} samples cannot cover {num_edges}x{clients_per_edge} clients")
    if edge_shares is None:
        shares = np.full(num_edges, 1.0 / num_edges)
    else:
        shares = np.asarray(edge_shares, dtype=np.float64)
        if shares.shape != (num_edges,):
            raise ValueError(
                f"edge_shares must have length {num_edges}, got {shares.shape}")
        if np.any(shares <= 0):
            raise ValueError("edge_shares must be strictly positive")
        shares = shares / shares.sum()
    perm = rng.permutation(n)
    n_iid = int(round(similarity * n))
    iid_part, skew_part = perm[:n_iid], perm[n_iid:]
    # Sort the skewed remainder by label; contiguous chunks then concentrate labels.
    skew_sorted = skew_part[np.argsort(train_pool.y[skew_part], kind="stable")]
    iid_chunks = _share_splits(iid_part, shares)
    skew_chunks = _share_splits(skew_sorted, shares)
    n_test = n_test_per_edge if n_test_per_edge is not None else max(
        1, len(test_pool) // num_edges)
    edges = []
    for e in range(num_edges):
        idx = np.concatenate([iid_chunks[e], skew_chunks[e]])
        if idx.size < clients_per_edge:
            raise ValueError(f"edge {e} received {idx.size} samples "
                             f"< {clients_per_edge} clients")
        train = train_pool.subset(idx)
        edges.append(_edge_from_train(train, test_pool, clients_per_edge, n_test, rng,
                                      name=f"similarity={similarity:g}"))
    return FederatedDataset(edges, name=f"similarity_{similarity:g}")


def partition_iid(train_pool: Dataset, test_pool: Dataset, *,
                  num_edges: int, clients_per_edge: int, rng: np.random.Generator,
                  n_test_per_edge: int | None = None) -> FederatedDataset:
    """Homogeneous control: every edge area receives an i.i.d. share of the pool."""
    return partition_similarity(train_pool, test_pool, num_edges=num_edges,
                                clients_per_edge=clients_per_edge, similarity=1.0,
                                rng=rng, n_test_per_edge=n_test_per_edge)


def partition_dirichlet(train_pool: Dataset, test_pool: Dataset, *,
                        num_edges: int, clients_per_edge: int, concentration: float,
                        rng: np.random.Generator,
                        n_test_per_edge: int | None = None) -> FederatedDataset:
    """Label-skew via per-class Dirichlet allocation across edge areas.

    Smaller ``concentration`` means more heterogeneity.  Not used by the paper's
    experiments but standard in the FL literature; exercised by the ablations.
    """
    if concentration <= 0:
        raise ValueError(f"concentration must be positive, got {concentration}")
    if num_edges < 1 or clients_per_edge < 1:
        raise ValueError("num_edges and clients_per_edge must be >= 1")
    C = train_pool.num_classes
    assignments: list[list[np.ndarray]] = [[] for _ in range(num_edges)]
    for c in range(C):
        idx = np.nonzero(train_pool.y == c)[0]
        idx = rng.permutation(idx)
        shares = rng.dirichlet(np.full(num_edges, concentration))
        cuts = np.floor(np.cumsum(shares)[:-1] * idx.size).astype(np.intp)
        for e, part in enumerate(np.split(idx, cuts)):
            if part.size:
                assignments[e].append(part)
    n_test = n_test_per_edge if n_test_per_edge is not None else max(
        1, len(test_pool) // num_edges)
    edges = []
    for e in range(num_edges):
        if not assignments[e]:
            raise ValueError(f"edge {e} received no samples; increase pool size or "
                             "concentration")
        idx = np.concatenate(assignments[e])
        if idx.size < clients_per_edge:
            raise ValueError(f"edge {e} received {idx.size} samples "
                             f"< {clients_per_edge} clients")
        train = train_pool.subset(idx)
        edges.append(_edge_from_train(train, test_pool, clients_per_edge, n_test, rng,
                                      name=f"dirichlet={concentration:g}"))
    return FederatedDataset(edges, name=f"dirichlet_{concentration:g}")


def federated_from_group_pools(train_pools: list[Dataset], test_sets: list[Dataset], *,
                               clients_per_edge: int, rng: np.random.Generator,
                               name: str = "groups") -> FederatedDataset:
    """Assemble a federated layout where each group pool becomes one edge area.

    Used for the Adult (2 groups) and Synthetic (100 devices) rows of Table 2.
    """
    if len(train_pools) != len(test_sets):
        raise ValueError(f"got {len(train_pools)} train pools but {len(test_sets)} "
                         "test sets")
    if not train_pools:
        raise ValueError("need at least one group")
    edges = []
    for e, (train, test) in enumerate(zip(train_pools, test_sets)):
        per_edge = min(clients_per_edge, len(train))
        clients = split_evenly(train, per_edge, rng)
        edges.append(EdgeAreaData(clients, test, name=f"group{e}"))
    return FederatedDataset(edges, name=name)
