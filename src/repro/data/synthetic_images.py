"""Class-conditional synthetic image generators (MNIST / EMNIST / Fashion stand-ins).

The evaluation datasets of the paper (EMNIST-Digits, MNIST, Fashion-MNIST) cannot be
downloaded in this offline environment, so we generate image-like data with the same
interface and — for the purposes of the experiments — the same *relevant structure*:

* ``C`` classes of ``side × side`` grayscale images in [0, 1];
* each class is a smooth random prototype (a low-resolution random field upsampled
  bilinearly, thresholded into stroke-like bright regions);
* each sample perturbs its class prototype with a random sub-pixel translation, a
  multiplicative intensity jitter, an *instance-specific* smooth deformation field,
  and additive pixel noise;
* a single ``difficulty`` scalar controls class overlap, calibrated so a linear
  model reaches roughly the paper's accuracy ladder
  (MNIST ≈ easiest < EMNIST-Digits < Fashion-MNIST ≈ hardest).

What the experiments exercise is label-skew heterogeneity across edge areas on a
multi-class problem of a given difficulty — exactly what these generators provide.
See DESIGN.md §1 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset

__all__ = [
    "ImageGeneratorSpec",
    "SyntheticImageGenerator",
    "MNIST_LIKE",
    "EMNIST_DIGITS_LIKE",
    "FASHION_MNIST_LIKE",
    "make_image_dataset",
    "resized_spec",
]


@dataclass(frozen=True)
class ImageGeneratorSpec:
    """Tunable knobs of a synthetic image family.

    Attributes
    ----------
    name:
        Family label, e.g. ``"mnist_like"``.
    num_classes:
        Number of classes ``C``.
    side:
        Image side length (images are ``side*side`` flattened features).
    grid:
        Resolution of the low-frequency random field behind each prototype; smaller
        values give blobbier, more distinct prototypes.
    deform_scale:
        Amplitude of the per-sample smooth deformation (class overlap knob #1).
    pixel_noise:
        Std of additive i.i.d. pixel noise (class overlap knob #2).
    intensity_jitter:
        Multiplicative brightness jitter std.
    max_shift:
        Maximum absolute translation (pixels) applied per sample.
    prototype_seed:
        Extra seed offset so that different families have unrelated prototypes.
    class_difficulty_spread:
        Asymmetry of per-class difficulty in [0, 1): class ``c`` has its
        deformation and pixel noise multiplied by a factor ramping linearly from
        ``1 - spread`` (class 0) to ``1 + spread`` (class C-1).  Real image
        datasets have intrinsically unequal class difficulty (some digits/garments
        confuse more), which is the asymmetry minimax fairness exploits; a spread
        of 0 gives fully symmetric classes.
    max_modes:
        Maximum number of prototype *modes* per class (>= 1).  Class ``c`` has
        ``1 + floor(c/(C-1) · (max_modes-1))`` modes, each an independent smooth
        prototype, and samples draw a mode uniformly.  Multi-modal classes need
        more model capacity / more effective training weight to fit — a
        *capacity-driven* difficulty asymmetry (in contrast to the noise-driven
        ``class_difficulty_spread``), which is what lets minimax reweighting
        actually raise the hard classes' accuracy in the non-convex experiments.
    """

    name: str
    num_classes: int = 10
    side: int = 28
    grid: int = 7
    deform_scale: float = 0.35
    pixel_noise: float = 0.12
    intensity_jitter: float = 0.10
    max_shift: int = 2
    prototype_seed: int = 0
    class_difficulty_spread: float = 0.0
    max_modes: int = 1

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError(f"need >= 2 classes, got {self.num_classes}")
        if self.side < 4:
            raise ValueError(f"side must be >= 4, got {self.side}")
        if not 2 <= self.grid <= self.side:
            raise ValueError(f"grid must be in [2, side], got {self.grid}")
        if self.pixel_noise < 0 or self.deform_scale < 0 or self.intensity_jitter < 0:
            raise ValueError("noise scales must be nonnegative")
        if self.max_shift < 0 or self.max_shift >= self.side // 2:
            raise ValueError(f"max_shift must be in [0, side/2), got {self.max_shift}")
        if not 0.0 <= self.class_difficulty_spread < 1.0:
            raise ValueError(
                f"class_difficulty_spread must be in [0, 1), got "
                f"{self.class_difficulty_spread}")
        if self.max_modes < 1:
            raise ValueError(f"max_modes must be >= 1, got {self.max_modes}")

    def class_mode_count(self, label: int) -> int:
        """Number of prototype modes of class ``label`` (ramping to max_modes)."""
        if not 0 <= label < self.num_classes:
            raise ValueError(f"label {label} out of range [0, {self.num_classes})")
        if self.max_modes == 1 or self.num_classes == 1:
            return 1
        ramp = label / (self.num_classes - 1)
        return 1 + int(ramp * (self.max_modes - 1))

    def class_noise_factor(self, label: int) -> float:
        """The difficulty multiplier of class ``label`` (see the attribute docs)."""
        if not 0 <= label < self.num_classes:
            raise ValueError(f"label {label} out of range [0, {self.num_classes})")
        if self.num_classes == 1 or self.class_difficulty_spread == 0.0:
            return 1.0
        ramp = 2.0 * label / (self.num_classes - 1) - 1.0  # in [-1, 1]
        return 1.0 + self.class_difficulty_spread * ramp


# Calibrated so linear-model accuracy ranks mnist > emnist-digits > fashion, in the
# spirit of the real datasets' difficulty ordering in the paper's Table 2.
MNIST_LIKE = ImageGeneratorSpec(
    name="mnist_like", deform_scale=0.55, pixel_noise=0.22, prototype_seed=11,
    class_difficulty_spread=0.35)
EMNIST_DIGITS_LIKE = ImageGeneratorSpec(
    name="emnist_digits_like", deform_scale=0.65, pixel_noise=0.26, prototype_seed=23,
    class_difficulty_spread=0.5)
FASHION_MNIST_LIKE = ImageGeneratorSpec(
    name="fashion_mnist_like", deform_scale=0.50, pixel_noise=0.16,
    prototype_seed=37, class_difficulty_spread=0.2, max_modes=6)


def _upsample_bilinear(field: np.ndarray, side: int) -> np.ndarray:
    """Bilinearly upsample a (g, g) field to (side, side) — vectorized."""
    g = field.shape[0]
    # Sample positions in field coordinates.
    pos = np.linspace(0.0, g - 1.0, side)
    i0 = np.floor(pos).astype(np.intp)
    i1 = np.minimum(i0 + 1, g - 1)
    frac = pos - i0
    # Interpolate rows then columns via outer-product weights.
    rows = field[i0] * (1.0 - frac)[:, None] + field[i1] * frac[:, None]
    out = rows[:, i0] * (1.0 - frac)[None, :] + rows[:, i1] * frac[None, :]
    return out


def _smooth_field(rng: np.random.Generator, grid: int, side: int) -> np.ndarray:
    """A zero-mean smooth random field on (side, side)."""
    coarse = rng.normal(size=(grid, grid))
    return _upsample_bilinear(coarse, side)


class SyntheticImageGenerator:
    """Generator of one synthetic image family.

    Prototypes are fixed by ``spec.prototype_seed``; sampling takes an explicit
    generator so different consumers (train vs test pools, different edge areas)
    draw independent samples from identical class-conditional distributions.
    """

    def __init__(self, spec: ImageGeneratorSpec) -> None:
        self.spec = spec
        proto_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=spec.prototype_seed,
                                   spawn_key=(0xB10B,)))
        side, C = spec.side, spec.num_classes
        # One list of mode prototypes per class (hard classes have several).
        self._prototypes: list[np.ndarray] = []
        for c in range(C):
            modes = spec.class_mode_count(c)
            bank = np.empty((modes, side, side), dtype=np.float64)
            for m in range(modes):
                field = _smooth_field(proto_rng, spec.grid, side)
                # Threshold into bright stroke-like regions on dark background.
                bank[m] = 1.0 / (1.0 + np.exp(-4.0 * (field - 0.3)))
            self._prototypes.append(bank)

    @property
    def input_dim(self) -> int:
        """Flattened feature dimension (side*side)."""
        return self.spec.side * self.spec.side

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    def prototypes(self) -> np.ndarray:
        """Copy of the primary (first-mode) prototype of each class, (C, side, side)."""
        return np.stack([bank[0] for bank in self._prototypes])

    def prototype_bank(self, label: int) -> np.ndarray:
        """All prototype modes of one class, shape (modes, side, side) (copy)."""
        if not 0 <= label < self.spec.num_classes:
            raise ValueError(
                f"label {label} out of range [0, {self.spec.num_classes})")
        return self._prototypes[label].copy()

    def sample_class(self, label: int, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` flattened samples of class ``label``; shape (n, side*side)."""
        spec = self.spec
        if not 0 <= label < spec.num_classes:
            raise ValueError(f"label {label} out of range [0, {spec.num_classes})")
        if n < 0:
            raise ValueError(f"cannot draw {n} samples")
        side = spec.side
        factor = spec.class_noise_factor(label)
        out = np.empty((n, side, side), dtype=np.float64)
        bank = self._prototypes[label]
        modes = rng.integers(0, bank.shape[0], size=n)
        shifts = rng.integers(-spec.max_shift, spec.max_shift + 1, size=(n, 2))
        gains = 1.0 + spec.intensity_jitter * rng.normal(size=n)
        deform = spec.deform_scale * factor
        for i in range(n):
            img = np.roll(bank[modes[i]], shift=tuple(shifts[i]), axis=(0, 1))
            if deform > 0:
                img = img + deform * _smooth_field(rng, spec.grid, side)
            out[i] = gains[i] * img
        if spec.pixel_noise > 0:
            out += spec.pixel_noise * factor * rng.normal(size=out.shape)
        np.clip(out, 0.0, 1.0, out=out)
        return out.reshape(n, side * side)

    def sample(self, labels: np.ndarray, rng: np.random.Generator) -> Dataset:
        """Draw one sample per entry of ``labels``; returns a :class:`Dataset`.

        Samples are generated class-by-class (vectorized within a class) and then
        restored to the requested label order.
        """
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
        X = np.empty((labels.shape[0], self.input_dim), dtype=np.float64)
        for c in range(self.spec.num_classes):
            idx = np.nonzero(labels == c)[0]
            if idx.size:
                X[idx] = self.sample_class(c, idx.size, rng)
        return Dataset(X, labels, self.spec.num_classes)

    def balanced_dataset(self, n_per_class: int, rng: np.random.Generator) -> Dataset:
        """A class-balanced dataset with ``n_per_class`` samples of each class."""
        if n_per_class < 1:
            raise ValueError(f"n_per_class must be >= 1, got {n_per_class}")
        labels = np.repeat(np.arange(self.spec.num_classes), n_per_class)
        return self.sample(labels, rng)


_FAMILIES = {
    "mnist_like": MNIST_LIKE,
    "emnist_digits_like": EMNIST_DIGITS_LIKE,
    "fashion_mnist_like": FASHION_MNIST_LIKE,
}


def _difficulty_factor(side: int) -> float:
    """Noise rescaling that keeps linear-model accuracy roughly side-independent.

    Small images lose the noise-averaging benefit of high dimension, so the same
    deformation/noise amplitudes make an 8×8 task far harder than a 28×28 one.
    Factors calibrated empirically (see tests/test_synthetic_images.py):
    1.0 at side >= 12, 0.5 at side 8, linear in between.
    """
    if side >= 12:
        return 1.0
    if side <= 8:
        return 0.5
    return 0.5 + 0.5 * (side - 8) / 4.0


def resized_spec(spec: ImageGeneratorSpec, side: int) -> ImageGeneratorSpec:
    """A family spec re-targeted at image size ``side`` with matched difficulty."""
    factor = _difficulty_factor(side)
    grid = min(spec.grid, side)
    max_shift = 2 if side >= 20 else 1
    max_shift = min(max_shift, max(0, side // 2 - 1))
    return ImageGeneratorSpec(
        name=spec.name, num_classes=spec.num_classes, side=side, grid=grid,
        deform_scale=spec.deform_scale * factor,
        pixel_noise=spec.pixel_noise * factor,
        intensity_jitter=spec.intensity_jitter, max_shift=max_shift,
        prototype_seed=spec.prototype_seed,
        class_difficulty_spread=spec.class_difficulty_spread,
        max_modes=spec.max_modes)


def make_image_dataset(family: str, n_per_class: int, rng: np.random.Generator, *,
                       side: int | None = None) -> Dataset:
    """Build a balanced pool from a named family, optionally at reduced resolution.

    ``side`` overrides the family's image size — the CI presets use 12×12 or 8×8
    images to keep benches fast while preserving the experiments' structure; the
    per-family difficulty (linear-model accuracy) is held approximately constant
    across sizes via :func:`resized_spec`.
    """
    if family not in _FAMILIES:
        raise ValueError(f"unknown image family {family!r}; options: {sorted(_FAMILIES)}")
    spec = _FAMILIES[family]
    if side is not None and side != spec.side:
        spec = resized_spec(spec, side)
    return SyntheticImageGenerator(spec).balanced_dataset(n_per_class, rng)
