"""Synthetic Adult-like census data with a Doctorate / non-Doctorate group split.

Table 2 of the paper uses the UCI Adult dataset with **two edge areas**: one holding
Doctorate records, the other non-Doctorate, training a logistic-regression income
classifier on categorical features.  This module generates data with exactly that
structure (no network access is available to fetch UCI):

* categorical features (work class, marital status, occupation, relationship, sex,
  age bucket, hours bucket) drawn from group-conditional distributions,
* binary income labels produced by a logistic ground-truth model whose coefficients
  receive a group-dependent shift — so the two groups genuinely have different
  conditional label distributions, the source of the fairness gap the paper reports.

Features are one-hot encoded; the generator is deterministic given the RNG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["AdultLikeSpec", "AdultLikeGenerator", "make_adult_groups"]

# Cardinalities of the categorical fields (loosely matching UCI Adult).
_FIELDS: tuple[tuple[str, int], ...] = (
    ("workclass", 7),
    ("marital_status", 5),
    ("occupation", 12),
    ("relationship", 6),
    ("sex", 2),
    ("age_bucket", 8),
    ("hours_bucket", 5),
)


@dataclass(frozen=True)
class AdultLikeSpec:
    """Parameters of the Adult-like generator.

    Attributes
    ----------
    group_shift:
        Scale of the group-dependent coefficient shift between Doctorate and
        non-Doctorate populations — the heterogeneity knob.
    base_rate_doctorate / base_rate_other:
        Intercepts controlling the income-positive rates of the two groups
        (Doctorate earners skew high-income in UCI Adult).
    noise:
        Std of the logit noise (label difficulty).
    seed:
        Seed of the ground-truth model (distinct from the sampling RNG).
    """

    group_shift: float = 3.0
    base_rate_doctorate: float = 1.6
    base_rate_other: float = -1.2
    noise: float = 1.0
    coef_scale: float = 0.5
    doctorate_fraction: float = 0.12
    seed: int = 7
    fields: tuple[tuple[str, int], ...] = field(default=_FIELDS)

    def __post_init__(self) -> None:
        if self.group_shift < 0 or self.noise < 0:
            raise ValueError("group_shift and noise must be nonnegative")
        if not 0.0 < self.doctorate_fraction <= 1.0:
            raise ValueError(
                f"doctorate_fraction must be in (0, 1], got {self.doctorate_fraction}")
        if not self.fields:
            raise ValueError("need at least one categorical field")


class AdultLikeGenerator:
    """Samples one-hot-encoded census-like records for the two education groups."""

    def __init__(self, spec: AdultLikeSpec | None = None) -> None:
        self.spec = spec if spec is not None else AdultLikeSpec()
        truth_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.spec.seed, spawn_key=(0xAD01,)))
        self._cards = [card for _, card in self.spec.fields]
        self._dim = sum(self._cards)
        # Shared ground-truth coefficients plus a per-group shift.
        self._coef_common = truth_rng.normal(0.0, self.spec.coef_scale,
                                             size=self._dim)
        shift_direction = truth_rng.normal(0.0, 1.0, size=self._dim)
        shift_direction /= np.linalg.norm(shift_direction)
        self._coef_shift = self.spec.group_shift * shift_direction
        # Group-conditional category preferences: Dirichlet-distributed marginals.
        self._marginals: dict[bool, list[np.ndarray]] = {}
        for is_doctorate in (False, True):
            self._marginals[is_doctorate] = [
                truth_rng.dirichlet(np.full(card, 0.8 if is_doctorate else 1.2))
                for card in self._cards
            ]

    @property
    def input_dim(self) -> int:
        """One-hot feature dimension."""
        return self._dim

    def sample_group(self, is_doctorate: bool, n: int,
                     rng: np.random.Generator) -> Dataset:
        """Draw ``n`` records of one education group; returns a binary Dataset."""
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        X = np.zeros((n, self._dim), dtype=np.float64)
        offset = 0
        for card, marginal in zip(self._cards, self._marginals[bool(is_doctorate)]):
            cats = rng.choice(card, size=n, p=marginal)
            X[np.arange(n), offset + cats] = 1.0
            offset += card
        coef = self._coef_common + (self._coef_shift if is_doctorate
                                    else -self._coef_shift)
        intercept = (self.spec.base_rate_doctorate if is_doctorate
                     else self.spec.base_rate_other)
        logits = X @ coef + intercept + self.spec.noise * rng.normal(size=n)
        y = (logits > 0).astype(np.int64)
        return Dataset(X, y, num_classes=2)


def make_adult_groups(n_train_per_group: int, n_test_per_group: int,
                      rng: np.random.Generator, *,
                      spec: AdultLikeSpec | None = None,
                      ) -> tuple[list[Dataset], list[Dataset]]:
    """Build ([train_doctorate, train_other], [test_doctorate, test_other]).

    The Doctorate group's *training* pool holds only ``spec.doctorate_fraction``
    of ``n_train_per_group`` samples (min 30), mirroring UCI Adult where advanced
    degrees are a small minority — the scarcity that makes the group worst-off
    under data-weighted minimization.  Test sets are equal-sized per group.
    """
    spec = spec if spec is not None else AdultLikeSpec()
    gen = AdultLikeGenerator(spec)
    n_doc = max(30, int(round(spec.doctorate_fraction * n_train_per_group)))
    trains = [gen.sample_group(True, n_doc, rng),
              gen.sample_group(False, n_train_per_group, rng)]
    tests = [gen.sample_group(is_doc, n_test_per_group, rng) for is_doc in (True, False)]
    return trains, tests
