"""Dataset containers for federated simulation.

:class:`Dataset` is an immutable-by-convention (features, labels) pair.
:class:`EdgeAreaData` groups the client shards and the test set of one edge area —
the paper assumes all clients in an edge area share a distribution (§3), so the test
set lives at the edge-area level.  :class:`FederatedDataset` is the full three-layer
data layout consumed by every algorithm in this library.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["Dataset", "EdgeAreaData", "FederatedDataset", "concat_datasets"]


class Dataset:
    """A supervised dataset: features ``X`` (n, d) and integer labels ``y`` (n,)."""

    __slots__ = ("X", "y", "num_classes")

    def __init__(self, X: np.ndarray, y: np.ndarray, num_classes: int) -> None:
        X = np.ascontiguousarray(X, dtype=np.float64)
        y = np.ascontiguousarray(y, dtype=np.int64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D (n, d), got shape {X.shape}")
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise ValueError(f"y must be (n,) matching X {X.shape}, got {y.shape}")
        if num_classes < 1:
            raise ValueError(f"num_classes must be >= 1, got {num_classes}")
        if y.size and (y.min() < 0 or y.max() >= num_classes):
            raise ValueError(
                f"labels out of range [0, {num_classes}): [{y.min()}, {y.max()}]")
        self.X = X
        self.y = y
        self.num_classes = int(num_classes)

    def __len__(self) -> int:
        return self.X.shape[0]

    @property
    def input_dim(self) -> int:
        """Feature dimension ``d``."""
        return self.X.shape[1]

    def subset(self, indices: np.ndarray) -> "Dataset":
        """New dataset holding the rows selected by ``indices`` (copies)."""
        indices = np.asarray(indices, dtype=np.intp)
        return Dataset(self.X[indices], self.y[indices], self.num_classes)

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        """Row-permuted copy."""
        perm = rng.permutation(len(self))
        return self.subset(perm)

    def split(self, fraction: float, rng: np.random.Generator | None = None,
              ) -> tuple["Dataset", "Dataset"]:
        """Split into (first, second) with ``fraction`` of rows in the first part.

        When ``rng`` is given, rows are shuffled before splitting.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        n = len(self)
        order = rng.permutation(n) if rng is not None else np.arange(n)
        cut = int(round(fraction * n))
        cut = max(1, min(n - 1, cut))
        return self.subset(order[:cut]), self.subset(order[cut:])

    def class_counts(self) -> np.ndarray:
        """Histogram of labels, length ``num_classes``."""
        return np.bincount(self.y, minlength=self.num_classes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Dataset(n={len(self)}, d={self.input_dim}, "
                f"classes={self.num_classes})")


def concat_datasets(datasets: Sequence[Dataset]) -> Dataset:
    """Concatenate datasets with matching dims/classes into one."""
    if not datasets:
        raise ValueError("need at least one dataset to concatenate")
    num_classes = datasets[0].num_classes
    input_dim = datasets[0].input_dim
    for ds in datasets[1:]:
        if ds.num_classes != num_classes or ds.input_dim != input_dim:
            raise ValueError("datasets have incompatible shapes or class counts")
    return Dataset(np.concatenate([ds.X for ds in datasets]),
                   np.concatenate([ds.y for ds in datasets]),
                   num_classes)


class EdgeAreaData:
    """Data of one edge area: one train shard per client plus a shared test set."""

    __slots__ = ("clients", "test", "name")

    def __init__(self, clients: Sequence[Dataset], test: Dataset,
                 name: str = "") -> None:
        if not clients:
            raise ValueError("an edge area needs at least one client shard")
        dims = {c.input_dim for c in clients} | {test.input_dim}
        classes = {c.num_classes for c in clients} | {test.num_classes}
        if len(dims) != 1 or len(classes) != 1:
            raise ValueError("client shards and test set must share dims and classes")
        self.clients = list(clients)
        self.test = test
        self.name = name

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    @property
    def train_size(self) -> int:
        """Total training samples across the area's clients."""
        return sum(len(c) for c in self.clients)

    def train_pool(self) -> Dataset:
        """All the area's training data as one dataset (for diagnostics)."""
        return concat_datasets(self.clients)


class FederatedDataset:
    """Three-layer data layout: edge areas, each with client shards and a test set."""

    def __init__(self, edges: Sequence[EdgeAreaData], *, name: str = "") -> None:
        if not edges:
            raise ValueError("a federated dataset needs at least one edge area")
        dims = {e.clients[0].input_dim for e in edges}
        classes = {e.clients[0].num_classes for e in edges}
        if len(dims) != 1 or len(classes) != 1:
            raise ValueError("edge areas must share feature dims and class counts")
        self.edges = list(edges)
        self.name = name

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def num_clients(self) -> int:
        return sum(e.num_clients for e in self.edges)

    @property
    def input_dim(self) -> int:
        return self.edges[0].clients[0].input_dim

    @property
    def num_classes(self) -> int:
        return self.edges[0].clients[0].num_classes

    def client_shards(self) -> list[Dataset]:
        """Flat list of all client train shards, edge-major order."""
        return [shard for edge in self.edges for shard in edge.clients]

    def iter_clients(self) -> Iterator[tuple[int, int, Dataset]]:
        """Yield (edge_index, client_index_within_edge, shard)."""
        for e, edge in enumerate(self.edges):
            for c, shard in enumerate(edge.clients):
                yield e, c, shard

    def global_test(self) -> Dataset:
        """Union of all edge-area test sets."""
        return concat_datasets([e.test for e in self.edges])

    def clients_per_edge(self) -> list[int]:
        """Client count of each edge area (the paper's N0 when uniform)."""
        return [e.num_clients for e in self.edges]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FederatedDataset({self.name or 'unnamed'}: edges={self.num_edges}, "
                f"clients={self.num_clients}, d={self.input_dim}, "
                f"classes={self.num_classes})")
