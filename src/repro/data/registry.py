"""Named federated-dataset builders mirroring the paper's §6 setups.

Every experiment in the paper is reproduced from one of the named layouts below via
:func:`make_federated_dataset`.  Two size scales are provided:

* ``"paper"`` — 28×28 images, dataset sizes comparable to the real corpora's
  per-round footprint;
* ``"small"`` — 12×12 images and reduced pools, preserving the experiments'
  structure (same edge/client topology and heterogeneity) at laptop/CI cost.

The topology knobs (``num_edges``, ``clients_per_edge``) default to the paper's
values and can be overridden.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.adult import AdultLikeSpec, make_adult_groups
from repro.data.dataset import FederatedDataset
from repro.data.partition import (
    federated_from_group_pools,
    partition_one_class_per_edge,
    partition_similarity,
)
from repro.data.synthetic_fl import SyntheticFLSpec, generate_synthetic_fl
from repro.data.synthetic_images import make_image_dataset
from repro.utils.rng import as_generator

__all__ = ["DATASET_NAMES", "ScaleSpec", "SCALES", "make_federated_dataset"]

DATASET_NAMES = ("emnist_digits", "fashion_mnist", "mnist", "adult", "synthetic")


@dataclass(frozen=True)
class ScaleSpec:
    """Size knobs for one scale tier."""

    side: int            # image side length
    train_per_class: int  # pooled training samples per class (image datasets)
    test_per_class: int   # pooled test samples per class (image datasets)
    adult_train_per_group: int
    adult_test_per_group: int
    synthetic_devices: int


SCALES: dict[str, ScaleSpec] = {
    "paper": ScaleSpec(side=28, train_per_class=600, test_per_class=200,
                       adult_train_per_group=2000, adult_test_per_group=500,
                       synthetic_devices=100),
    "small": ScaleSpec(side=12, train_per_class=120, test_per_class=120,
                       adult_train_per_group=400, adult_test_per_group=150,
                       synthetic_devices=20),
    "tiny": ScaleSpec(side=8, train_per_class=45, test_per_class=30,
                      adult_train_per_group=120, adult_test_per_group=60,
                      synthetic_devices=8),
}

_IMAGE_FAMILIES = {
    "emnist_digits": "emnist_digits_like",
    "fashion_mnist": "fashion_mnist_like",
    "mnist": "mnist_like",
}


def make_federated_dataset(name: str, *,
                           seed: int | np.random.Generator = 0,
                           scale: str = "small",
                           num_edges: int | None = None,
                           clients_per_edge: int | None = None,
                           partition: str | None = None,
                           similarity: float = 0.5) -> FederatedDataset:
    """Build one of the paper's federated layouts by name.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    seed:
        Root seed or generator for all sampling.
    scale:
        ``"paper"``, ``"small"``, or ``"tiny"`` (see :data:`SCALES`).
    num_edges, clients_per_edge:
        Topology overrides; defaults are the paper's (10 edges × 3 clients for the
        image datasets, 2 edges for Adult, ``scale.synthetic_devices`` for
        Synthetic).
    partition:
        For the image datasets: ``"one_class"`` (default, §6.1 / Table 2) or
        ``"similarity"`` (§6.2); ignored for Adult/Synthetic.
    similarity:
        The ``s`` of the similarity partition (paper presents s = 0.5).
    """
    if name not in DATASET_NAMES:
        raise ValueError(f"unknown dataset {name!r}; options: {DATASET_NAMES}")
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; options: {sorted(SCALES)}")
    sizes = SCALES[scale]
    rng = as_generator(seed)

    if name in _IMAGE_FAMILIES:
        family = _IMAGE_FAMILIES[name]
        edges = num_edges if num_edges is not None else 10
        per_edge = clients_per_edge if clients_per_edge is not None else 3
        train_pool = make_image_dataset(family, sizes.train_per_class, rng,
                                        side=sizes.side)
        test_pool = make_image_dataset(family, sizes.test_per_class, rng,
                                       side=sizes.side)
        mode = partition if partition is not None else "one_class"
        if mode == "one_class":
            fed = partition_one_class_per_edge(
                train_pool, test_pool, num_edges=edges, clients_per_edge=per_edge,
                rng=rng)
        elif mode == "similarity":
            fed = partition_similarity(
                train_pool, test_pool, num_edges=edges, clients_per_edge=per_edge,
                similarity=similarity, rng=rng)
        else:
            raise ValueError(f"unknown partition {mode!r}; "
                             "options: 'one_class', 'similarity'")
        fed.name = f"{name}[{scale},{mode}]"
        return fed

    if name == "adult":
        per_edge = clients_per_edge if clients_per_edge is not None else 3
        trains, tests = make_adult_groups(
            sizes.adult_train_per_group, sizes.adult_test_per_group, rng,
            spec=AdultLikeSpec())
        fed = federated_from_group_pools(trains, tests, clients_per_edge=per_edge,
                                         rng=rng, name=f"adult[{scale}]")
        return fed

    # name == "synthetic"
    devices = num_edges if num_edges is not None else sizes.synthetic_devices
    per_edge = clients_per_edge if clients_per_edge is not None else 1
    spec = SyntheticFLSpec(num_devices=devices)
    trains, tests = generate_synthetic_fl(spec, rng)
    fed = federated_from_group_pools(trains, tests, clients_per_edge=per_edge,
                                     rng=rng, name=f"synthetic[{scale}]")
    return fed
