"""Federated datasets: containers, synthetic generators, and partitioners."""

from repro.data.adult import AdultLikeGenerator, AdultLikeSpec, make_adult_groups
from repro.data.batching import MinibatchSampler
from repro.data.dataset import Dataset, EdgeAreaData, FederatedDataset, concat_datasets
from repro.data.partition import (
    federated_from_group_pools,
    partition_dirichlet,
    partition_iid,
    partition_one_class_per_edge,
    partition_similarity,
    split_evenly,
    stratified_test_subset,
)
from repro.data.registry import DATASET_NAMES, SCALES, ScaleSpec, make_federated_dataset
from repro.data.synthetic_fl import SyntheticFLSpec, generate_synthetic_fl
from repro.data.synthetic_images import (
    EMNIST_DIGITS_LIKE,
    FASHION_MNIST_LIKE,
    MNIST_LIKE,
    ImageGeneratorSpec,
    SyntheticImageGenerator,
    make_image_dataset,
)

__all__ = [
    "AdultLikeGenerator",
    "AdultLikeSpec",
    "make_adult_groups",
    "MinibatchSampler",
    "Dataset",
    "EdgeAreaData",
    "FederatedDataset",
    "concat_datasets",
    "federated_from_group_pools",
    "partition_dirichlet",
    "partition_iid",
    "partition_one_class_per_edge",
    "partition_similarity",
    "split_evenly",
    "stratified_test_subset",
    "DATASET_NAMES",
    "SCALES",
    "ScaleSpec",
    "make_federated_dataset",
    "SyntheticFLSpec",
    "generate_synthetic_fl",
    "EMNIST_DIGITS_LIKE",
    "FASHION_MNIST_LIKE",
    "MNIST_LIKE",
    "ImageGeneratorSpec",
    "SyntheticImageGenerator",
    "make_image_dataset",
]
