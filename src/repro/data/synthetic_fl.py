"""The Synthetic(α, β) federated dataset of Li et al. (ICLR '20), implemented faithfully.

Table 2's last row evaluates on "Synthetic [19]" with 100 edge areas.  The published
generator (q-FFL / FedProx papers) is fully specified, so no substitution is needed:

for each device ``k``:

* model heterogeneity: ``u_k ~ N(0, α)``; ground-truth weights
  ``W_k ∈ R^{C×d} ~ N(u_k, 1)``, bias ``b_k ~ N(u_k, 1)``;
* data heterogeneity: ``B_k ~ N(0, β)``; feature means ``v_k ∈ R^d`` with
  ``(v_k)_j ~ N(B_k, 1)``; features ``x ~ N(v_k, Σ)`` with diagonal
  ``Σ_jj = j^{-1.2}``;
* labels ``y = argmax softmax(W_k x + b_k)``;
* sample counts per device follow a (clipped) lognormal power law.

The paper's Table 2 row uses α = β = 1 heterogeneity (the "synthetic(1,1)" setting
common in follow-up work); both knobs are exposed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.ops.numerics import softmax

__all__ = ["SyntheticFLSpec", "generate_synthetic_fl"]


@dataclass(frozen=True)
class SyntheticFLSpec:
    """Parameters of the Synthetic(α, β) generator.

    Attributes
    ----------
    alpha, beta:
        Model and data heterogeneity scales of Li et al.
    num_devices:
        Number of devices (edge areas in the paper's mapping); Table 2 uses 100.
    input_dim, num_classes:
        Feature and label dimensions (60 and 10 in the original generator).
    mean_samples, sigma_samples:
        Lognormal parameters of per-device sample counts.
    min_samples, max_samples:
        Clipping range of per-device sample counts.
    test_fraction:
        Fraction of each device's samples held out as its test set.
    """

    alpha: float = 1.0
    beta: float = 1.0
    num_devices: int = 100
    input_dim: int = 60
    num_classes: int = 10
    mean_samples: float = 4.0
    sigma_samples: float = 1.0
    min_samples: int = 20
    max_samples: int = 1000
    test_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be nonnegative")
        if self.num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {self.num_devices}")
        if self.input_dim < 1 or self.num_classes < 2:
            raise ValueError("input_dim >= 1 and num_classes >= 2 required")
        if not 0.0 < self.test_fraction < 1.0:
            raise ValueError(f"test_fraction must be in (0,1), got {self.test_fraction}")
        if not 1 <= self.min_samples <= self.max_samples:
            raise ValueError("need 1 <= min_samples <= max_samples")


def generate_synthetic_fl(spec: SyntheticFLSpec, rng: np.random.Generator,
                          ) -> tuple[list[Dataset], list[Dataset]]:
    """Generate ([train_k], [test_k]) for each device ``k`` per the Li et al. recipe."""
    d, C = spec.input_dim, spec.num_classes
    # Diagonal feature covariance Sigma_jj = j^{-1.2}.
    sigma_diag = np.power(np.arange(1, d + 1, dtype=np.float64), -1.2)
    sigma_sqrt = np.sqrt(sigma_diag)

    counts = rng.lognormal(spec.mean_samples, spec.sigma_samples,
                           size=spec.num_devices)
    counts = np.clip(counts.astype(np.int64), spec.min_samples, spec.max_samples)

    trains: list[Dataset] = []
    tests: list[Dataset] = []
    for k in range(spec.num_devices):
        n_k = int(counts[k])
        u_k = rng.normal(0.0, np.sqrt(spec.alpha)) if spec.alpha > 0 else 0.0
        W_k = rng.normal(u_k, 1.0, size=(d, C))
        b_k = rng.normal(u_k, 1.0, size=C)
        B_k = rng.normal(0.0, np.sqrt(spec.beta)) if spec.beta > 0 else 0.0
        v_k = rng.normal(B_k, 1.0, size=d)

        X = v_k + sigma_sqrt * rng.normal(size=(n_k, d))
        probs = softmax(X @ W_k + b_k, axis=1)
        y = np.argmax(probs, axis=1).astype(np.int64)

        ds = Dataset(X, y, num_classes=C)
        n_test = max(1, int(round(spec.test_fraction * n_k)))
        n_test = min(n_test, n_k - 1) if n_k > 1 else 1
        perm = rng.permutation(n_k)
        if n_k > 1:
            tests.append(ds.subset(perm[:n_test]))
            trains.append(ds.subset(perm[n_test:]))
        else:  # degenerate single-sample device: reuse the sample for both
            tests.append(ds)
            trains.append(ds)
    return trains, tests
