"""Virtual client populations: spec-defined cohorts in O(cohort) memory.

``repro.population`` inverts client ownership: instead of materializing every
client and its dataset up front (capping population size at memory), a
:class:`PopulationSpec` *describes* the population and a
:class:`VirtualPopulation` derives each round's sampled cohort on demand —
datasets, RNG streams, and sampler cursors as pure functions of
``(spec.seed, client_id)`` — then discards it, persisting only what must
survive in a sharded :class:`ClientStateStore`.  Wrapping a materialized
dataset with :class:`EagerPopulation` (what ``FederatedAlgorithm`` does when no
``population=`` is given) reproduces the pre-population behavior byte for byte.

See DESIGN.md "Virtual populations" for the lifecycle and equivalence
arguments, and ``benchmarks/bench_population.py`` for the measured O(cohort)
memory claim.
"""

from repro.population.base import (EagerPopulation, Population, as_population,
                                   resolve_population)
from repro.population.spec import PopulationSpec
from repro.population.store import (ClientStateStore, ShardIntegrityError,
                                    shard_file_path)
from repro.population.virtual import (VirtualClientRoster, VirtualDatasetView,
                                      VirtualEdgeServer, VirtualPopulation)

__all__ = [
    "Population",
    "PopulationSpec",
    "EagerPopulation",
    "VirtualPopulation",
    "VirtualEdgeServer",
    "VirtualClientRoster",
    "VirtualDatasetView",
    "ClientStateStore",
    "ShardIntegrityError",
    "shard_file_path",
    "as_population",
    "resolve_population",
]
