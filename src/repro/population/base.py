"""Population protocol and the degenerate eager wrapper.

A *population* owns client construction for an algorithm run.  Two
implementations exist:

* :class:`EagerPopulation` — wraps a materialized
  :class:`~repro.data.dataset.FederatedDataset` and calls the exact builder
  functions (:func:`~repro.sim.builder.build_edge_servers` /
  :func:`~repro.sim.builder.build_flat_clients`) every algorithm used before
  this subsystem existed.  It is the repo's regression idiom in population
  form: wrapping a dataset as a degenerate population is **structurally**
  bit-identical to the pre-population code path — same builders, same RNG
  streams, same actor graph, same checkpoint format.
* :class:`~repro.population.virtual.VirtualPopulation` — derives clients on
  demand from a :class:`~repro.population.spec.PopulationSpec`; see that
  module.

:func:`resolve_population` is the single normalization point used by
:class:`~repro.core.base.FederatedAlgorithm`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sim.builder import build_edge_servers, build_flat_clients

__all__ = ["Population", "EagerPopulation", "resolve_population", "as_population"]


class Population:
    """Interface every population implements (see module docstring)."""

    is_population = True
    #: True when clients are derived on demand (affects checkpoint layout and
    #: backend warm-up; see ``FederatedAlgorithm``).
    virtual = False

    @property
    def dataset(self):
        """The dataset (or dataset view) consumers use for shape and test sets."""
        raise NotImplementedError

    def build_edges(self, *, batch_size: int, rng_factory) -> Sequence:
        """Produce the edge-server actors for a hierarchical run."""
        raise NotImplementedError

    def build_flat_clients(self, *, batch_size: int, rng_factory) -> Sequence:
        """Produce the flat client roster for non-hierarchical baselines."""
        raise NotImplementedError

    def eval_edge_ids(self, round_index: int) -> np.ndarray | None:
        """Evaluation cohort for this round; None evaluates every edge."""
        return None

    def begin_round(self, round_index: int) -> None:
        """Hook before a round's work starts."""

    def end_round(self, round_index: int, *, backend=None) -> None:
        """Hook after a round's work: flush/discard the materialized cohort."""

    def flush(self) -> None:
        """Persist any live per-client state (no-op for eager populations)."""

    def state_dict(self) -> dict:
        """Checkpoint payload (empty when the algorithm snapshots clients)."""
        return {}

    def load_state_dict(self, state) -> None:  # noqa: B027 - intentional no-op
        """Restore from :meth:`state_dict` (no-op for eager populations)."""


class EagerPopulation(Population):
    """A materialized dataset wrapped as a degenerate population.

    ``eval_edges`` optionally enables the seeded evaluation cohort on eager
    datasets too; the default (None) keeps evaluation — and therefore the whole
    run — byte-identical to the pre-population code path.
    """

    virtual = False

    def __init__(self, dataset, *, eval_edges: int | None = None,
                 eval_seed: int = 0) -> None:
        if dataset is None:
            raise ValueError("an eager population needs a dataset; pass either "
                             "dataset= or population=")
        self._dataset = dataset
        if eval_edges is not None and eval_edges < 1:
            raise ValueError("eval_edges must be >= 1 (or None for all edges)")
        self.eval_edges = eval_edges
        self.eval_seed = int(eval_seed)

    @property
    def dataset(self):
        return self._dataset

    def build_edges(self, *, batch_size: int, rng_factory):
        """Delegate to the original eager builder — bit-identical actors."""
        return build_edge_servers(self._dataset, batch_size=batch_size,
                                  rng_factory=rng_factory)

    def build_flat_clients(self, *, batch_size: int, rng_factory):
        """Delegate to the original eager flat-roster builder."""
        return build_flat_clients(self._dataset, batch_size=batch_size,
                                  rng_factory=rng_factory)

    def eval_edge_ids(self, round_index: int) -> np.ndarray | None:
        """Seeded evaluation cohort (same law as the virtual spec), or None."""
        if self.eval_edges is None or self.eval_edges >= self._dataset.num_edges:
            return None
        # Same derivation law as PopulationSpec.eval_edge_ids so eager and
        # virtual runs with matching seeds sample matching cohorts.
        from repro.population.spec import _EVAL_KEY

        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=self.eval_seed, spawn_key=(_EVAL_KEY, int(round_index) + 1)))
        ids = rng.choice(self._dataset.num_edges, size=self.eval_edges,
                         replace=False)
        return np.sort(ids.astype(np.intp))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EagerPopulation({self._dataset!r})"


def resolve_population(population, dataset):
    """Normalize the ``(dataset, population)`` pair of an algorithm constructor.

    Accepts any of: ``population`` already a :class:`Population`; a
    :class:`~repro.population.spec.PopulationSpec` (virtualized on the spot); a
    spec string (parsed); or None (wrap ``dataset`` eagerly).  A spec or
    population may equivalently arrive in the ``dataset`` position — callers
    pass what they have and this sorts it out.
    """
    from repro.population.spec import PopulationSpec
    from repro.population.virtual import VirtualPopulation

    if population is None and (
            isinstance(dataset, (str, PopulationSpec))
            or getattr(dataset, "is_population", False)):
        population, dataset = dataset, None
    if population is None:
        return EagerPopulation(dataset)
    if dataset is not None:
        raise ValueError("pass either dataset or population=, not both")
    if isinstance(population, str):
        population = PopulationSpec.parse(population)
    if isinstance(population, PopulationSpec):
        return VirtualPopulation(population)
    if getattr(population, "is_population", False):
        return population
    raise TypeError(f"population must be a PopulationSpec, spec string, or "
                    f"Population, got {type(population).__name__}")


def as_population(obj, **kwargs):
    """Coerce a dataset / spec / spec string / population into a Population.

    ``as_population(dataset)`` is the degenerate eager wrap; keyword arguments
    (e.g. ``eval_edges=``) are forwarded to :class:`EagerPopulation`.
    """
    from repro.population.spec import PopulationSpec
    from repro.population.virtual import VirtualPopulation

    if getattr(obj, "is_population", False):
        if kwargs:
            raise ValueError("cannot re-configure an existing population")
        return obj
    if isinstance(obj, str):
        obj = PopulationSpec.parse(obj)
    if isinstance(obj, PopulationSpec):
        if kwargs:
            raise ValueError("configure the spec itself (dataclasses.replace) "
                             "instead of passing keywords here")
        return VirtualPopulation(obj)
    return EagerPopulation(obj, **kwargs)
