"""Declarative population specifications.

A :class:`PopulationSpec` describes a client population *as a law*, not as data:
how many edges and clients exist, how many samples each client holds, which data
family generates features, how labels are partitioned across edge areas, and a
single root seed.  Everything a client owns — its training shard, its RNG stream,
its sampler cursor — is a **pure function of (spec, client_id)**, so a sampled
cohort can be materialized on demand each round and discarded afterwards without
any loss of determinism.  That inversion (population = spec + seed; only the
cohort exists) is the core scaling abstraction of FedML / FL_PyTorch and what
lets a 1M-client run fit in O(cohort) memory.

Derivation law
--------------
All randomness descends from ``numpy.random.SeedSequence(entropy=spec.seed,
spawn_key=(KIND, index))`` with disjoint ``KIND`` constants per purpose:

* ``(_DATA_KEY, client_id)`` — the client's training shard;
* ``(_TEST_KEY, edge_id)`` — the edge area's shared test set;
* ``(_EVAL_KEY, round+1)`` — the per-round evaluation cohort (edge ids);
* class prototypes for the ``synthetic`` family use ``(_PROTO_KEY,)``.

Image families (``mnist_like`` etc.) draw their prototypes from the family's own
``prototype_seed`` — identical to the eager generators in
:mod:`repro.data.synthetic_images` — so a virtual ``mnist_like`` population poses
the same task as the materialized one.

``PopulationSpec`` also duck-types the topology surface of
:class:`~repro.data.dataset.FederatedDataset` (``num_edges``, ``num_clients``,
``input_dim``, ``num_classes``, ``clients_per_edge()``), so it can be passed
anywhere a dataset's *shape* is consulted (model factories, the algorithm
registry) without materializing anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["PopulationSpec"]

# Disjoint purpose keys for SeedSequence spawn_key namespacing.  These are part
# of the checkpoint/derivation contract: changing them changes every virtual
# dataset, so treat them as frozen.
_DATA_KEY = 0x5F6A7D01
_TEST_KEY = 0x5F6A7D02
_EVAL_KEY = 0x5F6A7D03
_PROTO_KEY = 0x5F6A7D04

_PARTITIONS = ("one_class", "iid")
_IMAGE_FAMILIES = ("mnist_like", "emnist_digits_like", "fashion_mnist_like")
_FAMILIES = ("synthetic",) + _IMAGE_FAMILIES


@dataclass(frozen=True)
class PopulationSpec:
    """A virtual client population: topology + data law + seed.

    Attributes
    ----------
    num_edges, clients_per_edge:
        Hierarchy shape; the population holds ``num_edges * clients_per_edge``
        clients with global ids ``0 .. N-1`` in edge-major order (client ``i``
        belongs to edge ``i // clients_per_edge``).
    samples_per_client, test_per_edge:
        Shard and per-edge test-set sizes.
    family:
        ``"synthetic"`` (Gaussian class-conditional features, dimension
        ``input_dim``) or one of the image families from
        :mod:`repro.data.synthetic_images` (``side`` overrides image size).
    partition:
        ``"one_class"`` assigns classes to edge areas round-robin (the paper's
        Fig. 3 label-skew law: every client of edge ``e`` holds only the classes
        ``{c : c % num_edges == e % num_edges}``); ``"iid"`` draws labels
        uniformly everywhere.
    eval_edges:
        If set, :meth:`eval_edge_ids` samples this many edges per evaluation
        round instead of evaluating every edge (see the estimator note on
        :func:`repro.metrics.evaluation.evaluate_per_edge`).
    seed:
        Root seed of the whole derivation law.
    """

    num_edges: int
    clients_per_edge: int
    samples_per_client: int = 32
    test_per_edge: int = 64
    family: str = "synthetic"
    num_classes: int = 10
    dim: int = 16
    side: int | None = None
    partition: str = "one_class"
    class_scale: float = 1.0
    noise: float = 1.0
    eval_edges: int | None = None
    seed: int = 0
    name: str = field(default="", compare=False)

    is_population_spec = True

    def __post_init__(self) -> None:
        if self.num_edges < 1 or self.clients_per_edge < 1:
            raise ValueError("num_edges and clients_per_edge must be >= 1")
        if self.samples_per_client < 1 or self.test_per_edge < 1:
            raise ValueError("samples_per_client and test_per_edge must be >= 1")
        if self.family not in _FAMILIES:
            raise ValueError(f"unknown family {self.family!r}; options: {_FAMILIES}")
        if self.partition not in _PARTITIONS:
            raise ValueError(
                f"unknown partition {self.partition!r}; options: {_PARTITIONS}")
        if self.num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        if self.family == "synthetic" and self.dim < 1:
            raise ValueError("dim must be >= 1")
        if self.eval_edges is not None and self.eval_edges < 1:
            raise ValueError("eval_edges must be >= 1 (or None for all edges)")
        if not self.name:
            object.__setattr__(self, "name", f"population:{self.family}")

    # ------------------------------------------------------------------
    # Topology (FederatedDataset duck-type surface)
    # ------------------------------------------------------------------
    @property
    def num_clients(self) -> int:
        return self.num_edges * self.clients_per_edge

    def clients_per_edge_list(self) -> list[int]:
        """Per-edge client counts (uniform: ``clients_per_edge`` repeated)."""
        return [self.clients_per_edge] * self.num_edges

    # FederatedDataset spells this method ``clients_per_edge()``; the spec uses
    # that slot for the scalar, so expose the list under the dataset's name too.
    def clients_per_edge_counts(self) -> list[int]:
        """Alias of :meth:`clients_per_edge_list` under the dataset's name."""
        return self.clients_per_edge_list()

    @property
    def input_dim(self) -> int:
        """Feature dimension after resolving the family (``side*side`` for images)."""
        if self.family == "synthetic":
            return self.dim
        from repro.data.synthetic_images import _FAMILIES as IMG

        side = self.side if self.side is not None else IMG[self.family].side
        return side * side

    def edge_of(self, client_id: int) -> int:
        """Edge area of a global client id (edge-major layout)."""
        cid = int(client_id)
        if not 0 <= cid < self.num_clients:
            raise ValueError(f"client id {cid} outside population of {self.num_clients}")
        return cid // self.clients_per_edge

    def edge_client_ids(self, edge_id: int) -> range:
        """Global client ids homed at ``edge_id``."""
        e = int(edge_id)
        if not 0 <= e < self.num_edges:
            raise ValueError(f"edge id {e} outside {self.num_edges} edges")
        lo = e * self.clients_per_edge
        return range(lo, lo + self.clients_per_edge)

    def edge_classes(self, edge_id: int) -> list[int]:
        """Classes held by edge ``edge_id`` under the partition law."""
        if self.partition == "iid":
            return list(range(self.num_classes))
        e = int(edge_id) % min(self.num_edges, self.num_classes)
        step = min(self.num_edges, self.num_classes)
        return [c for c in range(self.num_classes) if c % step == e]

    def edge_group(self, edge_id: int) -> str:
        """Human-readable group label of an edge area (mirrors the eager naming)."""
        if self.partition == "iid":
            return "iid"
        return f"classes={self.edge_classes(edge_id)}"

    # ------------------------------------------------------------------
    # Data law (pure functions of (seed, id))
    # ------------------------------------------------------------------
    def _labels(self, edge_id: int, n: int, rng: np.random.Generator) -> np.ndarray:
        if self.partition == "iid":
            return rng.integers(0, self.num_classes, size=n).astype(np.int64)
        classes = np.asarray(self.edge_classes(edge_id), dtype=np.int64)
        return classes[rng.integers(0, classes.size, size=n)]

    def _features(self, labels: np.ndarray, rng: np.random.Generator,
                  image_generator=None) -> np.ndarray:
        if self.family == "synthetic":
            means = self.class_means()
            X = means[labels] + self.noise * rng.standard_normal(
                (labels.size, self.dim))
            return X
        gen = image_generator if image_generator is not None else self.image_generator()
        return gen.sample(labels, rng)

    def class_means(self) -> np.ndarray:
        """Class prototype means of the ``synthetic`` family (C, d); pure in seed."""
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(_PROTO_KEY,)))
        return self.class_scale * rng.standard_normal((self.num_classes, self.dim))

    def image_generator(self):
        """The (stateless) image sampler shared by every client of the family."""
        from repro.data.synthetic_images import (SyntheticImageGenerator, _FAMILIES as
                                                 IMG, resized_spec)

        spec = IMG[self.family]
        if self.side is not None and self.side != spec.side:
            spec = resized_spec(spec, self.side)
        return SyntheticImageGenerator(spec)

    def client_rng(self, client_id: int) -> np.random.Generator:
        """Data-generation stream of one client (NOT its training-sampler stream)."""
        return np.random.default_rng(np.random.SeedSequence(
            entropy=self.seed, spawn_key=(_DATA_KEY, int(client_id))))

    def client_shard(self, client_id: int, *, image_generator=None) -> Dataset:
        """Materialize client ``client_id``'s training shard.

        Bit-identical for a given ``(spec.seed, client_id)`` no matter when, on
        which backend, or in which order clients are visited.
        """
        rng = self.client_rng(client_id)
        y = self._labels(self.edge_of(client_id), self.samples_per_client, rng)
        X = self._features(y, rng, image_generator=image_generator)
        return Dataset(X, y, self.num_classes)

    def edge_test(self, edge_id: int, *, image_generator=None) -> Dataset:
        """Materialize edge ``edge_id``'s shared test set (pure in (seed, edge_id))."""
        e = int(edge_id)
        if not 0 <= e < self.num_edges:
            raise ValueError(f"edge id {e} outside {self.num_edges} edges")
        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=self.seed, spawn_key=(_TEST_KEY, e)))
        y = self._labels(e, self.test_per_edge, rng)
        X = self._features(y, rng, image_generator=image_generator)
        return Dataset(X, y, self.num_classes)

    def eval_edge_ids(self, round_index: int) -> np.ndarray | None:
        """Seeded evaluation cohort for ``round_index`` (None means *all* edges).

        The cohort is a pure function of ``(seed, round_index)`` — resuming a
        run re-samples the same cohorts — and is sorted so evaluation visits
        edges in a deterministic order.  ``round_index`` may be ``-1`` (the
        pre-training evaluation point).
        """
        if self.eval_edges is None or self.eval_edges >= self.num_edges:
            return None
        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=self.seed, spawn_key=(_EVAL_KEY, int(round_index) + 1)))
        ids = rng.choice(self.num_edges, size=self.eval_edges, replace=False)
        return np.sort(ids.astype(np.intp))

    # ------------------------------------------------------------------
    # Parsing / serialization
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "PopulationSpec":
        """Build a spec from a ``key=value,key=value`` string (CLI surface).

        Keys: ``edges``, ``clients_per_edge`` (or total ``clients``, split
        evenly), ``samples``, ``test``, ``family``, ``classes``, ``dim``,
        ``side``, ``partition``, ``eval_edges``, ``seed``.  Example::

            clients=1000000,edges=1000,samples=2,test=16,eval_edges=50,seed=1
        """
        fields: dict[str, object] = {}
        total_clients: int | None = None
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "=" not in chunk:
                raise ValueError(f"population spec entries are key=value, got {chunk!r}")
            key, _, value = chunk.partition("=")
            key, value = key.strip(), value.strip()
            if key == "edges":
                fields["num_edges"] = int(value)
            elif key == "clients":
                total_clients = int(value)
            elif key == "clients_per_edge":
                fields["clients_per_edge"] = int(value)
            elif key == "samples":
                fields["samples_per_client"] = int(value)
            elif key == "test":
                fields["test_per_edge"] = int(value)
            elif key == "family":
                fields["family"] = value
            elif key == "classes":
                fields["num_classes"] = int(value)
            elif key == "dim":
                fields["dim"] = int(value)
            elif key == "side":
                fields["side"] = int(value)
            elif key == "partition":
                fields["partition"] = value
            elif key == "eval_edges":
                fields["eval_edges"] = int(value)
            elif key == "seed":
                fields["seed"] = int(value)
            elif key == "noise":
                fields["noise"] = float(value)
            else:
                raise ValueError(f"unknown population spec key {key!r}")
        if total_clients is not None:
            if "clients_per_edge" in fields:
                raise ValueError("give either clients= or clients_per_edge=, not both")
            edges = int(fields.get("num_edges", 1))
            if total_clients % edges:
                raise ValueError(
                    f"clients={total_clients} not divisible by edges={edges}")
            fields["clients_per_edge"] = total_clients // edges
        if "num_edges" not in fields or "clients_per_edge" not in fields:
            raise ValueError("population spec needs edges= and clients= "
                             "(or clients_per_edge=)")
        return cls(**fields)  # type: ignore[arg-type]

    def to_dict(self) -> dict:
        """JSON-able fingerprint (used to detect spec/checkpoint mismatches)."""
        return {
            "num_edges": self.num_edges, "clients_per_edge": self.clients_per_edge,
            "samples_per_client": self.samples_per_client,
            "test_per_edge": self.test_per_edge, "family": self.family,
            "num_classes": self.num_classes, "dim": self.dim,
            "side": self.side, "partition": self.partition,
            "class_scale": self.class_scale, "noise": self.noise,
            "eval_edges": self.eval_edges, "seed": self.seed,
        }

    def with_eval_edges(self, eval_edges: int | None) -> "PopulationSpec":
        """Copy of this spec with a different evaluation-cohort size."""
        return replace(self, eval_edges=eval_edges)

    @classmethod
    def from_dict(cls, data: Mapping) -> "PopulationSpec":
        return cls(**dict(data))
