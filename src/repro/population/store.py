"""Sharded persistent per-client state for virtual populations.

A virtual population materializes only the sampled cohort each round and throws
it away afterwards — but some client state must *survive* the discard: the
minibatch-sampler cursor (so a client re-sampled in a later round continues its
stream exactly where it left off), the local-step counter, and any marks other
subsystems pin on a client (quarantine verdicts, membership status).  The
:class:`ClientStateStore` holds exactly that state, namespaced per concern and
sharded by ``client_id % num_shards`` so checkpoints and future distribution
can move shards independently.

Memory is O(clients ever visited), independent of the population size: a
1M-client run that samples 5 edges x 1000 clients per round for 20 rounds holds
at most ~100k entries, each a few hundred bytes (a generator token + cursor).

The store round-trips bit-identically through ``state_dict()`` /
``load_state_dict()`` — entries are kept checkpoint-serializable (plain dicts,
ints, numpy arrays, and :func:`~repro.utils.rng.generator_token` envelopes).

Durable shard files
-------------------
For large populations the store can persist *sidecar* shard files instead of
inlining every entry into the main checkpoint: :meth:`ClientStateStore.save_shards`
writes one checksummed JSON file per non-empty shard (fsync-before-rename,
previous generation rotated to ``.prev``) and returns a manifest of per-shard
CRC-32 values that the checkpoint embeds.  :meth:`ClientStateStore.load_shards`
re-reads the files against that manifest: a torn, truncated, or bit-flipped
shard never loads silently — it either aborts the restore (``on_corrupt:
"raise"``, letting the caller fall back to the previous checkpoint generation)
or is quarantined and dropped (``"rederive"``), which is sound because virtual
clients are pure functions of ``(spec.seed, cid)`` and re-derive from scratch.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.chaos.hooks import fire as chaos_fire
from repro.utils.serialization import canonical_bytes, from_jsonable, to_jsonable

__all__ = ["ClientStateStore", "ShardIntegrityError", "shard_file_path"]

DEFAULT_SHARDS = 64


class ShardIntegrityError(RuntimeError):
    """A persisted shard file is missing or fails checksum verification."""


def shard_file_path(directory: str | Path, index: int) -> Path:
    """The canonical file for shard ``index`` inside ``directory``."""
    return Path(directory) / f"shard-{int(index):05d}.json"


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class ClientStateStore:
    """Sharded ``client_id -> {namespace -> state}`` map with exact round-trip.

    Namespaces keep concerns separate: the population writes sampler cursors
    under ``"sampler"`` and step counters under ``"meta"``; other subsystems
    (quarantine, membership) may claim their own namespace without colliding.
    """

    def __init__(self, num_shards: int = DEFAULT_SHARDS) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self._shards: list[dict[int, dict[str, Any]]] = [
            {} for _ in range(self.num_shards)]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _shard(self, client_id: int) -> dict[int, dict[str, Any]]:
        return self._shards[int(client_id) % self.num_shards]

    def get(self, client_id: int, namespace: str = "sampler") -> Any | None:
        """State stored for ``client_id`` under ``namespace`` (None if absent)."""
        entry = self._shard(client_id).get(int(client_id))
        if entry is None:
            return None
        return entry.get(namespace)

    def put(self, client_id: int, state: Any, namespace: str = "sampler") -> None:
        """Store ``state`` for ``client_id`` under ``namespace`` (overwrites)."""
        self._shard(client_id).setdefault(int(client_id), {})[namespace] = state

    def discard(self, client_id: int, namespace: str | None = None) -> None:
        """Drop one namespace of a client's state, or the whole client entry."""
        shard = self._shard(client_id)
        cid = int(client_id)
        if namespace is None:
            shard.pop(cid, None)
            return
        entry = shard.get(cid)
        if entry is not None:
            entry.pop(namespace, None)
            if not entry:
                shard.pop(cid, None)

    def __contains__(self, client_id: object) -> bool:
        # Membership tests arrive from generic containers ("is this thing a
        # stored client?"), so a key that cannot denote a client id is simply
        # absent — not a crash.
        try:
            cid = int(client_id)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
        return cid in self._shards[cid % self.num_shards]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def client_ids(self) -> Iterator[int]:
        """All client ids with any stored state (ascending)."""
        ids = [cid for shard in self._shards for cid in shard]
        return iter(sorted(ids))

    def shard_sizes(self) -> list[int]:
        """Entry count per shard (diagnostics / balance checks)."""
        return [len(shard) for shard in self._shards]

    # ------------------------------------------------------------------
    # Checkpointing (inline)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Exact snapshot; keys are stringified for the JSON checkpoint format."""
        return {
            "num_shards": self.num_shards,
            "shards": {
                str(i): {str(cid): entry for cid, entry in sorted(shard.items())}
                for i, shard in enumerate(self._shards) if shard
            },
        }

    def load_state_dict(self, state: Mapping) -> None:
        """Restore a :meth:`state_dict` snapshot (replaces all current content).

        The shard count may differ from the snapshot's — entries are re-homed
        by the current ``client_id % num_shards`` law, so resharding a
        checkpoint is safe and bit-identical at the client level.  The input
        is validated before anything is replaced: malformed shards, non-integer
        or negative client keys, and non-mapping entries raise ``ValueError``
        naming the offending key, leaving the current content untouched.
        """
        if not isinstance(state, Mapping):
            raise ValueError(
                f"store state must be a mapping, got {type(state).__name__}")
        shards_in = state.get("shards", {})
        if not isinstance(shards_in, Mapping):
            raise ValueError(
                f"store state 'shards' must be a mapping of shard snapshots, "
                f"got {type(shards_in).__name__}")
        rebuilt: list[dict[int, dict[str, Any]]] = [
            {} for _ in range(self.num_shards)]
        for shard_key, shard in shards_in.items():
            if not isinstance(shard, Mapping):
                raise ValueError(
                    f"shard {shard_key!r} must be a mapping of client entries, "
                    f"got {type(shard).__name__}")
            for cid_str, entry in shard.items():
                try:
                    cid = int(cid_str)
                except (TypeError, ValueError):
                    raise ValueError(
                        f"shard {shard_key!r} holds non-integer client key "
                        f"{cid_str!r}") from None
                if cid < 0:
                    raise ValueError(
                        f"shard {shard_key!r} holds negative client id {cid}")
                if not isinstance(entry, Mapping):
                    raise ValueError(
                        f"state for client {cid} must be a namespace mapping, "
                        f"got {type(entry).__name__}")
                rebuilt[cid % self.num_shards][cid] = dict(entry)
        self._shards = rebuilt

    # ------------------------------------------------------------------
    # Durable sidecar shard files
    # ------------------------------------------------------------------
    def save_shards(self, directory: str | Path) -> dict:
        """Write every non-empty shard to a checksummed file in ``directory``.

        Each file carries ``{"crc32": ..., "entries": {...}}`` with the CRC
        computed over the canonical entry bytes; writes are temp-file +
        fsync + atomic rename, the directory entry is fsynced, and the prior
        generation of each file is rotated to ``<name>.prev``.  Returns the
        manifest (``num_shards`` plus per-shard CRCs) the owning checkpoint
        must embed — loading matches files against it, so a stale or damaged
        file can never masquerade as the checkpointed generation.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest: dict = {"num_shards": self.num_shards, "shards": {}}
        for index, shard in enumerate(self._shards):
            if not shard:
                continue
            entries = to_jsonable(
                {str(cid): entry for cid, entry in sorted(shard.items())})
            crc = zlib.crc32(canonical_bytes(entries))
            path = shard_file_path(directory, index)
            tmp = path.with_name(path.name + ".tmp")
            with open(tmp, "w") as fh:
                fh.write(json.dumps({"crc32": crc, "entries": entries},
                                    sort_keys=True))
                fh.flush()
                os.fsync(fh.fileno())
            if path.exists():
                path.replace(path.with_name(path.name + ".prev"))
            tmp.replace(path)
            manifest["shards"][str(index)] = crc
            corrupt = chaos_fire("shard_corrupt")
            if corrupt is not None:
                # Simulated bit rot: flip one derived bit of the durably
                # written file.  The next load's CRC check must catch it.
                blob = bytearray(path.read_bytes())
                offset = min(len(blob) - 1,
                             int(corrupt["offset_frac"] * len(blob)))
                blob[offset] ^= 1 << corrupt["bit"]
                path.write_bytes(bytes(blob))
        _fsync_dir(directory)
        return manifest

    def load_shards(self, directory: str | Path, manifest: Mapping, *,
                    on_corrupt: str = "raise", obs=None) -> list[int]:
        """Restore shard files from ``directory`` against ``manifest``.

        For each shard the manifest names, the current file and its ``.prev``
        sibling are candidates; the first whose recomputed CRC matches the
        manifest is loaded (rotation states where the manifest's generation
        still lives under either name are all covered).  When neither
        matches:

        ``on_corrupt="raise"``
            Abort with :class:`ShardIntegrityError` before touching current
            content — the caller's cue to fall back to the previous
            *checkpoint* generation, whose manifest matches the ``.prev``
            files (the bit-identical recovery path).
        ``on_corrupt="rederive"``
            Quarantine the damaged file (renamed to ``<name>.quarantine``)
            and drop the shard's entries: affected virtual clients re-derive
            from ``(spec.seed, cid)`` on next materialization.  Exact for
            never-advanced clients; detection is always loud (an event plus
            the returned shard list), never a silent load.

        Returns the list of corrupted shard indices (empty on a clean load).
        """
        if on_corrupt not in ("raise", "rederive"):
            raise ValueError(
                f"on_corrupt must be 'raise' or 'rederive', got {on_corrupt!r}")
        directory = Path(directory)
        shards_manifest = dict(manifest.get("shards", {}))
        resolved: dict[int, Mapping] = {}
        corrupted: list[int] = []
        for key in sorted(shards_manifest, key=int):
            index = int(key)
            expected = int(shards_manifest[key])
            path = shard_file_path(directory, index)
            entries = None
            for candidate in (path, path.with_name(path.name + ".prev")):
                entries = self._read_shard_file(candidate, expected)
                if entries is not None:
                    break
            if entries is None:
                corrupted.append(index)
                if on_corrupt == "raise":
                    raise ShardIntegrityError(
                        f"shard {index} in {directory} failed checksum "
                        f"verification against the checkpoint manifest "
                        f"(crc32 {expected}); the file is missing, torn, or "
                        f"bit-flipped")
                if path.exists():
                    path.replace(path.with_name(path.name + ".quarantine"))
                if obs is not None:
                    obs.event("shard_corrupt_detected", shard=index,
                              path=str(path), crc32=expected,
                              action="quarantined")
                    obs.count("store_shards_quarantined_total")
            else:
                resolved[index] = entries
        # Validate + apply through the same law as the inline path; entries
        # re-home under the current num_shards.
        self.load_state_dict({
            "num_shards": int(manifest.get("num_shards", self.num_shards)),
            "shards": {str(i): from_jsonable(dict(e))
                       for i, e in resolved.items()},
        })
        return corrupted

    @staticmethod
    def _read_shard_file(path: Path, expected_crc: int) -> Mapping | None:
        """Parse + verify one candidate file; None on any mismatch/damage."""
        if not path.exists():
            return None
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError, UnicodeDecodeError):
            # ValueError covers JSONDecodeError; a bit flip can also break
            # the UTF-8 encoding itself, which surfaces before the parser.
            return None
        if not isinstance(document, dict) or "entries" not in document:
            return None
        entries = document["entries"]
        if int(document.get("crc32", -1)) != expected_crc:
            return None
        if zlib.crc32(canonical_bytes(entries)) != expected_crc:
            return None
        return entries
