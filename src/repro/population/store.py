"""Sharded persistent per-client state for virtual populations.

A virtual population materializes only the sampled cohort each round and throws
it away afterwards — but some client state must *survive* the discard: the
minibatch-sampler cursor (so a client re-sampled in a later round continues its
stream exactly where it left off), the local-step counter, and any marks other
subsystems pin on a client (quarantine verdicts, membership status).  The
:class:`ClientStateStore` holds exactly that state, namespaced per concern and
sharded by ``client_id % num_shards`` so checkpoints and future distribution
can move shards independently.

Memory is O(clients ever visited), independent of the population size: a
1M-client run that samples 5 edges x 1000 clients per round for 20 rounds holds
at most ~100k entries, each a few hundred bytes (a generator token + cursor).

The store round-trips bit-identically through ``state_dict()`` /
``load_state_dict()`` — entries are kept checkpoint-serializable (plain dicts,
ints, numpy arrays, and :func:`~repro.utils.rng.generator_token` envelopes).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

__all__ = ["ClientStateStore"]

DEFAULT_SHARDS = 64


class ClientStateStore:
    """Sharded ``client_id -> {namespace -> state}`` map with exact round-trip.

    Namespaces keep concerns separate: the population writes sampler cursors
    under ``"sampler"`` and step counters under ``"meta"``; other subsystems
    (quarantine, membership) may claim their own namespace without colliding.
    """

    def __init__(self, num_shards: int = DEFAULT_SHARDS) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self._shards: list[dict[int, dict[str, Any]]] = [
            {} for _ in range(self.num_shards)]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _shard(self, client_id: int) -> dict[int, dict[str, Any]]:
        return self._shards[int(client_id) % self.num_shards]

    def get(self, client_id: int, namespace: str = "sampler") -> Any | None:
        """State stored for ``client_id`` under ``namespace`` (None if absent)."""
        entry = self._shard(client_id).get(int(client_id))
        if entry is None:
            return None
        return entry.get(namespace)

    def put(self, client_id: int, state: Any, namespace: str = "sampler") -> None:
        """Store ``state`` for ``client_id`` under ``namespace`` (overwrites)."""
        self._shard(client_id).setdefault(int(client_id), {})[namespace] = state

    def discard(self, client_id: int, namespace: str | None = None) -> None:
        """Drop one namespace of a client's state, or the whole client entry."""
        shard = self._shard(client_id)
        cid = int(client_id)
        if namespace is None:
            shard.pop(cid, None)
            return
        entry = shard.get(cid)
        if entry is not None:
            entry.pop(namespace, None)
            if not entry:
                shard.pop(cid, None)

    def __contains__(self, client_id: object) -> bool:
        return int(client_id) in self._shard(int(client_id))  # type: ignore[arg-type]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def client_ids(self) -> Iterator[int]:
        """All client ids with any stored state (ascending)."""
        ids = [cid for shard in self._shards for cid in shard]
        return iter(sorted(ids))

    def shard_sizes(self) -> list[int]:
        """Entry count per shard (diagnostics / balance checks)."""
        return [len(shard) for shard in self._shards]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Exact snapshot; keys are stringified for the JSON checkpoint format."""
        return {
            "num_shards": self.num_shards,
            "shards": {
                str(i): {str(cid): entry for cid, entry in sorted(shard.items())}
                for i, shard in enumerate(self._shards) if shard
            },
        }

    def load_state_dict(self, state: Mapping) -> None:
        """Restore a :meth:`state_dict` snapshot (replaces all current content).

        The shard count may differ from the snapshot's — entries are re-homed by
        the current ``client_id % num_shards`` law, so resharding a checkpoint
        is safe and bit-identical at the client level.
        """
        self._shards = [{} for _ in range(self.num_shards)]
        for shard in dict(state.get("shards", {})).values():
            for cid_str, entry in shard.items():
                cid = int(cid_str)
                self._shard(cid)[cid] = dict(entry)
