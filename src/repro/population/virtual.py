"""Virtual populations: derive the sampled cohort on demand, discard after.

The pieces
----------
* :class:`VirtualPopulation` — owns the lifecycle.  ``client(cid)`` materializes
  one client as a pure function of ``(spec.seed, cid)``: shard from the spec's
  data law, RNG stream from :meth:`~repro.utils.rng.RngFactory.stream_at`
  (bit-identical to the eager builder's ``streams("client", N)[cid]``), then any
  persisted sampler cursor / step counter is restored from the
  :class:`~repro.population.store.ClientStateStore`.  ``end_round`` flushes the
  live cohort's state back to the store, drops the cohort, and tells the
  execution backend to forget the ids.
* :class:`VirtualEdgeServer` — an :class:`~repro.sim.edge.EdgeServer` whose
  ``clients`` list is a materializing property; the inherited ``model_update``
  and ``estimate_loss`` run unchanged on it.
* :class:`VirtualClientRoster` — the flat ``self.clients`` stand-in for
  two-layer baselines: ``len()`` and indexing without materializing the world.
* :class:`VirtualDatasetView` — duck-types :class:`~repro.data.dataset.FederatedDataset`
  for shape queries and lazily generated per-edge test sets.

Memory contract: at any instant the population holds the live cohort plus the
state store (O(clients ever visited)); nothing scales with population size.
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.data.dataset import Dataset, concat_datasets
from repro.exec.dispatch import restore_sampler_state, sampler_state_token
from repro.population.base import Population
from repro.population.spec import PopulationSpec
from repro.population.store import ClientStateStore
from repro.sim.client import Client
from repro.sim.edge import EdgeServer

__all__ = ["VirtualPopulation", "VirtualEdgeServer", "VirtualClientRoster",
           "VirtualDatasetView"]


class VirtualEdgeServer(EdgeServer):
    """An edge server whose client roster materializes on access.

    Inherits every aggregation procedure from :class:`EdgeServer`; only the
    ownership of ``clients`` changes.  ``client_ids()`` / ``resolve_client``
    are the lazy-binding hooks consumed by
    :class:`~repro.membership.manager.MembershipManager`.
    """

    def __init__(self, edge_id: int, population: "VirtualPopulation") -> None:
        # Deliberately no super().__init__: the eager ctor would demand a
        # materialized client list, which is the one thing this class avoids.
        self.edge_id = int(edge_id)
        self._population = population

    @property
    def clients(self) -> list[Client]:
        return self._population.edge_clients(self.edge_id)

    @property
    def num_clients(self) -> int:
        return self._population.spec.clients_per_edge

    @property
    def num_samples(self) -> int:
        spec = self._population.spec
        return spec.clients_per_edge * spec.samples_per_client

    def client_ids(self) -> range:
        """Global ids homed at this edge (no materialization)."""
        return self._population.spec.edge_client_ids(self.edge_id)

    def resolve_client(self, client_id: int) -> Client:
        """Materialize one client on demand (membership's lazy actor map)."""
        return self._population.client(client_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"VirtualEdgeServer(id={self.edge_id}, "
                f"clients={self.num_clients})")


class VirtualClientRoster:
    """Flat ``clients`` stand-in for two-layer baselines.

    Supports ``len()`` and integer indexing (materializing just that client).
    Deliberately not an eager sequence: iterating it walks the whole population
    one client at a time, so algorithms should index sampled ids only.
    """

    def __init__(self, population: "VirtualPopulation") -> None:
        self._population = population

    def __len__(self) -> int:
        return self._population.spec.num_clients

    def __getitem__(self, index: int) -> Client:
        n = len(self)
        i = int(index)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(f"client index {index} out of range for {n} clients")
        return self._population.client(i)

    def __iter__(self) -> Iterator[Client]:
        for cid in range(len(self)):
            yield self._population.client(cid)

    def client_ids(self) -> range:
        """All client ids in the population (no materialization)."""
        return range(len(self))

    def resolve_client(self, client_id: int) -> Client:
        """Materialize one client on demand (membership's lazy actor map)."""
        return self._population.client(client_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClientRoster(n={len(self)})"


class _VirtualEdgeData:
    """Lazy :class:`~repro.data.dataset.EdgeAreaData` stand-in for one edge."""

    __slots__ = ("_population", "edge_id")

    def __init__(self, population: "VirtualPopulation", edge_id: int) -> None:
        self._population = population
        self.edge_id = int(edge_id)

    @property
    def test(self) -> Dataset:
        pop = self._population
        return pop.spec.edge_test(self.edge_id, image_generator=pop.image_generator)

    @property
    def name(self) -> str:
        return self._population.spec.edge_group(self.edge_id)

    @property
    def num_clients(self) -> int:
        return self._population.spec.clients_per_edge

    @property
    def train_size(self) -> int:
        spec = self._population.spec
        return spec.clients_per_edge * spec.samples_per_client

    @property
    def clients(self) -> list[Dataset]:
        """Materializes every shard of the area — diagnostics only."""
        pop = self._population
        return [pop.spec.client_shard(cid, image_generator=pop.image_generator)
                for cid in pop.spec.edge_client_ids(self.edge_id)]


class _LazyEdgeList:
    """Sequence of per-edge views; wrappers are created on access (stateless)."""

    __slots__ = ("_population",)

    def __init__(self, population: "VirtualPopulation") -> None:
        self._population = population

    def __len__(self) -> int:
        return self._population.spec.num_edges

    def __getitem__(self, index: int) -> _VirtualEdgeData:
        n = len(self)
        i = int(index)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(f"edge index {index} out of range for {n} edges")
        return _VirtualEdgeData(self._population, i)

    def __iter__(self) -> Iterator[_VirtualEdgeData]:
        for e in range(len(self)):
            yield _VirtualEdgeData(self._population, e)


class VirtualDatasetView:
    """Duck-typed :class:`~repro.data.dataset.FederatedDataset` over a spec.

    Shape queries are O(1); ``edges[e].test`` generates that edge's test set on
    access (pure in ``(seed, e)``, so repeated access is bit-identical).
    """

    def __init__(self, population: "VirtualPopulation") -> None:
        self._population = population
        self.edges = _LazyEdgeList(population)

    @property
    def spec(self) -> PopulationSpec:
        return self._population.spec

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_edges(self) -> int:
        return self.spec.num_edges

    @property
    def num_clients(self) -> int:
        return self.spec.num_clients

    @property
    def input_dim(self) -> int:
        return self.spec.input_dim

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    def clients_per_edge(self) -> list[int]:
        """Per-edge client counts under the dataset's method name."""
        return self.spec.clients_per_edge_list()

    def global_test(self) -> Dataset:
        """Union of all edge test sets — materializes O(num_edges) data."""
        return concat_datasets([self.edges[e].test for e in range(self.num_edges)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"VirtualDatasetView(edges={self.num_edges}, "
                f"clients={self.num_clients}, family={self.spec.family!r})")


class VirtualPopulation(Population):
    """A population derived on demand from a :class:`PopulationSpec`.

    One instance serves one algorithm run: the first ``build_*`` call binds the
    run's ``(batch_size, rng_factory)`` and a second binding with different
    parameters is rejected, because persisted sampler state is only meaningful
    for the streams it was drawn from.  ``run_experiment`` constructs a fresh
    population per roster entry for exactly this reason.
    """

    virtual = True

    def __init__(self, spec: PopulationSpec, *,
                 store: ClientStateStore | None = None) -> None:
        if not isinstance(spec, PopulationSpec):
            raise TypeError(f"spec must be a PopulationSpec, got {type(spec).__name__}")
        self.spec = spec
        self.store = store if store is not None else ClientStateStore()
        self._view = VirtualDatasetView(self)
        self._live: dict[int, Client] = {}
        self._rng_factory = None
        self._batch_size: int | None = None
        self._image_generator = None
        # Lifecycle counters (surfaced by the population bench / gate command).
        self.clients_materialized_total = 0
        self.max_live_clients = 0

    # ------------------------------------------------------------------
    # Population protocol
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> VirtualDatasetView:
        return self._view

    @property
    def image_generator(self):
        """Shared stateless image sampler (None for the synthetic family)."""
        if self.spec.family != "synthetic" and self._image_generator is None:
            self._image_generator = self.spec.image_generator()
        return self._image_generator

    def _bind(self, batch_size: int, rng_factory) -> None:
        if self._rng_factory is None:
            self._rng_factory = rng_factory
            self._batch_size = int(batch_size)
            return
        if (self._rng_factory.seed != rng_factory.seed
                or self._batch_size != int(batch_size)):
            raise ValueError(
                "a VirtualPopulation is bound to a single run (its persisted "
                "sampler state belongs to one RNG family); build a fresh "
                "VirtualPopulation per algorithm")
        self._rng_factory = rng_factory

    def build_edges(self, *, batch_size: int, rng_factory) -> list[VirtualEdgeServer]:
        """Bind run parameters and return one lazy edge actor per edge."""
        self._bind(batch_size, rng_factory)
        return [VirtualEdgeServer(e, self) for e in range(self.spec.num_edges)]

    def build_flat_clients(self, *, batch_size: int, rng_factory) -> VirtualClientRoster:
        """Bind run parameters and return the lazy flat-client roster."""
        self._bind(batch_size, rng_factory)
        return VirtualClientRoster(self)

    def eval_edge_ids(self, round_index: int) -> np.ndarray | None:
        """Evaluation cohort for ``round_index`` (see the spec's derivation law)."""
        return self.spec.eval_edge_ids(round_index)

    # ------------------------------------------------------------------
    # Cohort lifecycle
    # ------------------------------------------------------------------
    def client(self, client_id: int) -> Client:
        """Materialize (or return the live) client ``client_id``.

        Construction is a pure function of ``(spec.seed, client_id)`` — shard
        from the spec's data law, RNG stream from ``stream_at("client", cid)``,
        identical to the eager builder's per-client streams — composed with any
        persisted sampler state, so a re-visited client continues its minibatch
        sequence exactly where its last round left it.
        """
        cid = int(client_id)
        live = self._live.get(cid)
        if live is not None:
            return live
        if self._rng_factory is None:
            raise RuntimeError("population is unbound; call build_edges / "
                               "build_flat_clients first")
        shard = self.spec.client_shard(cid, image_generator=self.image_generator)
        rng = self._rng_factory.stream_at("client", cid)
        client = Client(cid, shard, self._batch_size, rng)
        sampler_state = self.store.get(cid, "sampler")
        if sampler_state is not None:
            restore_sampler_state(client.sampler, sampler_state)
        meta = self.store.get(cid, "meta")
        if meta is not None:
            client.sgd_steps_taken = int(meta["sgd_steps_taken"])
        self._live[cid] = client
        self.clients_materialized_total += 1
        if len(self._live) > self.max_live_clients:
            self.max_live_clients = len(self._live)
        return client

    def edge_clients(self, edge_id: int) -> list[Client]:
        """Materialize edge ``edge_id``'s full roster (the cohort unit)."""
        return [self.client(cid) for cid in self.spec.edge_client_ids(edge_id)]

    @property
    def live_client_ids(self) -> list[int]:
        return sorted(self._live)

    def flush(self) -> None:
        """Persist every live client's surviving state into the store.

        Clients that never advanced (no batches drawn, no SGD steps) are
        skipped: their state is still the pure function of ``(seed, cid)`` that
        materialization reproduces, so storing it would only grow the store.
        """
        for cid, client in self._live.items():
            if client.sampler.batches_drawn == 0 and client.sgd_steps_taken == 0:
                continue
            self.store.put(cid, sampler_state_token(client.sampler), "sampler")
            self.store.put(cid, {"sgd_steps_taken": int(client.sgd_steps_taken)},
                           "meta")

    def end_round(self, round_index: int, *, backend=None) -> None:
        """Flush and discard the round's cohort; release backend caches."""
        if not self._live:
            return
        ids = sorted(self._live)
        self.flush()
        self._live.clear()
        if backend is not None:
            backend.forget_clients(ids)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self, *, shard_dir=None) -> dict:
        """Checkpoint payload: spec fingerprint, state store, cohort counters.

        With ``shard_dir`` the store is persisted as checksummed sidecar shard
        files there (see :meth:`ClientStateStore.save_shards`) and the payload
        carries only the integrity *manifest* instead of the inlined entries —
        the layout for populations too large to embed in one JSON document.
        """
        self.flush()
        state = {
            "spec": self.spec.to_dict(),
            "counters": {
                "clients_materialized_total": int(self.clients_materialized_total),
                "max_live_clients": int(self.max_live_clients),
            },
        }
        if shard_dir is not None:
            state["store_manifest"] = self.store.save_shards(shard_dir)
        else:
            state["store"] = self.store.state_dict()
        return state

    def load_state_dict(self, state: Mapping, *, shard_dir=None,
                        shard_recovery: str = "fallback", obs=None) -> None:
        """Restore from :meth:`state_dict`; rejects a mismatched spec.

        A payload written with sidecar shards (``store_manifest``) requires
        ``shard_dir``.  ``shard_recovery`` maps onto the store's corruption
        policy: ``"fallback"`` (the default) raises
        :class:`~repro.population.store.ShardIntegrityError` on a damaged
        shard so the caller can fall back to the previous checkpoint
        generation bit-identically; ``"rederive"`` quarantines the shard and
        lets its clients re-derive from ``(spec.seed, cid)``.
        """
        saved_spec = state.get("spec")
        if saved_spec is not None:
            saved = {k: v for k, v in dict(saved_spec).items()}
            if saved != self.spec.to_dict():
                raise ValueError(
                    "checkpoint was written by a different PopulationSpec; "
                    f"saved {saved} vs current {self.spec.to_dict()}")
        self._live.clear()
        manifest = state.get("store_manifest")
        if manifest is not None:
            if shard_dir is None:
                raise ValueError(
                    "checkpoint stores client state in sidecar shard files; "
                    "pass shard_dir= to load it")
            on_corrupt = "rederive" if shard_recovery == "rederive" else "raise"
            self.store.load_shards(shard_dir, manifest,
                                   on_corrupt=on_corrupt, obs=obs)
        else:
            self.store.load_state_dict(state.get("store", {}))
        counters = dict(state.get("counters", {}))
        self.clients_materialized_total = int(
            counters.get("clients_materialized_total", 0))
        self.max_live_clients = int(counters.get("max_live_clients", 0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"VirtualPopulation(clients={self.spec.num_clients}, "
                f"edges={self.spec.num_edges}, live={len(self._live)}, "
                f"stored={len(self.store)})")
