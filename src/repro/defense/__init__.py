"""Byzantine robustness: attack models and robust aggregation.

Two halves (see DESIGN.md §8):

* **Attacks** — :class:`AttackPlan`, a seeded declarative attacker roster
  whose payload tampering is a pure function of ``(seed, round, client)``.
  Rides the fault layer: attach a plan to
  :class:`~repro.faults.FaultPlan` (``byzantine=``) and the
  :class:`~repro.faults.FaultInjector` poisons the roster's uploads at every
  ``receive()`` call site.
* **Defenses** — :class:`RobustAggregator` strategies (coordinate-wise
  median, trimmed mean, Krum/multi-Krum, norm clipping, plus the reference
  weighted mean), installable independently at the edge and cloud tiers via a
  :class:`DefensePolicy`, and the loss-report clip protecting the minimax
  simplex ascent.

``defense=None`` (or ``"mean"``) keeps every algorithm on its original code
paths — bit-identical to a build without this subsystem, regression-tested
across all execution backends.
"""

from repro.defense.aggregators import (
    AGGREGATORS,
    AggregationOutcome,
    CoordinateMedian,
    Krum,
    NormClip,
    RobustAggregator,
    TrimmedMean,
    WeightedMean,
    resolve_aggregator,
)
from repro.defense.attacks import ATTACKS, AttackPlan, apply_label_flip
from repro.defense.policy import (
    DefensePolicy,
    clip_loss_reports,
    resolve_defense,
    robust_combine,
)

__all__ = [
    "AGGREGATORS",
    "ATTACKS",
    "AggregationOutcome",
    "AttackPlan",
    "CoordinateMedian",
    "DefensePolicy",
    "Krum",
    "NormClip",
    "RobustAggregator",
    "TrimmedMean",
    "WeightedMean",
    "apply_label_flip",
    "clip_loss_reports",
    "resolve_aggregator",
    "resolve_defense",
    "robust_combine",
]
