"""Defense policy: which robust rule runs where, and the loss-report clip.

A :class:`DefensePolicy` binds up to three independent countermeasures:

* ``edge`` — the :class:`~repro.defense.aggregators.RobustAggregator` applied
  at the client→edge aggregation blocks (and the interior nodes of the
  multilayer generalization);
* ``cloud`` — the aggregator applied at the edge→cloud (or client→cloud)
  aggregation;
* ``loss_clip`` — the score-damped minimax weight update: reported losses are
  capped at ``loss_clip ×`` the round's median report before the simplex
  ascent, so a poisoned loss cannot dominate the fairness weights (the
  ``loss_inflation`` countermeasure).

``resolve_defense(None)`` — or a policy whose every slot is off — keeps
algorithms on their original code paths, bit-identical to a build without this
subsystem.  ``resolve_defense("mean")`` installs the reference aggregator,
which call sites also treat as the original path (regression-tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.defense.aggregators import (
    AGGREGATORS,
    RobustAggregator,
    TrimmedMean,
    resolve_aggregator,
)

__all__ = ["DefensePolicy", "resolve_defense", "robust_combine",
           "clip_loss_reports"]

#: Default loss cap (× median report) installed by single-name specs.
DEFAULT_LOSS_CLIP = 3.0


@dataclass(frozen=True)
class DefensePolicy:
    """Where each countermeasure is installed for one run."""

    edge: RobustAggregator | None = None
    cloud: RobustAggregator | None = None
    loss_clip: float | None = None

    def __post_init__(self) -> None:
        if self.loss_clip is not None and self.loss_clip <= 1.0:
            raise ValueError(
                f"loss_clip must be > 1 (a multiple of the median report) "
                f"or None, got {self.loss_clip}")

    @property
    def is_null(self) -> bool:
        """True when no countermeasure can alter any code path."""
        return (self.edge is None and self.cloud is None
                and self.loss_clip is None)

    def tier(self, which: str) -> RobustAggregator | None:
        """The *active* aggregator for ``"edge"`` or ``"cloud"``.

        Returns ``None`` for both an empty slot and the reference rule —
        call sites branch to their original inline accumulation in either
        case, which is what keeps the mean configuration bit-identical.
        """
        agg = self.edge if which == "edge" else self.cloud
        if agg is None or agg.reference:
            return None
        return agg

    def describe(self) -> str:
        """One-line ``edge=…,cloud=…[,loss_clip=…]`` summary for logs/CLI."""
        parts = [f"edge={self.edge.name if self.edge else 'mean'}",
                 f"cloud={self.cloud.name if self.cloud else 'mean'}"]
        if self.loss_clip is not None:
            parts.append(f"loss_clip={self.loss_clip:g}")
        return ",".join(parts)


def resolve_defense(spec) -> DefensePolicy | None:
    """Coerce ``spec`` into a :class:`DefensePolicy` (or ``None``).

    Accepted forms::

        None                          -> None (defense layer entirely absent)
        DefensePolicy(...)            -> itself
        TrimmedMean(0.3)              -> that rule at both tiers + loss clip
        "mean"                        -> reference policy (original code paths)
        "trimmed_mean"                -> trimmed mean at both tiers + loss clip
        "edge=median,cloud=krum"      -> per-tier rules, no loss clip unless set
        "trimmed_mean,trim=0.3,loss_clip=2.5"  -> parameterized
    """
    if spec is None or isinstance(spec, DefensePolicy):
        return spec
    if isinstance(spec, RobustAggregator):
        clip = None if spec.reference else DEFAULT_LOSS_CLIP
        return DefensePolicy(edge=spec, cloud=spec, loss_clip=clip)
    if not isinstance(spec, str):
        raise TypeError(f"defense must be None, a name, a RobustAggregator, "
                        f"or a DefensePolicy, got {type(spec).__name__}")
    both: str | None = None
    edge: str | None = None
    cloud: str | None = None
    loss_clip: float | None = None
    loss_clip_set = False
    trim: float | None = None
    for i, part in enumerate(spec.split(",")):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            if i == 0 and both is None:
                both = part
                continue
            raise ValueError(f"defense spec entry {part!r} is not key=value")
        key, _, raw = part.partition("=")
        key, raw = key.strip(), raw.strip()
        if key == "edge":
            edge = raw
        elif key == "cloud":
            cloud = raw
        elif key == "loss_clip":
            loss_clip = None if raw in ("none", "0") else float(raw)
            loss_clip_set = True
        elif key == "trim":
            trim = float(raw)
        else:
            raise ValueError(f"unknown defense spec key {key!r}; options: "
                             f"['edge', 'cloud', 'loss_clip', 'trim'] or a "
                             f"leading aggregator name {sorted(AGGREGATORS)}")

    def build(name: str | None) -> RobustAggregator | None:
        if name is None:
            return None
        if name == "trimmed_mean" and trim is not None:
            return TrimmedMean(trim=trim)
        return resolve_aggregator(name)

    if both is not None:
        agg = build(both)
        if not loss_clip_set and not (agg is None or agg.reference):
            loss_clip = DEFAULT_LOSS_CLIP
        return DefensePolicy(edge=agg, cloud=agg, loss_clip=loss_clip)
    return DefensePolicy(edge=build(edge), cloud=build(cloud),
                         loss_clip=loss_clip)


def robust_combine(aggregator: RobustAggregator, entries, *, ref=None,
                   faults=None, round_index: int = 0,
                   link: str = "") -> np.ndarray | None:
    """Run one aggregation point through ``aggregator`` with suspicion plumbing.

    ``entries`` is the round's delivered upload list ``[(sender, weight,
    vector), ...]``; returns the combined vector, or ``None`` when nothing was
    delivered (the caller degrades exactly as it would under faults).
    Rejected/clipped senders are reported to ``faults.suspect`` — which feeds
    the ``defense`` trace events and the ``byzantine_filtered_total`` counter.
    """
    if not entries:
        return None
    out = aggregator.combine([v for _, _, v in entries],
                             weights=[w for _, w, _ in entries], ref=ref)
    if faults is not None:
        for idx in out.rejected:
            faults.suspect(round_index, entries[idx][0], action="rejected",
                           aggregator=aggregator.name, link=link)
        for idx in out.clipped:
            faults.suspect(round_index, entries[idx][0], action="clipped",
                           aggregator=aggregator.name, link=link)
    return out.value


def clip_loss_reports(losses: dict, factor: float,
                      ) -> tuple[dict, list, float]:
    """Cap loss reports at ``factor ×`` their median (the score-damped update).

    Returns ``(clipped_losses, clipped_ids, cap)``.  With fewer than three
    reports the median is meaningless and nothing is clipped.
    """
    if len(losses) < 3:
        return losses, [], float("inf")
    cap = factor * float(np.median(list(losses.values())))
    if cap <= 0.0:
        return losses, [], cap
    clipped_ids = [k for k, v in losses.items() if v > cap]
    if not clipped_ids:
        return losses, [], cap
    out = {k: (cap if v > cap else v) for k, v in losses.items()}
    return out, clipped_ids, cap
