"""Byzantine attack models: a seeded, declarative attacker roster.

An :class:`AttackPlan` describes *who* is malicious and *what* they send.  Like
the fault layer's :class:`~repro.faults.plan.FaultPlan`, the plan itself never
draws random numbers: roster membership and every attack payload are pure
functions of ``(plan.seed, round, client)``, so the same plan reproduces the
same adversary regardless of the algorithm, execution backend, or how a run is
checkpointed and resumed.

Attack models
-------------
``sign_flip``
    The attacker sends ``ref - scale · (w - ref)``: its honest update direction
    reflected (and optionally amplified) around the broadcast model ``ref``.
``gauss``
    The honest update plus i.i.d. Gaussian noise of standard deviation
    ``scale`` — the classic omniscient-free noise attack.
``scale``
    Model replacement: ``ref + scale · (w - ref)``, the boosted update used in
    backdoor/model-replacement attacks.
``loss_inflation``
    Leaves model uploads untouched but multiplies every *scalar loss report*
    by ``scale`` — aimed squarely at the minimax weight ascent (Eq. (7)),
    where an inflated loss drags the fairness weights toward the attacker.
``label_flip``
    A data-poisoning attack applied before training via
    :func:`apply_label_flip`: the attacker's shard labels are remapped
    ``y → (C-1) - y``.  No payload is tampered at runtime.

Colluding attackers (``colluding=True`` or an explicit group) share a single
per-round noise draw, so e.g. ``gauss`` colluders submit *identical* poisoned
models — the worst case for distance-based defenses like Krum.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.utils.rng import stable_key
from repro.utils.validation import check_probability

__all__ = ["ATTACKS", "AttackPlan", "apply_label_flip"]

#: Recognized attack model names (``"none"`` additionally disables the roster).
ATTACKS = ("sign_flip", "gauss", "scale", "loss_inflation", "label_flip")

#: Attack models that tamper with *array* (model) payloads.
MODEL_ATTACKS = ("sign_flip", "gauss", "scale")

#: Default magnitude per attack when ``AttackPlan.scale`` is left unset.
_DEFAULT_SCALE = {"sign_flip": 1.0, "gauss": 1.0, "scale": 10.0,
                  "loss_inflation": 10.0, "label_flip": 1.0}


@dataclass(frozen=True)
class AttackPlan:
    """Seeded description of the Byzantine adversary for one run.

    Parameters
    ----------
    attack:
        One of :data:`ATTACKS`, or ``"none"`` (no adversary).
    fraction:
        Probability each client is Byzantine, drawn once per client from the
        roster stream keyed on ``(seed, client_id)`` — membership is stable
        across rounds, algorithms, and roster sizes.
    clients:
        Explicitly Byzantine client ids, unioned with the ``fraction`` draw.
    colluding:
        When true, all attackers share one attack draw per round — colluders
        submit identical poisoned payloads instead of independent ones.
    scale:
        Attack magnitude (reflection gain, noise std, boost factor, or loss
        multiplier); ``None`` selects a per-attack default.
    start_round:
        First round the adversary acts; roster members behave honestly before
        it (models a late compromise).
    seed:
        Root seed of the attack process — independent of both the algorithm
        seed and the fault seed.
    """

    attack: str = "none"
    fraction: float = 0.0
    clients: tuple[int, ...] = ()
    colluding: bool = False
    scale: float | None = None
    start_round: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attack != "none" and self.attack not in ATTACKS:
            raise ValueError(f"unknown attack {self.attack!r}; "
                             f"options: {list(ATTACKS)}")
        check_probability(self.fraction, "fraction")
        object.__setattr__(self, "clients",
                           tuple(int(c) for c in self.clients))
        if any(c < 0 for c in self.clients):
            raise ValueError(f"client ids must be >= 0, got {self.clients}")
        if self.scale is not None and self.scale <= 0:
            raise ValueError(f"scale must be > 0 or None, got {self.scale}")
        if self.start_round < 0:
            raise ValueError(
                f"start_round must be >= 0, got {self.start_round}")

    # ------------------------------------------------------------- inspection
    @property
    def is_null(self) -> bool:
        """True when no client can ever attack under this plan."""
        return (self.attack == "none"
                or (self.fraction == 0.0 and not self.clients))

    @property
    def effective_scale(self) -> float:
        """The configured ``scale``, or the attack model's default."""
        if self.scale is not None:
            return float(self.scale)
        return _DEFAULT_SCALE.get(self.attack, 1.0)

    def is_byzantine(self, client_id: int) -> bool:
        """Roster membership — a pure function of ``(seed, client_id)``."""
        if self.is_null:
            return False
        if int(client_id) in self.clients:
            return True
        if self.fraction <= 0.0:
            return False
        gen = self._rng("roster", int(client_id))
        return bool(gen.random() < self.fraction)

    def roster(self, num_clients: int) -> tuple[int, ...]:
        """All Byzantine client ids among ``range(num_clients)``."""
        return tuple(c for c in range(num_clients) if self.is_byzantine(c))

    def active(self, round_index: int, client_id: int) -> bool:
        """Does this client attack in this round?"""
        return (round_index >= self.start_round
                and self.is_byzantine(client_id))

    # ---------------------------------------------------------------- attacks
    def _rng(self, kind: str, *key: int) -> np.random.Generator:
        ss = np.random.SeedSequence(
            entropy=self.seed,
            spawn_key=(stable_key("byzantine"), stable_key(kind), *key))
        return np.random.default_rng(ss)

    def _draw_key(self, round_index: int, client_id: int) -> tuple[int, ...]:
        # Colluders share one draw per round; independent attackers get one
        # per (round, client).
        if self.colluding:
            return (round_index,)
        return (round_index, int(client_id))

    def tamper_model(self, round_index: int, client_id: int,
                     payload: np.ndarray,
                     ref: np.ndarray | None) -> np.ndarray:
        """The poisoned model upload replacing ``payload`` this round.

        ``ref`` is the broadcast (reference) model the honest update was
        computed from; attacks operate on the *delta* against it when
        available, matching how model-poisoning is defined in the literature.
        """
        s = self.effective_scale
        if self.attack == "sign_flip":
            if ref is None:
                return -s * payload
            return ref - s * (payload - ref)
        if self.attack == "scale":
            if ref is None:
                return s * payload
            return ref + s * (payload - ref)
        if self.attack == "gauss":
            gen = self._rng("gauss", *self._draw_key(round_index, client_id))
            return payload + s * gen.standard_normal(payload.size)
        return payload

    def tamper_loss(self, round_index: int, client_id: int,
                    loss: float) -> float:
        """The poisoned scalar loss report replacing ``loss`` this round."""
        if self.attack == "loss_inflation":
            return float(loss) * self.effective_scale
        return float(loss)

    # ----------------------------------------------------------- construction
    @classmethod
    def none(cls) -> "AttackPlan":
        """The adversary-free plan."""
        return cls()

    @classmethod
    def parse(cls, spec: str) -> "AttackPlan":
        """Build a plan from a CLI spec.

        The first (or only) bare token names the attack; the rest are
        ``key=value`` pairs::

            AttackPlan.parse("sign_flip,fraction=0.2,scale=5,seed=1")
            AttackPlan.parse("label_flip,clients=0|3|7")
            AttackPlan.parse("gauss,fraction=0.3,colluding=1,start_round=10")
        """
        kwargs: dict = {}
        known = {f.name for f in fields(cls)}
        for i, part in enumerate(spec.split(",")):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                if i == 0 and "attack" not in kwargs:
                    kwargs["attack"] = part
                    continue
                raise ValueError(
                    f"attack spec entry {part!r} is not key=value")
            key, _, raw = part.partition("=")
            key, raw = key.strip(), raw.strip()
            if key not in known:
                raise ValueError(f"unknown attack spec key {key!r}; "
                                 f"options: {sorted(known)}")
            if key == "attack":
                kwargs[key] = raw
            elif key == "clients":
                kwargs[key] = tuple(int(c) for c in raw.split("|") if c)
            elif key in ("seed", "start_round"):
                kwargs[key] = int(raw)
            elif key == "colluding":
                kwargs[key] = bool(int(raw))
            else:
                kwargs[key] = float(raw)
        return cls(**kwargs)


def apply_label_flip(dataset, plan: AttackPlan):
    """Return ``dataset`` with the plan's attackers' shard labels flipped.

    Byzantine clients (flat edge-major ids, matching
    :func:`repro.sim.builder.build_edge_servers`) get every label remapped
    ``y → (num_classes - 1) - y``; honest shards are shared, not copied.  A
    null plan — or one whose attack is not ``label_flip`` — returns the
    dataset unchanged, so callers can apply this unconditionally.
    """
    from repro.data.dataset import Dataset, EdgeAreaData, FederatedDataset

    if plan is None or plan.is_null or plan.attack != "label_flip":
        return dataset
    c_max = dataset.num_classes - 1
    edges = []
    client_id = 0
    flipped_any = False
    for edge_data in dataset.edges:
        shards = []
        for shard in edge_data.clients:
            if plan.is_byzantine(client_id):
                shards.append(Dataset(shard.X, c_max - shard.y,
                                      shard.num_classes))
                flipped_any = True
            else:
                shards.append(shard)
            client_id += 1
        edges.append(EdgeAreaData(shards, edge_data.test,
                                  name=edge_data.name))
    if not flipped_any:
        return dataset
    return FederatedDataset(edges, name=dataset.name)
