"""Pluggable Byzantine-robust aggregation rules.

A :class:`RobustAggregator` combines the model vectors one aggregation point
received this round into a single vector, flagging the uploads it rejected or
clipped so the caller can feed the per-round suspicion metrics.  Aggregators
are stateless strategy objects: the same instance may serve the edge tier, the
cloud tier, several algorithms, and every execution backend — combine() is
pure NumPy on the already-delivered payload list, so it is orthogonal to *how*
the local steps ran.

Provable tolerance (n uploads, f Byzantine; see DESIGN.md §8):

================  =============================================================
``mean``          f = 0 (the reference rule; one attacker controls the output)
``median``        f ≤ ⌊(n-1)/2⌋ per coordinate
``trimmed_mean``  f ≤ ⌊trim·n⌋ per coordinate (trim each tail)
``krum``          f ≤ (n-3)/2 via distance scores (needs n ≥ f+3)
``norm_clip``     unbounded-magnitude attacks reduced to bounded perturbations
================  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["AGGREGATORS", "AggregationOutcome", "RobustAggregator",
           "WeightedMean", "CoordinateMedian", "TrimmedMean", "Krum",
           "NormClip", "resolve_aggregator"]


@dataclass(frozen=True)
class AggregationOutcome:
    """The combined vector plus who the rule distrusted.

    ``rejected`` indices contributed nothing (or almost nothing) to the
    output; ``clipped`` indices contributed a deliberately attenuated version
    of their upload.  Indices refer to positions in the ``vectors`` argument
    of :meth:`RobustAggregator.combine`.
    """

    value: np.ndarray
    rejected: tuple[int, ...] = ()
    clipped: tuple[int, ...] = ()


class RobustAggregator:
    """Strategy interface: combine one round's uploads at one aggregation point."""

    #: Registry/display name.
    name = "abstract"
    #: True only for the reference rule — call sites keep their original
    #: inline accumulation (bit-identical to a build without this subsystem).
    reference = False

    def combine(self, vectors, weights=None, ref=None) -> AggregationOutcome:
        """Aggregate ``vectors`` (list of 1-D float64 arrays).

        Parameters
        ----------
        weights:
            Optional per-upload aggregation weights (client data shares, …).
            Rules that sort per coordinate ignore them — robustness comes from
            order statistics, which have no natural weighting.
        ref:
            The broadcast model the uploads responded to; used by rules that
            operate on update deltas (norm clipping).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _stack(vectors) -> np.ndarray:
    if not vectors:
        raise ValueError("combine() needs at least one vector")
    return np.stack([np.asarray(v, dtype=np.float64) for v in vectors])


def _weighted_mean(mat: np.ndarray, weights) -> np.ndarray:
    if weights is None:
        return mat.mean(axis=0)
    w = np.asarray(weights, dtype=np.float64)
    return (w[:, None] * mat).sum(axis=0) / w.sum()


class WeightedMean(RobustAggregator):
    """The reference (non-robust) rule: the plain weighted average.

    Installed explicitly this class *is* exercised, but resolve paths mark it
    ``reference`` so algorithm call sites keep their original accumulation
    loop — guaranteeing the mean-aggregator configuration stays bit-identical
    to a build without the defense subsystem.
    """

    name = "mean"
    reference = True

    def combine(self, vectors, weights=None, ref=None) -> AggregationOutcome:
        """Weighted average of the uploads; never rejects anyone."""
        mat = _stack(vectors)
        return AggregationOutcome(value=_weighted_mean(mat, weights))


class CoordinateMedian(RobustAggregator):
    """Coordinate-wise median — breakdown point ⌊(n-1)/2⌋ per coordinate."""

    name = "median"

    def combine(self, vectors, weights=None, ref=None) -> AggregationOutcome:
        """Per-coordinate median; flags uploads unusually far from it."""
        mat = _stack(vectors)
        value = np.median(mat, axis=0)
        # Suspicion: uploads far from the median in aggregate (> 3x the
        # median distance) likely sat in the trimmed tails everywhere.
        dist = np.linalg.norm(mat - value, axis=1)
        cutoff = 3.0 * max(float(np.median(dist)), 1e-12)
        rejected = tuple(int(i) for i in np.nonzero(dist > cutoff)[0])
        return AggregationOutcome(value=value, rejected=rejected)


@dataclass(repr=False)
class TrimmedMean(RobustAggregator):
    """Coordinate-wise trimmed mean: drop the ``trim`` fraction of each tail.

    With ``k = ⌊trim·n⌋`` values removed from both ends of every coordinate,
    the rule tolerates up to ``k`` Byzantine uploads per coordinate; ``trim``
    must therefore exceed the expected attacker fraction.
    """

    trim: float = 0.2
    name: str = field(default="trimmed_mean", init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.trim < 0.5:
            raise ValueError(f"trim must be in (0, 0.5), got {self.trim}")

    def combine(self, vectors, weights=None, ref=None) -> AggregationOutcome:
        """Mean of each coordinate after trimming ``k`` values off both tails."""
        mat = _stack(vectors)
        n = mat.shape[0]
        k = min(int(self.trim * n), (n - 1) // 2)
        if k < 1:
            return AggregationOutcome(value=_weighted_mean(mat, weights))
        order = np.argsort(mat, axis=0, kind="stable")
        kept = np.sort(mat, axis=0)[k:n - k]
        value = kept.mean(axis=0)
        # Suspicion: how often each upload landed in a trimmed tail.
        tails = np.concatenate([order[:k], order[n - k:]]).ravel()
        counts = np.bincount(tails, minlength=n)
        rejected = tuple(int(i) for i in np.nonzero(
            2 * counts > mat.shape[1])[0])  # trimmed in > half the coords
        return AggregationOutcome(value=value, rejected=rejected)


@dataclass(repr=False)
class Krum(RobustAggregator):
    """Krum / multi-Krum (Blanchard et al., NeurIPS '17).

    Each upload is scored by the sum of its squared distances to its
    ``n - f - 2`` nearest peers; the ``m`` lowest-scored uploads are averaged
    (``m = 1`` is classic Krum).  ``f`` defaults to the largest tolerable
    value ``⌊(n-3)/2⌋`` per combine call; with fewer than 3 uploads the rule
    degenerates to the weighted mean (scores are undefined).
    """

    f: int | None = None
    m: int = 1
    name: str = field(default="krum", init=False)

    def __post_init__(self) -> None:
        if self.f is not None and self.f < 0:
            raise ValueError(f"f must be >= 0 or None, got {self.f}")
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        if self.m > 1:
            self.name = "multi_krum"

    def combine(self, vectors, weights=None, ref=None) -> AggregationOutcome:
        """Average the ``m`` uploads with the lowest Krum distance scores."""
        mat = _stack(vectors)
        n = mat.shape[0]
        f = (max(0, (n - 3) // 2) if self.f is None
             else min(self.f, max(0, n - 3)))
        n_near = n - f - 2
        if n < 3 or n_near < 1:
            return AggregationOutcome(value=_weighted_mean(mat, weights))
        sq = np.sum((mat[:, None, :] - mat[None, :, :]) ** 2, axis=2)
        np.fill_diagonal(sq, np.inf)
        scores = np.sum(np.sort(sq, axis=1)[:, :n_near], axis=1)
        m = min(self.m, n)
        chosen = np.sort(np.argsort(scores, kind="stable")[:m])
        value = mat[chosen].mean(axis=0)
        rejected = tuple(int(i) for i in range(n) if i not in set(chosen))
        return AggregationOutcome(value=value, rejected=rejected)


@dataclass(repr=False)
class NormClip(RobustAggregator):
    """Clip update-delta norms before averaging.

    Each upload's delta against the broadcast model ``ref`` is rescaled to at
    most ``max_norm`` (or ``factor ×`` the round's median delta norm when
    ``max_norm`` is unset), then the weighted mean is taken.  This does not
    exclude attackers but bounds the damage any single upload can do —
    effective against magnitude attacks, not direction attacks.
    """

    max_norm: float | None = None
    factor: float = 2.0
    name: str = field(default="norm_clip", init=False)

    def __post_init__(self) -> None:
        if self.max_norm is not None and self.max_norm <= 0:
            raise ValueError(f"max_norm must be > 0 or None, got {self.max_norm}")
        if self.factor <= 0:
            raise ValueError(f"factor must be > 0, got {self.factor}")

    def combine(self, vectors, weights=None, ref=None) -> AggregationOutcome:
        """Weighted mean of deltas vs ``ref`` after rescaling oversized norms."""
        mat = _stack(vectors)
        origin = (np.zeros(mat.shape[1]) if ref is None
                  else np.asarray(ref, dtype=np.float64))
        deltas = mat - origin
        norms = np.linalg.norm(deltas, axis=1)
        bound = (self.max_norm if self.max_norm is not None
                 else self.factor * float(np.median(norms)))
        if bound <= 0.0:  # all uploads identical to ref: nothing to clip
            return AggregationOutcome(value=_weighted_mean(mat, weights))
        scale = np.minimum(1.0, bound / np.maximum(norms, 1e-300))
        clipped = tuple(int(i) for i in np.nonzero(scale < 1.0)[0])
        value = origin + _weighted_mean(scale[:, None] * deltas, weights)
        return AggregationOutcome(value=value, clipped=clipped)


#: Name → zero-argument constructor for :func:`resolve_aggregator`.
AGGREGATORS = {
    "mean": WeightedMean,
    "median": CoordinateMedian,
    "trimmed_mean": TrimmedMean,
    "krum": Krum,
    "multi_krum": lambda: Krum(m=3),
    "norm_clip": NormClip,
}


def resolve_aggregator(spec) -> RobustAggregator | None:
    """Coerce ``spec`` (``None`` | name | instance) into an aggregator."""
    if spec is None or isinstance(spec, RobustAggregator):
        return spec
    if isinstance(spec, str):
        try:
            return AGGREGATORS[spec]()
        except KeyError:
            raise ValueError(f"unknown aggregator {spec!r}; options: "
                             f"{sorted(AGGREGATORS)}") from None
    raise TypeError(f"aggregator must be None, a name, or a RobustAggregator, "
                    f"got {type(spec).__name__}")
