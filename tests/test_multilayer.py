"""Tests for the multi-layer generalization (tree topology + algorithm)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hierminimax import HierMinimax
from repro.multilayer.algorithm import MultiLevelHierMinimax
from repro.multilayer.tree import HierarchyTree
from repro.nn.models import make_model_factory

from tests.conftest import make_blob_fed


class TestHierarchyTree:
    def test_regular_paper_layout(self):
        tree = HierarchyTree.regular([10, 3])
        assert tree.depth == 2
        assert tree.num_top_areas == 10
        assert tree.num_clients == 30
        assert tree.level_sizes() == [1, 10, 30]

    def test_regular_four_layers(self):
        tree = HierarchyTree.regular([2, 3, 4])
        assert tree.depth == 3
        assert tree.num_clients == 24
        assert tree.level_sizes() == [1, 2, 6, 24]

    def test_regular_validates(self):
        with pytest.raises(ValueError):
            HierarchyTree.regular([])
        with pytest.raises(ValueError):
            HierarchyTree.regular([3, 0])

    def test_children_of(self):
        tree = HierarchyTree.regular([2, 3])
        assert tree.children_of(0, 0) == [0, 1]
        assert tree.children_of(1, 1) == [3, 4, 5]
        with pytest.raises(IndexError):
            tree.children_of(2, 0)
        with pytest.raises(IndexError):
            tree.children_of(1, 2)

    def test_leaves_under(self):
        tree = HierarchyTree.regular([2, 2, 2])
        np.testing.assert_array_equal(tree.leaves_under(1, 1), [4, 5, 6, 7])
        np.testing.assert_array_equal(tree.leaves_under(0, 0), np.arange(8))
        np.testing.assert_array_equal(tree.leaves_under(3, 5), [5])

    def test_irregular_tree(self):
        tree = HierarchyTree([[[0, 1]], [[0], [1, 2]]])
        assert tree.num_clients == 3
        np.testing.assert_array_equal(tree.leaves_under(1, 1), [1, 2])

    def test_invalid_trees_rejected(self):
        with pytest.raises(ValueError):
            HierarchyTree([])
        with pytest.raises(ValueError):
            HierarchyTree([[[0, 1]], [[0], []]])  # empty child list
        with pytest.raises(ValueError):
            HierarchyTree([[[0, 1]], [[0, 1], [1]]])  # node 1 has two parents
        with pytest.raises(ValueError):
            HierarchyTree([[[0, 1]], [[0], [2]]])  # child 1 missing
        with pytest.raises(ValueError):
            HierarchyTree([[[0], [1]]])  # two roots

    def test_link_names(self):
        assert HierarchyTree.regular([2, 2]).link_names() == ["level_1", "level_2"]

    def test_validate_dataset(self):
        fed = make_blob_fed(num_edges=3, clients_per_edge=2)
        HierarchyTree.regular([3, 2]).validate_dataset(fed)
        with pytest.raises(ValueError):
            HierarchyTree.regular([2, 3]).validate_dataset(fed)


class TestMultiLevelAlgorithm:
    @pytest.fixture()
    def fed(self):
        return make_blob_fed(num_edges=4, clients_per_edge=2, n_per_client=12,
                             dim=4, seed=1)

    @pytest.fixture()
    def factory(self, fed):
        return make_model_factory("logistic", fed.input_dim, fed.num_classes)

    def test_depth2_matches_hierminimax_bitwise(self, fed, factory):
        """With depth 2 and taus (τ2, τ1) the generalization IS Algorithm 1."""
        common = dict(batch_size=4, eta_w=0.1, seed=11)
        hm = HierMinimax(fed, factory, eta_p=0.05, tau1=3, tau2=2, m_edges=2,
                         **common)
        ml = MultiLevelHierMinimax(fed, factory, taus=(2, 3), eta_p=0.05,
                                   m_top=2, **common)
        for k in range(4):
            hm.run_round(k)
            ml.run_round(k)
            np.testing.assert_array_equal(hm.w, ml.w)
            np.testing.assert_array_equal(hm.p, ml.p)

    def test_default_tree_inferred(self, fed, factory):
        algo = MultiLevelHierMinimax(fed, factory, seed=0)
        assert algo.tree.depth == 2
        assert algo.tree.num_top_areas == 4
        assert algo.slots_per_round == 4  # default taus (2, 2)

    def test_three_level_tree_runs_and_learns(self, factory):
        fed = make_blob_fed(num_edges=2, clients_per_edge=4, n_per_client=12,
                            dim=4, seed=1)
        factory = make_model_factory("logistic", fed.input_dim, fed.num_classes)
        tree = HierarchyTree.regular([2, 2, 2])
        algo = MultiLevelHierMinimax(fed, factory, tree=tree, taus=(2, 2, 2),
                                     eta_w=0.15, eta_p=0.02, batch_size=4, seed=0)
        assert algo.slots_per_round == 8
        res = algo.run(rounds=40, eval_every=40)
        assert res.history.final().record.average_accuracy > 0.9
        assert res.final_weights.sum() == pytest.approx(1.0)

    def test_deeper_tree_has_cheaper_top_link(self, factory):
        """At a fixed slot budget, a deeper tree spends fewer top-link cycles."""
        fed = make_blob_fed(num_edges=2, clients_per_edge=4, n_per_client=12,
                            dim=4, seed=1)
        factory = make_model_factory("logistic", fed.input_dim, fed.num_classes)
        flat_tree = HierarchyTree([[[0, 1]],
                                   [[0, 1, 2, 3], [4, 5, 6, 7]]])
        deep_tree = HierarchyTree.regular([2, 2, 2])
        slots = 48
        flat = MultiLevelHierMinimax(fed, factory, tree=flat_tree, taus=(1, 2),
                                     eta_w=0.1, eta_p=0.02, batch_size=4, seed=0)
        deep = MultiLevelHierMinimax(fed, factory, tree=deep_tree, taus=(2, 2, 2),
                                     eta_w=0.1, eta_p=0.02, batch_size=4, seed=0)
        flat.run(rounds=slots // flat.slots_per_round, eval_every=100)
        deep.run(rounds=slots // deep.slots_per_round, eval_every=100)
        assert deep.tracker.snapshot().cycles["level_1"] < \
            flat.tracker.snapshot().cycles["level_1"]

    def test_communication_accounting_exact(self, fed, factory):
        m_top, taus = 2, (2, 3)
        algo = MultiLevelHierMinimax(fed, factory, taus=taus, m_top=m_top,
                                     eta_w=0.1, eta_p=0.02, batch_size=4, seed=0)
        K = 3
        for k in range(K):
            algo.run_round(k)
        cycles = algo.tracker.snapshot().cycles
        assert cycles["level_1"] == 2 * K                      # phase 1 + phase 2
        assert cycles["level_2"] == K * m_top * (taus[0] + 1)  # blocks + loss est.

    def test_validations(self, fed, factory):
        with pytest.raises(ValueError):
            MultiLevelHierMinimax(fed, factory, taus=(2,))  # wrong arity
        with pytest.raises(ValueError):
            MultiLevelHierMinimax(fed, factory, taus=(0, 2))
        with pytest.raises(ValueError):
            MultiLevelHierMinimax(fed, factory, m_top=5)  # only 4 areas

    def test_checkpoint_digit_decoding(self, fed, factory):
        algo = MultiLevelHierMinimax(fed, factory, taus=(3, 4), seed=0)
        seen = set()
        for slot in range(12):
            digits = algo._decode_checkpoint(slot)
            assert 0 <= digits[0] < 3 and 0 <= digits[1] < 4
            seen.add(digits)
        assert len(seen) == 12  # bijective over the round's slots

    def test_weights_follow_hard_area(self, factory):
        """p concentrates on the top-level area with the harder data."""
        from repro.data.dataset import Dataset, EdgeAreaData, FederatedDataset

        gen = np.random.default_rng(0)
        edges = []
        for e in range(2):
            sep = 4.0 if e == 0 else 0.3  # area 1 is nearly inseparable
            centers = sep * np.array([[1.0, 1.0], [-1.0, -1.0]])
            def mk(n):
                y = np.repeat([0, 1], n // 2)
                return Dataset(centers[y] + gen.normal(size=(n, 2)), y, 2)
            edges.append(EdgeAreaData([mk(24), mk(24)], mk(16)))
        fed2 = FederatedDataset(edges)
        factory2 = make_model_factory("logistic", 2, 2)
        algo = MultiLevelHierMinimax(fed2, factory2, taus=(2, 2), eta_w=0.1,
                                     eta_p=0.05, batch_size=6, seed=0)
        algo.run(rounds=40, eval_every=40)
        assert algo.p[1] > 0.6
