"""Tests for repro.ops.projections, including hypothesis property tests.

The simplex projection is load-bearing for the weight update (Eq. (7)); its
correctness is verified against first principles (feasibility, idempotency,
variational optimality) and against a brute-force QP on small instances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ops.projections import (
    identity_projection,
    project_box,
    project_capped_simplex,
    project_l2_ball,
    project_simplex,
)

finite_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=12),
    elements=st.floats(min_value=-50, max_value=50, allow_nan=False,
                       allow_infinity=False),
)


class TestProjectSimplex:
    def test_already_on_simplex_is_fixed_point(self):
        p = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(project_simplex(p), p)

    def test_uniform_from_constant_vector(self):
        out = project_simplex(np.full(4, 10.0))
        np.testing.assert_allclose(out, np.full(4, 0.25))

    def test_one_hot_for_dominant_coordinate(self):
        out = project_simplex(np.array([10.0, 0.0, 0.0]))
        np.testing.assert_allclose(out, [1.0, 0.0, 0.0])

    def test_radius(self):
        out = project_simplex(np.array([1.0, 2.0, 3.0]), radius=2.0)
        assert out.sum() == pytest.approx(2.0)
        assert np.all(out >= 0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            project_simplex(np.array([]))

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            project_simplex(np.zeros((2, 2)))

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            project_simplex(np.ones(3), radius=0.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            project_simplex(np.array([np.nan, 0.0]))

    @settings(max_examples=200, deadline=None)
    @given(v=finite_vectors)
    def test_property_feasible(self, v):
        out = project_simplex(v)
        assert np.all(out >= 0)
        assert out.sum() == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=200, deadline=None)
    @given(v=finite_vectors)
    def test_property_idempotent(self, v):
        out = project_simplex(v)
        np.testing.assert_allclose(project_simplex(out), out, atol=1e-9)

    @settings(max_examples=100, deadline=None)
    @given(v=finite_vectors)
    def test_property_closest_point(self, v):
        """Variational optimality: no random feasible point is closer than Π(v)."""
        out = project_simplex(v)
        gen = np.random.default_rng(0)
        dist = np.linalg.norm(out - v)
        for _ in range(20):
            candidate = gen.dirichlet(np.ones(v.size))
            assert np.linalg.norm(candidate - v) >= dist - 1e-9

    def test_matches_scipy_qp_small(self):
        """Cross-check against a high-accuracy constrained solve."""
        from scipy.optimize import minimize

        gen = np.random.default_rng(1)
        for _ in range(5):
            v = gen.normal(size=4) * 3
            out = project_simplex(v)
            res = minimize(
                lambda x: 0.5 * np.sum((x - v) ** 2), np.full(4, 0.25),
                constraints=[{"type": "eq", "fun": lambda x: x.sum() - 1}],
                bounds=[(0, None)] * 4, method="SLSQP",
                options={"ftol": 1e-12, "maxiter": 500})
            np.testing.assert_allclose(out, res.x, atol=1e-6)


class TestProjectCappedSimplex:
    def test_reduces_to_simplex_when_unconstrained(self):
        v = np.array([0.5, -1.0, 2.0, 0.1])
        np.testing.assert_allclose(project_capped_simplex(v, 0.0, 1.0),
                                   project_simplex(v), atol=1e-8)

    def test_respects_lower_bound(self):
        out = project_capped_simplex(np.array([10.0, 0.0, 0.0]), lo=0.1, hi=1.0)
        assert np.all(out >= 0.1 - 1e-9)
        assert out.sum() == pytest.approx(1.0)
        assert out[0] == pytest.approx(0.8)

    def test_respects_upper_bound(self):
        out = project_capped_simplex(np.array([10.0, 10.0, 0.0]), lo=0.0, hi=0.4)
        assert np.all(out <= 0.4 + 1e-9)
        assert out.sum() == pytest.approx(1.0)

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            project_capped_simplex(np.ones(3), lo=0.5, hi=1.0)  # 3*0.5 > 1

    def test_lo_above_hi_raises(self):
        with pytest.raises(ValueError):
            project_capped_simplex(np.ones(3), lo=0.6, hi=0.4)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            project_capped_simplex(np.zeros((2, 2)))

    @settings(max_examples=100, deadline=None)
    @given(v=hnp.arrays(dtype=np.float64, shape=st.integers(2, 10),
                        elements=st.floats(-20, 20, allow_nan=False)))
    def test_property_feasible(self, v):
        lo, hi = 0.02, 0.9
        out = project_capped_simplex(v, lo, hi)
        assert np.all(out >= lo - 1e-8)
        assert np.all(out <= hi + 1e-8)
        assert out.sum() == pytest.approx(1.0, abs=1e-6)


class TestProjectL2Ball:
    def test_inside_unchanged(self):
        v = np.array([0.1, 0.2])
        np.testing.assert_array_equal(project_l2_ball(v, 1.0), v)

    def test_outside_scaled_to_boundary(self):
        out = project_l2_ball(np.array([3.0, 4.0]), 1.0)
        assert np.linalg.norm(out) == pytest.approx(1.0)
        np.testing.assert_allclose(out, [0.6, 0.8])

    def test_center_shift(self):
        center = np.array([1.0, 1.0])
        out = project_l2_ball(np.array([5.0, 1.0]), 2.0, center=center)
        np.testing.assert_allclose(out, [3.0, 1.0])

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            project_l2_ball(np.ones(2), -1.0)

    def test_center_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            project_l2_ball(np.ones(2), 1.0, center=np.ones(3))

    @settings(max_examples=100, deadline=None)
    @given(v=finite_vectors, radius=st.floats(0.1, 10))
    def test_property_inside_ball(self, v, radius):
        out = project_l2_ball(v, radius)
        assert np.linalg.norm(out) <= radius + 1e-9


class TestProjectBox:
    def test_clip(self):
        np.testing.assert_array_equal(
            project_box(np.array([-1.0, 0.5, 2.0]), 0.0, 1.0), [0.0, 0.5, 1.0])

    def test_bad_bounds_raise(self):
        with pytest.raises(ValueError):
            project_box(np.ones(2), 1.0, 0.0)


class TestIdentity:
    def test_identity_returns_same_object(self):
        v = np.ones(3)
        assert identity_projection(v) is v
