"""Tests for repro.data.dataset containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset, EdgeAreaData, FederatedDataset, concat_datasets


def _ds(n=10, d=3, classes=4, seed=0):
    gen = np.random.default_rng(seed)
    return Dataset(gen.normal(size=(n, d)), gen.integers(0, classes, size=n), classes)


class TestDataset:
    def test_basic_properties(self):
        ds = _ds(10, 3, 4)
        assert len(ds) == 10
        assert ds.input_dim == 3
        assert ds.num_classes == 4

    def test_contiguous_float64(self):
        ds = _ds()
        assert ds.X.flags["C_CONTIGUOUS"]
        assert ds.X.dtype == np.float64
        assert ds.y.dtype == np.int64

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros(5), np.zeros(5, dtype=int), 2)

    def test_rejects_label_mismatch(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 2)), np.zeros(3, dtype=int), 2)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 2)), np.array([0, 5]), 2)

    def test_rejects_bad_num_classes(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 2)), np.zeros(2, dtype=int), 0)

    def test_subset(self):
        ds = _ds(10)
        sub = ds.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.X, ds.X[[0, 2, 4]])

    def test_subset_is_copy(self):
        ds = _ds()
        sub = ds.subset(np.array([0]))
        sub.X[0, 0] = 999.0
        assert ds.X[0, 0] != 999.0

    def test_shuffled_preserves_pairs(self):
        ds = _ds(20)
        shuffled = ds.shuffled(np.random.default_rng(0))
        # Every (x, y) pair must still exist.
        order = np.lexsort(ds.X.T)
        order_s = np.lexsort(shuffled.X.T)
        np.testing.assert_array_equal(ds.X[order], shuffled.X[order_s])
        np.testing.assert_array_equal(ds.y[order], shuffled.y[order_s])

    def test_split_sizes(self):
        a, b = _ds(10).split(0.3)
        assert len(a) == 3 and len(b) == 7

    def test_split_never_empty(self):
        a, b = _ds(2).split(0.01)
        assert len(a) == 1 and len(b) == 1

    def test_split_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            _ds().split(1.0)

    def test_class_counts(self):
        ds = Dataset(np.zeros((4, 1)), np.array([0, 1, 1, 3]), 4)
        np.testing.assert_array_equal(ds.class_counts(), [1, 2, 0, 1])


class TestConcat:
    def test_concat(self):
        out = concat_datasets([_ds(4, seed=0), _ds(6, seed=1)])
        assert len(out) == 10

    def test_concat_incompatible_raises(self):
        with pytest.raises(ValueError):
            concat_datasets([_ds(4, d=3), _ds(4, d=2)])

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            concat_datasets([])


class TestEdgeAreaData:
    def test_properties(self):
        edge = EdgeAreaData([_ds(4), _ds(6, seed=1)], _ds(5, seed=2), name="e0")
        assert edge.num_clients == 2
        assert edge.train_size == 10
        assert len(edge.train_pool()) == 10

    def test_requires_clients(self):
        with pytest.raises(ValueError):
            EdgeAreaData([], _ds())

    def test_shape_consistency(self):
        with pytest.raises(ValueError):
            EdgeAreaData([_ds(4, d=3)], _ds(4, d=2))


class TestFederatedDataset:
    def _fed(self):
        edges = [EdgeAreaData([_ds(4, seed=i), _ds(4, seed=i + 10)], _ds(3, seed=i + 20))
                 for i in range(3)]
        return FederatedDataset(edges, name="f")

    def test_counts(self):
        fed = self._fed()
        assert fed.num_edges == 3
        assert fed.num_clients == 6
        assert fed.clients_per_edge() == [2, 2, 2]

    def test_client_shards_order(self):
        fed = self._fed()
        shards = fed.client_shards()
        assert len(shards) == 6
        assert shards[0] is fed.edges[0].clients[0]
        assert shards[-1] is fed.edges[2].clients[1]

    def test_iter_clients(self):
        fed = self._fed()
        triples = list(fed.iter_clients())
        assert triples[0][:2] == (0, 0)
        assert triples[-1][:2] == (2, 1)

    def test_global_test(self):
        fed = self._fed()
        assert len(fed.global_test()) == 9

    def test_requires_edges(self):
        with pytest.raises(ValueError):
            FederatedDataset([])

    def test_incompatible_edges_raise(self):
        e1 = EdgeAreaData([_ds(4, d=3)], _ds(3, d=3))
        e2 = EdgeAreaData([_ds(4, d=2)], _ds(3, d=2))
        with pytest.raises(ValueError):
            FederatedDataset([e1, e2])
