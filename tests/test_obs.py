"""Tests for repro.obs: span tracing, metrics, JSONL traces, and the analyzer.

The contract under test is the one DESIGN.md's Observability section states:
tracing is opt-in through the ``obs=`` hook, bit-identical to untraced runs,
and a written trace replays to the same communication totals the live
:class:`~repro.topology.comm.CommunicationTracker` reports.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro import cli
from repro.core.hierminimax import HierMinimax
from repro.data.registry import make_federated_dataset
from repro.nn.models import make_model_factory
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Tracer,
    TraceWriter,
    analyze_trace,
    format_trace_report,
)
from repro.obs.metrics import Histogram
from repro.utils.logging import RunLogger


def tiny_algo(obs=None, seed=0):
    data = make_federated_dataset("emnist_digits", seed=seed, scale="tiny")
    factory = make_model_factory("logistic", data.input_dim, data.num_classes)
    return HierMinimax(data, factory, tau1=2, tau2=2, m_edges=5, batch_size=8,
                       eta_w=0.05, eta_p=2e-3, seed=seed, obs=obs)


# --------------------------------------------------------------------- spans
class TestSpans:
    def test_nesting_paths_and_depths(self):
        obs = Tracer()
        with obs.span("run") as outer:
            with obs.span("cloud_round", round=0) as mid:
                with obs.span("phase1_model_update") as inner:
                    pass
        assert outer.depth == 0 and outer.path == "run"
        assert mid.depth == 1 and mid.path == "run/cloud_round"
        assert inner.depth == 2
        assert inner.path == "run/cloud_round/phase1_model_update"

    def test_totals_accumulate_counts_and_time(self):
        obs = Tracer()
        for _ in range(3):
            with obs.span("work"):
                pass
        totals = obs.span_totals()
        assert totals["work"]["count"] == 3
        assert totals["work"]["total_s"] >= 0.0

    def test_duration_measured(self):
        obs = Tracer()
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                x = 0.0
                for i in range(1000):
                    x += i
        assert outer.duration >= inner.duration >= 0.0

    def test_set_attaches_attrs(self):
        buf = io.StringIO()
        with Tracer(TraceWriter(buf, flush_every=1)) as obs:
            with obs.span("cloud_round", round=3) as span:
                span.set(comm={"cycles": {"edge_cloud": 2}})
        events = [json.loads(line) for line in buf.getvalue().splitlines()]
        span_ev = next(e for e in events if e["ev"] == "span")
        assert span_ev["attrs"]["round"] == 3
        assert span_ev["attrs"]["comm"]["cycles"]["edge_cloud"] == 2

    def test_write_max_depth_drops_deep_spans_but_times_them(self):
        buf = io.StringIO()
        obs = Tracer(TraceWriter(buf, flush_every=1), write_max_depth=0)
        with obs.span("run"):
            with obs.span("cloud_round"):
                pass
        obs.close()
        events = [json.loads(line) for line in buf.getvalue().splitlines()]
        written = [e["name"] for e in events if e["ev"] == "span"]
        assert written == ["run"]
        assert obs.span_totals()["cloud_round"]["count"] == 1


# ------------------------------------------------------------------- metrics
class TestMetrics:
    def test_counter_gauge_histogram_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("steps").inc(5)
        reg.counter("steps").inc()
        reg.gauge("worst_loss").set(2.5)
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        reg.histogram("lat").observe(50.0)
        snap = reg.snapshot()
        assert snap["counters"]["steps"] == 6
        assert snap["gauges"]["worst_loss"] == 2.5
        hist = snap["histograms"]["lat"]
        assert hist["count"] == 2
        assert hist["buckets"]["0.1"] == 1 and hist["buckets"]["+inf"] == 1
        assert hist["min"] == 0.05 and hist["max"] == 50.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_name_type_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_histogram_mean_and_unsorted_buckets(self):
        h = Histogram(buckets=(1.0, 2.0))
        assert h.mean == 0.0
        h.observe(1.0)
        h.observe(3.0)
        assert h.mean == 2.0
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))

    def test_percentile_nearest_rank_small_samples(self):
        # The documented rule: rank = max(1, ceil(q/100 * n)), 1-based over
        # the sorted samples — no interpolation is invented.
        h1 = Histogram()
        h1.observe(7.0)
        assert h1.percentile(0) == h1.percentile(50) == h1.percentile(99) == 7.0
        h2 = Histogram()
        h2.observe(10.0)
        h2.observe(2.0)
        assert h2.percentile(50) == 2.0   # ceil(0.5*2)=1 -> smaller sample
        assert h2.percentile(51) == 10.0  # ceil(0.51*2)=2 -> larger sample
        assert h2.percentile(100) == 10.0

    def test_percentile_exact_while_raw_retained(self):
        from repro.obs.metrics import RAW_SAMPLE_LIMIT

        h = Histogram(buckets=(1.0, 100.0))
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count <= RAW_SAMPLE_LIMIT
        assert h.percentile(95) == 95.0  # exact despite the coarse buckets
        assert h.as_dict()["p50"] == 50.0

    def test_percentile_bucket_fallback_beyond_raw_limit(self):
        from repro.obs.metrics import RAW_SAMPLE_LIMIT

        h = Histogram(buckets=(1.0, 10.0))
        for _ in range(200):
            h.observe(0.5)
        for _ in range(100):
            h.observe(5.0)
        assert h.count > RAW_SAMPLE_LIMIT
        # Conservative estimate: the covering bucket's upper bound ...
        assert h.percentile(50) == 1.0
        # ... clamped to the observed maximum when the bound overshoots it.
        assert h.percentile(99) == 5.0  # min(bound 10.0, max 5.0)
        low = Histogram(buckets=(1.0,))
        for _ in range(300):
            low.observe(0.25)
        assert low.percentile(99) == 0.25

    def test_percentile_empty_and_invalid_q(self):
        h = Histogram()
        assert h.percentile(50) is None
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_cardinality_guard_caps_series(self):
        reg = MetricsRegistry(max_series=2)
        real = reg.counter("a")
        reg.gauge("b")
        with pytest.warns(UserWarning, match="max_series=2"):
            sink = reg.counter("leak:client:0")
        assert sink is not real
        sink.inc(5)  # keeps working, just unregistered
        assert reg.series == 2 and reg.overflow == 1
        assert "leak:client:0" not in reg.snapshot()["counters"]
        assert reg.snapshot()["overflow"] == 1

    def test_cardinality_guard_warns_once_and_shares_sinks(self):
        import warnings as _warnings

        reg = MetricsRegistry(max_series=1)
        reg.counter("only")
        with pytest.warns(UserWarning):
            first = reg.histogram("leak:0")
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")  # a second warning would raise
            second = reg.histogram("leak:1")
            assert reg.gauge("leak:2") is reg.gauge("leak:3")
        assert first is second
        assert reg.overflow == 4
        # Existing series stay live and writable at the cap.
        reg.counter("only").inc()
        assert reg.snapshot()["counters"]["only"] == 1

    def test_cardinality_guard_reset_clears_overflow(self):
        reg = MetricsRegistry(max_series=1)
        reg.counter("x")
        with pytest.warns(UserWarning):
            reg.counter("y")
        reg.reset()
        assert reg.series == 0 and reg.overflow == 0
        assert "overflow" not in reg.snapshot()
        reg.counter("fresh")  # re-registers without warning after reset

    def test_max_series_validated(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_series=0)

    def test_tracer_delegates(self):
        obs = Tracer()
        obs.count("sgd_steps_total", 4)
        obs.gauge("worst_edge_loss", 1.25)
        obs.observe("round_time_s", 0.01)
        snap = obs.snapshot()
        assert snap["counters"]["sgd_steps_total"] == 4
        assert snap["gauges"]["worst_edge_loss"] == 1.25
        assert snap["histograms"]["round_time_s"]["count"] == 1


# ---------------------------------------------------------------- JSONL I/O
class TestTraceWriter:
    def test_numpy_values_serialize(self):
        buf = io.StringIO()
        w = TraceWriter(buf, flush_every=1)
        w.write({"ev": "log", "t": np.float64(0.5), "kind": "x",
                 "fields": {"arr": np.arange(3), "n": np.int64(7)}})
        rec = json.loads(buf.getvalue())
        assert rec["t"] == 0.5 and rec["fields"]["arr"] == [0, 1, 2]
        assert rec["fields"]["n"] == 7 and w.records_written == 1

    def test_file_target_and_trace_lifecycle(self, tmp_path):
        path = tmp_path / "sub" / "run.trace.jsonl"
        with Tracer(str(path), meta={"note": "unit"}) as obs:
            with obs.span("run"):
                obs.event("hello", round=0)
        events = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [e["ev"] for e in events]
        assert kinds[0] == "trace_start" and kinds[-1] == "trace_end"
        assert "metrics" in kinds and "log" in kinds and "span" in kinds
        assert events[0]["meta"] == {"note": "unit"}

    def test_close_idempotent(self, tmp_path):
        obs = Tracer(str(tmp_path / "t.jsonl"))
        obs.close()
        obs.close()  # must not raise or duplicate trace_end
        events = (tmp_path / "t.jsonl").read_text().splitlines()
        assert sum("trace_end" in line for line in events) == 1


# ----------------------------------------------------------------- replaying
class TestTraceRoundTrip:
    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "run.trace.jsonl"
        obs = Tracer(str(path))
        algo = tiny_algo(obs=obs)
        result = algo.run(rounds=12, eval_every=4)
        obs.close()
        return path, result, obs

    def test_replayed_comm_matches_live_snapshot(self, traced_run):
        path, result, _ = traced_run
        report = analyze_trace(path)
        assert report.replay_consistent
        assert report.comm_cycles == dict(result.comm.cycles)
        assert report.comm_messages == dict(result.comm.messages)
        for link, floats in result.comm.floats.items():
            assert report.comm_floats[link] == pytest.approx(floats, rel=1e-9)
        assert report.edge_cloud_cycles == result.comm.edge_cloud_cycles

    def test_round_timeline_reconstructed(self, traced_run):
        path, result, _ = traced_run
        report = analyze_trace(path)
        assert len(report.rounds) == result.rounds_run
        assert [r.round_index for r in report.rounds] == list(range(12))
        assert all(r.algorithm == "hierminimax" for r in report.rounds)
        assert all(r.duration_s >= 0 and r.cycles > 0 for r in report.rounds)

    def test_phase_times_cover_run_wallclock(self, traced_run):
        path, _, obs = traced_run
        report = analyze_trace(path)
        assert report.run_total_s > 0
        # Phases must account for nearly all of the measured run span: the
        # instrumentation would be lying about attribution otherwise.
        assert report.phase_coverage > 0.8
        assert report.phase_coverage <= 1.0 + 1e-9
        # The trace's span totals agree with the in-memory accumulation.
        for name, slot in obs.span_totals().items():
            assert report.span_totals[name]["count"] == slot["count"]

    def test_metrics_round_trip(self, traced_run):
        path, result, obs = traced_run
        report = analyze_trace(path)
        counters = report.metrics["counters"]
        assert counters["rounds_total"] == result.rounds_run
        # 12 rounds x 5 edges x tau2=2 blocks x 3 clients x tau1=2 steps
        assert counters["sgd_steps_total"] == 12 * 5 * 2 * 3 * 2
        assert counters["edge_cloud_bytes"] == pytest.approx(
            result.comm.edge_cloud_bytes, rel=1e-9)
        assert report.metrics["histograms"]["round_time_s"]["count"] == 12

    def test_format_report_mentions_key_sections(self, traced_run):
        path, _, _ = traced_run
        text = format_trace_report(analyze_trace(path), timeline=3)
        for needle in ("per-phase breakdown", "phase1_model_update",
                       "edge-cloud cycles", "round timeline",
                       "sgd_steps_total"):
            assert needle in text
        assert "WARNING" not in text

    def test_analyze_accepts_parsed_events(self, traced_run):
        path, _, _ = traced_run
        from repro.obs import load_trace

        events = load_trace(path)
        assert analyze_trace(events).events == len(events)


# ------------------------------------------------------------- determinism
class TestDeterminism:
    def test_traced_run_bit_identical_to_untraced(self, tmp_path):
        plain = tiny_algo(obs=None).run(rounds=6, eval_every=3)
        obs = Tracer(str(tmp_path / "paired.trace.jsonl"))
        traced = tiny_algo(obs=obs).run(rounds=6, eval_every=3)
        obs.close()
        assert np.array_equal(plain.final_params, traced.final_params)
        assert np.array_equal(plain.final_weights, traced.final_weights)
        assert plain.comm.cycles == traced.comm.cycles
        assert plain.comm.floats == traced.comm.floats

    def test_null_tracer_is_inert(self):
        obs = NullTracer()
        assert obs is not NULL_TRACER  # constructible, but
        with obs.span("anything", k=1) as span:
            span.set(more=2)
        assert span is obs.span("other")  # shared singleton span
        obs.count("c")
        obs.gauge("g", 1.0)
        obs.observe("h", 1.0)
        obs.event("e", x=1)
        assert obs.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}
        assert obs.span_totals() == {}
        with obs:
            pass  # context-manager protocol mirrors Tracer


# ---------------------------------------------------------------- RunLogger
class TestRunLoggerFlush:
    def test_last_round_flushed_before_run_end(self):
        buf = io.StringIO()
        log = RunLogger(stream=buf, every=5)
        for k in range(7):
            log({"event": "round", "round": k})
        log({"event": "run_end", "rounds": 7})
        lines = buf.getvalue().splitlines()
        # rounds 0 and 5 pass the stride; round 6 flushes before run_end.
        assert [l.split("] ")[1].split(":")[0] for l in lines] == [
            "round", "round", "round", "run_end"]
        assert "round=6" in lines[2]

    def test_explicit_flush(self):
        buf = io.StringIO()
        log = RunLogger(stream=buf, every=10)
        log({"event": "round", "round": 0})
        log({"event": "round", "round": 1})
        log.flush()
        log.flush()  # idempotent
        assert buf.getvalue().count("round:") == 2

    def test_algorithm_emits_run_end(self):
        buf = io.StringIO()
        data = make_federated_dataset("emnist_digits", seed=0, scale="tiny")
        factory = make_model_factory("logistic", data.input_dim,
                                     data.num_classes)
        algo = HierMinimax(data, factory, tau1=2, tau2=2, m_edges=5,
                           batch_size=8, seed=0,
                           logger=RunLogger(stream=buf, every=4))
        algo.run(rounds=5, eval_every=1)
        text = buf.getvalue()
        assert "run_end" in text
        # the final round (index 4) reaches the stream despite every=4.
        assert "round=4" in text


# ---------------------------------------------------------------------- CLI
class TestTraceReportCLI:
    def test_reports_trace(self, tmp_path, capsys):
        path = tmp_path / "cli.trace.jsonl"
        obs = Tracer(str(path))
        tiny_algo(obs=obs).run(rounds=3, eval_every=3)
        obs.close()
        assert cli.main(["trace-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "per-phase breakdown" in out and "3 rounds" in out

    def test_missing_file_errors(self, tmp_path, capsys):
        rc = cli.main(["trace-report", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "no such trace" in capsys.readouterr().err


# ------------------------------------------------------------ runner wiring
class TestRunnerIntegration:
    def test_experiment_phase_attribution(self):
        from repro.experiments.presets import fig3_preset
        from repro.experiments.runner import run_experiment

        preset = fig3_preset(scale="tiny").with_overrides(
            slots=48, eval_points=2, algorithms=("fedavg", "hierminimax"))
        obs = Tracer()
        out = run_experiment(preset, seed=0, obs=obs)
        assert set(out.phase_times) == {"fedavg", "hierminimax"}
        for phases in out.phase_times.values():
            assert phases["phase1_model_update"] > 0
            assert phases["evaluate"] > 0
        assert out.phase_times["hierminimax"]["phase2_weight_update"] > 0
        assert out.metrics["counters"]["sgd_steps_total"] > 0
        assert out.setup_times["data_gen"] > 0

    def test_runner_marks_each_algorithm_done(self, tmp_path):
        from repro.experiments.presets import fig3_preset
        from repro.experiments.runner import run_experiment
        from repro.obs import load_trace

        preset = fig3_preset(scale="tiny").with_overrides(
            slots=48, eval_points=2, algorithms=("fedavg", "hierminimax"))
        path = tmp_path / "exp.trace.jsonl"
        with Tracer(str(path)) as obs:
            run_experiment(preset, seed=0, obs=obs)
        done = [e["fields"] for e in load_trace(path)
                if e.get("ev") == "log" and e.get("kind") == "algorithm_done"]
        assert [d["algorithm"] for d in done] == ["fedavg", "hierminimax"]
        assert all(d["rounds"] > 0 and "worst_accuracy" in d for d in done)
