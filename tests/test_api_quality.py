"""API-quality gates: __all__ integrity and docstring coverage.

These meta-tests keep the public surface healthy as the library grows: every
name exported through ``__all__`` must resolve, and every public module, class,
function, and method must carry a docstring.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

_PACKAGES = [
    "repro", "repro.core", "repro.baselines", "repro.nn", "repro.data",
    "repro.topology", "repro.sim", "repro.metrics", "repro.theory",
    "repro.experiments", "repro.ops", "repro.utils", "repro.multilayer",
    "repro.compression", "repro.plotting", "repro.obs",
]


def _iter_modules():
    for pkg_name in _PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                if not info.name.startswith("_"):
                    yield importlib.import_module(f"{pkg_name}.{info.name}")


ALL_MODULES = list(dict.fromkeys(_iter_modules()))


class TestExports:
    @pytest.mark.parametrize("module", ALL_MODULES,
                             ids=[m.__name__ for m in ALL_MODULES])
    def test_all_names_resolve(self, module):
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), (
                f"{module.__name__}.__all__ lists {name!r} but it is missing")

    def test_top_level_exports_unique(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)


class TestDocstrings:
    @pytest.mark.parametrize("module", ALL_MODULES,
                             ids=[m.__name__ for m in ALL_MODULES])
    def test_module_docstring(self, module):
        assert module.__doc__, f"{module.__name__} lacks a module docstring"

    @pytest.mark.parametrize("module", ALL_MODULES,
                             ids=[m.__name__ for m in ALL_MODULES])
    def test_public_objects_documented(self, module):
        undocumented: list[str] = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if obj.__module__.startswith("repro") and not obj.__doc__:
                    undocumented.append(f"{module.__name__}.{name}")
                if inspect.isclass(obj):
                    for meth_name, meth in vars(obj).items():
                        if meth_name.startswith("_") and meth_name != "__init__":
                            continue
                        if inspect.isfunction(meth) and not meth.__doc__ \
                                and meth_name != "__init__":
                            undocumented.append(
                                f"{module.__name__}.{name}.{meth_name}")
        assert not undocumented, f"missing docstrings: {undocumented}"
