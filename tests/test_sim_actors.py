"""Tests for the simulation actors: Client, EdgeServer, CloudServer, builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.nn.models import logistic_regression
from repro.ops.projections import project_l2_ball
from repro.sim.builder import build_edge_servers, build_flat_clients
from repro.sim.client import Client
from repro.sim.cloud import CloudServer
from repro.sim.edge import EdgeServer
from repro.topology.comm import CommunicationTracker
from repro.utils.rng import RngFactory

from tests.conftest import make_blob_dataset


def _client(seed=0, n=20, d=4, classes=3, batch=4, cid=0):
    shard = make_blob_dataset(n // classes, classes, d, seed=seed)
    return Client(cid, shard, batch, np.random.default_rng(seed))


def _engine(d=4, classes=3):
    return logistic_regression(d, classes, rng=0)


class TestClient:
    def test_local_sgd_changes_model(self):
        client = _client()
        engine = _engine()
        w0 = engine.get_params()
        w_end, ckpt = client.local_sgd(engine, w0, steps=3, lr=0.1)
        assert not np.array_equal(w_end, w0)
        assert ckpt is None

    def test_returns_copies(self):
        client = _client()
        engine = _engine()
        w0 = engine.get_params()
        w_end, _ = client.local_sgd(engine, w0, steps=1, lr=0.1)
        engine.params_view()[:] = 0.0
        assert not np.all(w_end == 0.0)

    def test_checkpoint_equals_prefix_run(self):
        """The checkpoint after c1 steps must equal an independent c1-step run."""
        engine = _engine()
        w0 = engine.get_params()
        a = _client(seed=5)
        _, ckpt = a.local_sgd(engine, w0, steps=4, lr=0.1, checkpoint_after=2)
        b = _client(seed=5)  # identical rng stream -> identical batches
        w2, _ = b.local_sgd(engine, w0, steps=2, lr=0.1)
        np.testing.assert_allclose(ckpt, w2)

    def test_checkpoint_at_last_step_equals_final(self):
        engine = _engine()
        w0 = engine.get_params()
        client = _client(seed=6)
        w_end, ckpt = client.local_sgd(engine, w0, steps=3, lr=0.1,
                                       checkpoint_after=3)
        np.testing.assert_array_equal(w_end, ckpt)

    def test_deterministic_given_stream(self):
        engine = _engine()
        w0 = engine.get_params()
        a, _ = _client(seed=7).local_sgd(engine, w0, steps=3, lr=0.1)
        b, _ = _client(seed=7).local_sgd(engine, w0, steps=3, lr=0.1)
        np.testing.assert_array_equal(a, b)

    def test_projection_applied(self):
        engine = _engine()
        client = _client()
        w0 = np.full(engine.num_parameters, 10.0)
        w_end, _ = client.local_sgd(engine, w0, steps=1, lr=0.01,
                                    projection=lambda w: project_l2_ball(w, 1.0))
        assert np.linalg.norm(w_end) <= 1.0 + 1e-9

    def test_validations(self):
        engine = _engine()
        client = _client()
        w0 = engine.get_params()
        with pytest.raises(ValueError):
            client.local_sgd(engine, w0, steps=0, lr=0.1)
        with pytest.raises(ValueError):
            client.local_sgd(engine, w0, steps=2, lr=0.0)
        with pytest.raises(ValueError):
            client.local_sgd(engine, w0, steps=2, lr=0.1, checkpoint_after=3)

    def test_sgd_step_counter(self):
        engine = _engine()
        client = _client()
        client.local_sgd(engine, engine.get_params(), steps=5, lr=0.1)
        assert client.sgd_steps_taken == 5

    def test_estimate_loss_finite_positive(self):
        engine = _engine()
        client = _client()
        loss = client.estimate_loss(engine, engine.get_params())
        assert np.isfinite(loss) and loss > 0

    def test_full_loss_uses_entire_shard(self):
        engine = _engine()
        client = _client()
        w = engine.get_params()
        engine.set_params(w)
        expected = engine.loss(client.shard.X, client.shard.y)
        assert client.full_loss(engine, w) == pytest.approx(expected)


class TestEdgeServer:
    def _edge(self, n_clients=3, seed=0):
        clients = [_client(seed=seed + i, cid=i) for i in range(n_clients)]
        return EdgeServer(0, clients)

    def test_requires_clients(self):
        with pytest.raises(ValueError):
            EdgeServer(0, [])

    def test_single_client_equals_client_run(self):
        """With one client and tau2=1, model_update must equal the client's SGD."""
        engine = _engine()
        w0 = engine.get_params()
        edge = EdgeServer(0, [_client(seed=9)])
        w_edge, _ = edge.model_update(engine, w0, tau1=3, tau2=1, lr=0.1)
        w_cli, _ = _client(seed=9).local_sgd(engine, w0, steps=3, lr=0.1)
        np.testing.assert_allclose(w_edge, w_cli)

    def test_aggregation_is_mean(self):
        engine = _engine()
        w0 = engine.get_params()
        clients = [_client(seed=20 + i, cid=i) for i in range(3)]
        edge = EdgeServer(0, clients)
        w_edge, _ = edge.model_update(engine, w0, tau1=2, tau2=1, lr=0.1)
        finals = []
        for i in range(3):
            c = _client(seed=20 + i, cid=i)
            w_end, _ = c.local_sgd(engine, w0, steps=2, lr=0.1)
            finals.append(w_end)
        np.testing.assert_allclose(w_edge, np.mean(finals, axis=0))

    def test_checkpoint_returned_only_when_requested(self):
        engine = _engine()
        edge = self._edge()
        w0 = engine.get_params()
        _, ckpt_none = edge.model_update(engine, w0, tau1=2, tau2=2, lr=0.1)
        assert ckpt_none is None
        _, ckpt = edge.model_update(engine, w0, tau1=2, tau2=2, lr=0.1,
                                    checkpoint=(1, 0))
        assert ckpt is not None and ckpt.shape == w0.shape

    def test_checkpoint_validations(self):
        engine = _engine()
        edge = self._edge()
        w0 = engine.get_params()
        with pytest.raises(ValueError):
            edge.model_update(engine, w0, tau1=2, tau2=2, lr=0.1, checkpoint=(0, 0))
        with pytest.raises(ValueError):
            edge.model_update(engine, w0, tau1=2, tau2=2, lr=0.1, checkpoint=(1, 2))

    def test_tau_validations(self):
        engine = _engine()
        edge = self._edge()
        with pytest.raises(ValueError):
            edge.model_update(engine, engine.get_params(), tau1=0, tau2=1, lr=0.1)

    def test_tracker_accounting_model_update(self):
        engine = _engine()
        edge = self._edge(n_clients=3)
        tracker = CommunicationTracker()
        d = engine.num_parameters
        edge.model_update(engine, engine.get_params(), tau1=2, tau2=2, lr=0.1,
                          checkpoint=(1, 0), tracker=tracker)
        snap = tracker.snapshot()
        assert snap.cycles["client_edge"] == 2  # one per aggregation block
        # downlink: tau2 blocks x 3 clients model broadcasts
        assert snap.messages["client_edge:down"] == 6
        assert snap.floats["client_edge:down"] == 6 * d
        # uplink: 6 model uploads, 3 of them carrying the checkpoint too
        assert snap.messages["client_edge:up"] == 6
        assert snap.floats["client_edge:up"] == (3 * 2 + 3) * d

    def test_estimate_loss_average(self):
        engine = _engine()
        clients = [_client(seed=30 + i, cid=i) for i in range(2)]
        edge = EdgeServer(0, clients)
        w = engine.get_params()
        expected = np.mean([
            _client(seed=30, cid=0).estimate_loss(engine, w),
            _client(seed=31, cid=1).estimate_loss(engine, w),
        ])
        assert edge.estimate_loss(engine, w) == pytest.approx(expected)

    def test_estimate_loss_tracker(self):
        engine = _engine()
        edge = self._edge(n_clients=3)
        tracker = CommunicationTracker()
        edge.estimate_loss(engine, engine.get_params(), tracker=tracker)
        snap = tracker.snapshot()
        assert snap.cycles["client_edge"] == 1
        assert snap.messages["client_edge:up"] == 3
        assert snap.floats["client_edge:up"] == 3  # one scalar per client

    def test_full_loss(self):
        engine = _engine()
        edge = self._edge(n_clients=2)
        w = engine.get_params()
        vals = [c.full_loss(engine, w) for c in edge.clients]
        assert edge.full_loss(engine, w) == pytest.approx(np.mean(vals))


class TestCloudServer:
    def test_initial_weights_uniform(self):
        cloud = CloudServer(4)
        np.testing.assert_allclose(cloud.initial_weights(), np.full(4, 0.25))

    def test_aggregate_mean(self):
        out = CloudServer.aggregate([np.array([0.0, 2.0]), np.array([2.0, 0.0])])
        np.testing.assert_allclose(out, [1.0, 1.0])

    def test_aggregate_does_not_mutate_inputs(self):
        a = np.array([1.0, 1.0])
        CloudServer.aggregate([a, np.array([3.0, 3.0])])
        np.testing.assert_array_equal(a, [1.0, 1.0])

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            CloudServer.aggregate([])

    def test_build_loss_vector_scaling(self):
        cloud = CloudServer(4)
        v = cloud.build_loss_vector({1: 2.0, 3: 1.0})
        np.testing.assert_allclose(v, [0.0, 4.0, 0.0, 2.0])

    def test_build_loss_vector_unbiased(self):
        """E[v] over uniform subsets must equal the true loss vector."""
        from repro.topology.sampling import sample_uniform_subset

        cloud = CloudServer(5)
        losses = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        gen = np.random.default_rng(0)
        acc = np.zeros(5)
        trials = 4000
        for _ in range(trials):
            sub = sample_uniform_subset(5, 2, gen)
            acc += cloud.build_loss_vector({int(e): losses[e] for e in sub})
        np.testing.assert_allclose(acc / trials, losses, rtol=0.08)

    def test_build_loss_vector_validations(self):
        cloud = CloudServer(3)
        with pytest.raises(ValueError):
            cloud.build_loss_vector({})
        with pytest.raises(ValueError):
            cloud.build_loss_vector({5: 1.0})

    def test_update_weights_projects_to_simplex(self):
        cloud = CloudServer(3)
        p = cloud.initial_weights()
        v = np.array([10.0, 0.0, 0.0])
        p_new = cloud.update_weights(p, v, eta_p=1.0)
        assert p_new.sum() == pytest.approx(1.0)
        assert np.all(p_new >= 0)
        assert p_new[0] > p[0]

    def test_update_weights_tau_scaling(self):
        cloud = CloudServer(3)
        p = cloud.initial_weights()
        v = np.array([0.01, 0.0, 0.0])
        small = cloud.update_weights(p, v, eta_p=0.1, tau1=1, tau2=1)
        large = cloud.update_weights(p, v, eta_p=0.1, tau1=2, tau2=3)
        assert large[0] > small[0]

    def test_update_weights_validations(self):
        cloud = CloudServer(3)
        p = cloud.initial_weights()
        v = np.zeros(3)
        with pytest.raises(ValueError):
            cloud.update_weights(p, v, eta_p=0.0)
        with pytest.raises(ValueError):
            cloud.update_weights(np.zeros(2), v, eta_p=0.1)

    def test_custom_weight_projection(self):
        from repro.ops.projections import project_capped_simplex

        cloud = CloudServer(
            4, weight_projection=lambda x: project_capped_simplex(x, 0.1, 0.5))
        p = cloud.update_weights(cloud.initial_weights(),
                                 np.array([100.0, 0, 0, 0]), eta_p=1.0)
        assert p.max() <= 0.5 + 1e-8
        assert p.min() >= 0.1 - 1e-8


class TestBuilders:
    def test_build_edge_servers_layout(self, tiny_image_fed):
        edges = build_edge_servers(tiny_image_fed, batch_size=2,
                                   rng_factory=RngFactory(0))
        assert len(edges) == tiny_image_fed.num_edges
        assert all(e.num_clients == 3 for e in edges)
        # global client ids are edge-major
        assert edges[0].clients[0].client_id == 0
        assert edges[1].clients[0].client_id == 3

    def test_build_flat_clients_matches_edge_layout(self, tiny_image_fed):
        flat = build_flat_clients(tiny_image_fed, batch_size=2,
                                  rng_factory=RngFactory(0))
        edges = build_edge_servers(tiny_image_fed, batch_size=2,
                                   rng_factory=RngFactory(0))
        assert len(flat) == tiny_image_fed.num_clients
        # same shards, same rng streams -> same first batch
        Xa, _ = flat[4].sampler.next_batch()
        Xb, _ = edges[1].clients[1].sampler.next_batch()
        np.testing.assert_array_equal(Xa, Xb)

    def test_same_seed_same_streams(self, tiny_image_fed):
        a = build_flat_clients(tiny_image_fed, batch_size=2,
                               rng_factory=RngFactory(3))
        b = build_flat_clients(tiny_image_fed, batch_size=2,
                               rng_factory=RngFactory(3))
        Xa, _ = a[0].sampler.next_batch()
        Xb, _ = b[0].sampler.next_batch()
        np.testing.assert_array_equal(Xa, Xb)
