"""Tests for repro.nn.losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy
from repro.ops.numerics import softmax


class TestSoftmaxCrossEntropy:
    def test_matches_manual_computation(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[2.0, 1.0, 0.0], [0.0, 0.0, 0.0]])
        targets = np.array([0, 2])
        probs = softmax(logits)
        expected = -np.mean([np.log(probs[0, 0]), np.log(probs[1, 2])])
        assert loss.forward(logits, targets) == pytest.approx(expected)

    def test_perfect_prediction_near_zero(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0]])
        assert loss.forward(logits, np.array([0])) == pytest.approx(0.0, abs=1e-6)

    def test_uniform_prediction_log_c(self):
        loss = SoftmaxCrossEntropy()
        assert loss.forward(np.zeros((3, 5)), np.array([0, 1, 2])) == pytest.approx(
            np.log(5))

    def test_backward_formula(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[1.0, -1.0, 0.5]])
        targets = np.array([1])
        grad = loss.backward(logits, targets)
        expected = softmax(logits)
        expected[0, 1] -= 1.0
        np.testing.assert_allclose(grad, expected)

    def test_backward_rows_sum_to_zero(self):
        loss = SoftmaxCrossEntropy()
        gen = np.random.default_rng(0)
        logits = gen.normal(size=(6, 4))
        targets = gen.integers(0, 4, size=6)
        grad = loss.backward(logits, targets)
        np.testing.assert_allclose(grad.sum(axis=1), np.zeros(6), atol=1e-12)

    def test_backward_scaled_by_batch(self):
        loss = SoftmaxCrossEntropy()
        logits = np.tile(np.array([[1.0, 0.0]]), (4, 1))
        targets = np.zeros(4, dtype=int)
        grad = loss.backward(logits, targets)
        single = loss.backward(logits[:1], targets[:1])
        np.testing.assert_allclose(grad[0], single[0] / 4.0)

    def test_per_sample(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        targets = np.array([0, 0])
        per = loss.forward_per_sample(logits, targets)
        assert per.shape == (2,)
        assert per[0] < per[1]
        assert loss.forward(logits, targets) == pytest.approx(per.mean())

    def test_shape_validation(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros(3), np.array([0]))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3)), np.array([0]))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((1, 3)), np.array([5]))


class TestMeanSquaredError:
    def test_value(self):
        mse = MeanSquaredError()
        assert mse.forward(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]])) == \
            pytest.approx(2.5)

    def test_gradient(self):
        mse = MeanSquaredError()
        logits = np.array([[1.0, 2.0]])
        targets = np.array([[0.0, 0.0]])
        np.testing.assert_allclose(mse.backward(logits, targets), [[1.0, 2.0]])

    def test_zero_at_fit(self):
        mse = MeanSquaredError()
        x = np.array([[0.5, -0.5]])
        assert mse.forward(x, x) == 0.0

    def test_shape_mismatch_raises(self):
        mse = MeanSquaredError()
        with pytest.raises(ValueError):
            mse.forward(np.zeros((1, 2)), np.zeros((2, 1)))
        with pytest.raises(ValueError):
            mse.backward(np.zeros((1, 2)), np.zeros((2, 1)))
